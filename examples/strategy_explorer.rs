//! Strategy explorer: the performance/cost trade-off ladder of §6.1.
//!
//! WiSeDB trains alternative models for stricter and looser variants of the
//! application's goal (via adaptive retraining, §5), prices each per query
//! template, prunes near-duplicates with Earth Mover's Distance, and lets
//! the application *estimate* what any future workload mix would cost under
//! each strategy — before renting a single VM.
//!
//! Run with: `cargo run --release --example strategy_explorer`

use wisedb::advisor::{ModelConfig, RecommenderConfig, StrategyRecommender};
use wisedb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::PerQuery, &spec)?;

    let config = RecommenderConfig {
        ladder_size: 7,
        keep: 3,
        spread: 0.5,
        costing_sample: 600,
        seed: 7,
        training: ModelConfig {
            num_samples: 250,
            sample_size: 10,
            ..ModelConfig::fast()
        },
    };
    println!(
        "Building a ladder of {} goals around the application's PerQuery SLA,\nkeeping the {} most distinct strategies...\n",
        config.ladder_size, config.keep
    );
    let strategies = StrategyRecommender::new(spec.clone(), goal, config).recommend()?;

    // Price three prospective workload mixes under every strategy.
    let mixes: [(&str, Vec<u32>); 3] = [
        ("uniform (100 each)", vec![100; 10]),
        ("short-heavy", {
            let mut v = vec![20; 10];
            v[0] = 400;
            v[1] = 300;
            v
        }),
        ("long-heavy", {
            let mut v = vec![20; 10];
            v[8] = 300;
            v[9] = 400;
            v
        }),
    ];

    println!(
        "{:<12} {:<28} {:>18} {:>18} {:>18}",
        "strictness", "goal flavour", mixes[0].0, mixes[1].0, mixes[2].0
    );
    for s in &strategies {
        let flavour = if s.strictness < -1e-9 {
            "relaxed / cheaper"
        } else if s.strictness > 1e-9 {
            "strict / pricier"
        } else {
            "as requested"
        };
        print!("{:<12.2} {:<28}", s.strictness, flavour);
        for (_, counts) in &mixes {
            print!(" {:>18}", s.estimator.estimate(counts));
        }
        println!();
    }

    // Schedule one real batch under the middle strategy and compare the
    // estimate with the realized cost.
    let chosen = &strategies[strategies.len() / 2];
    let workload = wisedb::sim::generator::uniform_workload(&spec, 500, 99);
    let counts = workload.template_counts(spec.num_templates());
    let estimated = chosen.estimator.estimate(&counts);
    let schedule = chosen.model.schedule_batch(&workload)?;
    let realized = total_cost(&spec, &chosen.goal, &schedule)?;
    println!(
        "\nChosen strategy (strictness {:+.2}): estimated {} vs realized {} on a fresh 500-query batch ({} VMs)",
        chosen.strictness,
        estimated,
        realized,
        schedule.num_vms()
    );
    Ok(())
}
