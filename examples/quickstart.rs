//! Quickstart: train a WiSeDB decision model and schedule a batch.
//!
//! Mirrors the paper's core loop — specify templates and an SLA, learn a
//! strategy from optimal schedules of small samples, then apply it to an
//! incoming workload — and sanity-checks the result against the optimal
//! scheduler and a classic greedy heuristic.
//!
//! Run with: `cargo run --release --example quickstart`

use wisedb::prelude::*;
use wisedb::sim::{self, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Workload specification: 10 TPC-H-like templates (2–6 min) on
    //    t2.medium instances, as in §7.1.
    let spec = wisedb::sim::catalog::tpch_like(10);
    println!("Templates:");
    for (i, t) in spec.templates().iter().enumerate() {
        println!("  T{:<2} {:<18} {}", i + 1, t.name, t.latencies[0].unwrap());
    }

    // 2. Performance goal: no query may take longer than 15 minutes, with
    //    a penalty of 1 cent per second of violation.
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec)?;
    println!("\nGoal: {:?}\n", goal);

    // 3. Train the decision model on optimal schedules of sample workloads.
    let config = ModelConfig {
        num_samples: 500,
        sample_size: 12,
        ..ModelConfig::fast()
    };
    let model = ModelGenerator::new(spec.clone(), goal.clone(), config).train()?;
    let stats = model.stats();
    println!(
        "Trained on {} samples ({} decisions) in {:.2}s — tree depth {}, {} leaves, {:.1}% resubstitution accuracy",
        stats.num_samples,
        stats.num_rows,
        stats.training_secs,
        stats.tree_depth,
        stats.tree_leaves,
        stats.training_accuracy * 100.0
    );

    // 4. Schedule an incoming batch of 30 queries.
    let workload = wisedb::sim::generator::uniform_workload(&spec, 30, 42);
    let schedule = model.schedule_batch(&workload)?;
    let breakdown = cost_breakdown(&spec, &goal, &schedule)?;
    println!(
        "\nWiSeDB schedule: {} VMs for {} queries",
        schedule.num_vms(),
        schedule.num_queries()
    );
    println!(
        "  startup {} + runtime {} + penalty {} = {}",
        breakdown.startup,
        breakdown.runtime,
        breakdown.penalty,
        breakdown.total()
    );

    // 5. Compare against the optimal schedule and first-fit decreasing.
    let optimal = AStarSearcher::new(&spec, &goal).solve(&workload)?;
    let ffd = Heuristic::FirstFitDecreasing.schedule(&spec, &goal, &workload)?;
    let ffd_cost = total_cost(&spec, &goal, &ffd)?;
    println!("\nComparison:");
    println!("  optimal  {}", optimal.cost);
    println!(
        "  WiSeDB   {}  (+{:.1}% over optimal)",
        breakdown.total(),
        (breakdown.total().as_dollars() / optimal.cost.as_dollars() - 1.0) * 100.0
    );
    println!(
        "  FFD      {}  (+{:.1}% over optimal)",
        ffd_cost,
        (ffd_cost.as_dollars() / optimal.cost.as_dollars() - 1.0) * 100.0
    );

    // 6. Execute the schedule on the simulated cluster and verify the bill.
    let trace = sim::execute(&spec, &schedule, &SimOptions::default())?;
    println!(
        "\nSimulated execution: makespan {}, realized cost {}",
        trace.makespan(),
        trace.total_cost(&goal)
    );
    assert!(trace.total_cost(&goal).approx_eq(breakdown.total(), 1e-9));

    // 7. Peek at the learned strategy itself (Figure 6 style).
    let rendering = model.render_tree();
    let lines: Vec<&str> = rendering.lines().take(12).collect();
    println!("\nLearned strategy (first {} lines):", lines.len());
    for l in lines {
        println!("  {l}");
    }
    Ok(())
}
