//! Online scheduling: queries arriving one at a time (§6.3).
//!
//! Replays a stream of queries through the online scheduler under the four
//! §6.3.1 optimization settings (None / Reuse / Shift / Shift+Reuse) and
//! reports scheduling overhead and realized cost for each — Figure 19's
//! experiment in miniature — plus an A*-planned run as the quality yardstick
//! (Figure 18's comparator).
//!
//! Run with: `cargo run --release --example online_scheduling`

use wisedb::advisor::{ArrivingQuery, OnlineConfig, OnlineScheduler, Planner};
use wisedb::prelude::*;
use wisedb::sim::Arrivals;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec)?;

    // 30 queries arriving ~4/s (mean gap 250 ms, std 125 ms), as in §7.4.
    let workload = wisedb::sim::generator::uniform_workload(&spec, 30, 5);
    let times = Arrivals::Normal {
        mean_secs: 0.25,
        std_secs: 0.125,
    }
    .times(30, 5);
    let stream: Vec<ArrivingQuery> = workload
        .queries()
        .iter()
        .zip(&times)
        .map(|(q, &arrival)| ArrivingQuery::new(q.template, arrival))
        .collect();

    let training = ModelConfig {
        num_samples: 120,
        sample_size: 8,
        ..ModelConfig::fast()
    };

    println!(
        "{:<14} {:>12} {:>10} {:>10} {:>8} {:>14}",
        "variant", "overhead/q", "retrains", "cacheHits", "shifts", "cost"
    );
    let variants: [(&str, bool, bool); 4] = [
        ("None", false, false),
        ("Reuse", true, false),
        ("Shift", false, true),
        ("Shift+Reuse", true, true),
    ];
    for (name, reuse, shift) in variants {
        let config = OnlineConfig {
            reuse,
            shift,
            training: training.clone(),
            ..OnlineConfig::default()
        };
        let mut scheduler = OnlineScheduler::train(spec.clone(), goal.clone(), config)?;
        let report = scheduler.run(&stream)?;
        println!(
            "{:<14} {:>10.0}ms {:>10} {:>10} {:>8} {:>14}",
            name,
            report.mean_overhead_secs() * 1e3,
            report.retrains,
            report.cache_hits,
            report.shifts,
            report.total_cost(&spec, &goal)?
        );
    }

    // Quality yardstick: plan every batch with A* instead of the tree.
    let mut oracle = OnlineScheduler::train(
        spec.clone(),
        goal.clone(),
        OnlineConfig {
            planner: Planner::Optimal,
            training: training.clone(),
            ..OnlineConfig::default()
        },
    )?;
    let report = oracle.run(&stream)?;
    println!(
        "{:<14} {:>10.0}ms {:>10} {:>10} {:>8} {:>14}",
        "A*-per-batch",
        report.mean_overhead_secs() * 1e3,
        report.retrains,
        report.cache_hits,
        report.shifts,
        report.total_cost(&spec, &goal)?
    );
    Ok(())
}
