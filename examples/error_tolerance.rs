//! Latency-prediction error tolerance (§7.5, Figure 22).
//!
//! WiSeDB schedules with *predicted* latencies; real predictors err. This
//! example injects Gaussian relative error into the predictor, lets queries
//! be matched to the template with the closest predicted latency (§6.2),
//! schedules with the resulting — partly wrong — template labels, and then
//! executes on the simulated cluster with the *true* latencies to see what
//! the errors actually cost.
//!
//! Run with: `cargo run --release --example error_tolerance`

use wisedb::prelude::*;
use wisedb::sim::{self, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec)?;
    let model = ModelGenerator::new(
        spec.clone(),
        goal.clone(),
        ModelConfig {
            num_samples: 300,
            sample_size: 10,
            ..ModelConfig::fast()
        },
    )
    .train()?;

    let workload = wisedb::sim::generator::uniform_workload(&spec, 60, 17);

    println!(
        "{:>8} {:>14} {:>16} {:>16} {:>12}",
        "σ", "misassigned", "believed cost", "realized cost", "inflation"
    );
    for sigma in [0.0, 0.05, 0.10, 0.20, 0.30, 0.40] {
        let perceived = sim::perceive_workload(&spec, &workload, sigma, 23);
        let schedule = model.schedule_batch(&perceived.perceived)?;

        // What the scheduler *believes* the schedule costs...
        let believed = total_cost(&spec, &goal, &schedule)?;
        // ...and what actually happens when true latencies play out.
        let trace = sim::execute(
            &spec,
            &schedule,
            &SimOptions {
                true_latencies: Some(perceived.true_latencies.clone()),
                ..SimOptions::default()
            },
        )?;
        let realized = trace.total_cost(&goal);
        println!(
            "{:>7.0}% {:>13.1}% {:>16} {:>16} {:>11.1}%",
            sigma * 100.0,
            perceived.misassignment_rate() * 100.0,
            believed,
            realized,
            (realized.as_dollars() / believed.as_dollars() - 1.0) * 100.0
        );
    }
    println!(
        "\nThe believed and realized costs agree while misassignment is rare,\nthen diverge as prediction error makes templates ambiguous — the\npaper's Figure 22 cliff."
    );
    Ok(())
}
