//! Property-based tests on the search layer's invariants.

use proptest::prelude::*;

use wisedb::prelude::*;
use wisedb::search::{AdaptiveSearcher, SearchConfig};
use wisedb_core::PenaltyRate;

/// A small random spec: 2–3 templates with latencies 30 s – 5 min on one
/// VM type.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    proptest::collection::vec(30u64..300, 2..=3).prop_map(|secs| {
        WorkloadSpec::single_vm(
            secs.into_iter()
                .enumerate()
                .map(|(i, s)| (format!("T{}", i + 1), Millis::from_secs(s)))
                .collect::<Vec<_>>(),
            VmType::t2_medium(),
        )
        .unwrap()
    })
}

fn arb_goal(spec: &WorkloadSpec) -> impl Strategy<Value = PerformanceGoal> {
    let nt = spec.num_templates();
    let latencies: Vec<Millis> = spec
        .templates()
        .iter()
        .map(|t| t.min_latency().unwrap())
        .collect();
    let longest = latencies.iter().copied().max().unwrap();
    let mean = latencies.iter().copied().sum::<Millis>() / nt as u64;
    prop_oneof![
        (11u64..40).prop_map({
            let latencies = latencies.clone();
            move |f| PerformanceGoal::PerQuery {
                deadlines: latencies
                    .iter()
                    .map(|l| l.mul_f64(f as f64 / 10.0))
                    .collect(),
                rate: PenaltyRate::CENT_PER_SECOND,
            }
        }),
        (11u64..40).prop_map(move |f| PerformanceGoal::MaxLatency {
            deadline: longest.mul_f64(f as f64 / 10.0),
            rate: PenaltyRate::CENT_PER_SECOND,
        }),
        (11u64..40).prop_map(move |f| PerformanceGoal::AverageLatency {
            target: mean.mul_f64(f as f64 / 10.0),
            rate: PenaltyRate::CENT_PER_SECOND,
        }),
        ((11u64..40), (50.0f64..100.0)).prop_map(move |(f, p)| PerformanceGoal::Percentile {
            percent: p,
            deadline: mean.mul_f64(f as f64 / 10.0),
            rate: PenaltyRate::CENT_PER_SECOND,
        }),
    ]
}

/// (spec, goal, workload counts) with at most 6 queries.
fn arb_instance() -> impl Strategy<Value = (WorkloadSpec, PerformanceGoal, Vec<u32>)> {
    arb_spec().prop_flat_map(|spec| {
        let nt = spec.num_templates();
        let goal = arb_goal(&spec);
        let counts = proptest::collection::vec(0u32..=3, nt)
            .prop_filter("at least one query", |c| {
                c.iter().sum::<u32>() > 0 && c.iter().sum::<u32>() <= 6
            });
        (Just(spec), goal, counts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, .. ProptestConfig::default()
    })]

    /// A* schedules are complete, their reported cost equals the analytic
    /// Eq. 1 cost, and they never lose to any greedy baseline.
    #[test]
    fn astar_beats_every_baseline((spec, goal, counts) in arb_instance()) {
        let workload = Workload::from_counts(&counts);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        prop_assert!(result.stats.optimal);
        result.schedule.validate_complete(&workload).unwrap();

        let analytic = total_cost(&spec, &goal, &result.schedule).unwrap();
        prop_assert!(result.cost.approx_eq(analytic, 1e-9),
            "reported {} vs analytic {}", result.cost, analytic);

        for h in Heuristic::ALL {
            let s = h.schedule(&spec, &goal, &workload).unwrap();
            s.validate_complete(&workload).unwrap();
            let c = total_cost(&spec, &goal, &s).unwrap();
            prop_assert!(
                result.cost.as_dollars() <= c.as_dollars() + 1e-9,
                "A* {} lost to {} {}", result.cost, h.name(), c
            );
        }
    }

    /// The heuristic never overestimates: along the optimal path, the
    /// estimate at every vertex is at most the remaining path cost.
    #[test]
    fn heuristic_is_admissible_along_optimal_paths((spec, goal, counts) in arb_instance()) {
        use wisedb::search::HeuristicTable;
        let workload = Workload::from_counts(&counts);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        let table = HeuristicTable::new(&spec);
        // Remaining cost after step i = total − prefix(i).
        let mut prefix = Money::ZERO;
        for step in &result.steps {
            let remaining = result.cost - prefix;
            let h = table.estimate(&goal, &step.state);
            prop_assert!(
                h.as_dollars() <= remaining.as_dollars() + 1e-9,
                "h={} > remaining={}", h, remaining
            );
            prefix += step.state.edge_weight(&spec, &goal, step.decision).unwrap();
        }
    }

    /// Adaptive re-search under tightened goals returns exactly the fresh
    /// search's optimal cost, for every goal kind.
    #[test]
    fn adaptive_equals_fresh_on_tightening((spec, goal, counts) in arb_instance(),
                                           p1 in 0.05f64..0.45, p2 in 0.5f64..0.95) {
        let workload = Workload::from_counts(&counts);
        let mut adaptive = AdaptiveSearcher::new();
        for pct in [0.0, p1, p2] {
            let tightened = goal.tighten_pct(&spec, pct);
            let reused = adaptive
                .solve(&spec, &tightened, &workload, SearchConfig::default())
                .unwrap();
            let fresh = AStarSearcher::new(&spec, &tightened).solve(&workload).unwrap();
            prop_assert!(reused.cost.approx_eq(fresh.cost, 1e-9),
                "at {}: adaptive {} vs fresh {}", pct, reused.cost, fresh.cost);
        }
    }

    /// Tightening a goal never lowers the optimal cost.
    #[test]
    fn tightening_is_monotone_in_cost((spec, goal, counts) in arb_instance(),
                                      p in 0.1f64..1.0) {
        let workload = Workload::from_counts(&counts);
        let base = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        let tightened_goal = goal.tighten_pct(&spec, p);
        let tightened = AStarSearcher::new(&spec, &tightened_goal).solve(&workload).unwrap();
        prop_assert!(
            tightened.cost.as_dollars() >= base.cost.as_dollars() - 1e-9,
            "tightening lowered cost: {} -> {}", base.cost, tightened.cost
        );
    }

    /// Every schedule the baselines emit is complete and places each query
    /// on a supported VM.
    #[test]
    fn baselines_always_produce_valid_schedules((spec, goal, counts) in arb_instance()) {
        let workload = Workload::from_counts(&counts);
        for h in Heuristic::ALL {
            let s = h.schedule(&spec, &goal, &workload).unwrap();
            s.validate_complete(&workload).unwrap();
            s.query_latencies(&spec).unwrap();
        }
    }
}
