//! Warm-path training contracts, end to end through the public API.
//!
//! The solve cache canonicalizes every training sample to its template
//! multiset and memoizes the A* solve, and all solves in a run consult one
//! frozen snapshot of the shared heuristic memo taken at plan time. Those
//! two design points buy the properties pinned here:
//!
//! * **Thread invariance** — cold training is bit-identical across any
//!   `ModelConfig::threads`, because each solve is a pure function of
//!   `(spec, goal, search config, signature, frozen memo)`.
//! * **Zero-solve warm retrain** — `retrain_from` on an unchanged template
//!   mix re-runs no A* searches and reproduces the cold model bit for bit.
//! * **Eviction-safe determinism** — a capacity-1 cache evicts almost
//!   everything, yet rebuilding the identical scenario from scratch yields
//!   the identical model: eviction affects cost, never results.
//! * **Flat predict correctness** — the iterative flat-array `predict`
//!   agrees with a recursive reference evaluator walking the serialized
//!   node arrays, and with trees rebuilt from the legacy recursive JSON.

use proptest::prelude::*;

use wisedb::advisor::{ModelConfig, ModelGenerator};
use wisedb::learn::DecisionTree;
use wisedb::prelude::*;

fn tiny_spec() -> WorkloadSpec {
    WorkloadSpec::single_vm(
        vec![
            ("T1", Millis::from_secs(80)),
            ("T2", Millis::from_secs(160)),
            ("T3", Millis::from_secs(300)),
        ],
        VmType::t2_medium(),
    )
    .unwrap()
}

fn tiny_config(threads: usize, cache_capacity: usize, seed: u64) -> ModelConfig {
    ModelConfig {
        num_samples: 14,
        sample_size: 4,
        ..ModelConfig::fast()
    }
    .with_seed(seed)
    .with_threads(threads)
    .with_cache_capacity(cache_capacity)
}

fn arb_goal_kind() -> impl Strategy<Value = GoalKind> {
    prop_oneof![
        Just(GoalKind::PerQuery),
        Just(GoalKind::MaxLatency),
        Just(GoalKind::AverageLatency),
        Just(GoalKind::Percentile),
    ]
}

fn generator(kind: GoalKind, cfg: ModelConfig) -> ModelGenerator {
    let spec = tiny_spec();
    let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
    ModelGenerator::new(spec, goal, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, .. ProptestConfig::default()
    })]

    /// Cold training is bit-identical across thread counts: the sharded
    /// solver merges per-signature results in deterministic order and every
    /// solve consults the same (empty) frozen memo snapshot.
    #[test]
    fn cold_training_is_thread_invariant(
        kind in arb_goal_kind(),
        threads_a in 1usize..=4,
        threads_b in 1usize..=4,
        seed in 1u64..1000,
    ) {
        let a = generator(kind, tiny_config(threads_a, 0, seed)).train().unwrap();
        let b = generator(kind, tiny_config(threads_b, 0, seed)).train().unwrap();
        prop_assert_eq!(a.tree(), b.tree());
        prop_assert_eq!(a.stats().num_rows, b.stats().num_rows);
        prop_assert_eq!(a.stats().solves, b.stats().solves);
    }

    /// `retrain_from` on an unchanged sample mix performs zero A* solves
    /// and reproduces the cold model bit for bit — regardless of the thread
    /// count the warm run asks for.
    #[test]
    fn warm_retrain_runs_zero_solves_and_matches_cold(
        kind in arb_goal_kind(),
        cold_threads in 1usize..=4,
        warm_threads in 1usize..=4,
        seed in 1u64..1000,
    ) {
        let (cold, artifacts) = generator(kind, tiny_config(cold_threads, 0, seed))
            .train_with_artifacts()
            .unwrap();
        let warm_start = artifacts.warm_start();
        let (warm, _) = generator(kind, tiny_config(warm_threads, 0, seed))
            .retrain_from(&warm_start)
            .unwrap();
        prop_assert_eq!(warm.stats().solves, 0);
        prop_assert_eq!(warm.stats().cache_hits, warm.stats().num_samples as u64);
        prop_assert_eq!(warm.tree(), cold.tree());
        prop_assert_eq!(warm.stats().num_rows, cold.stats().num_rows);
    }

    /// A capacity-1 cache evicts on every distinct signature, so a warm
    /// retrain re-solves most of the draw — but the whole scenario rebuilt
    /// from scratch lands on the identical model, and the cache never
    /// exceeds its bound. Eviction costs time, never changes results.
    #[test]
    fn eviction_changes_cost_not_results(
        kind in arb_goal_kind(),
        threads in 1usize..=4,
        seed in 1u64..1000,
    ) {
        let run = || {
            let gen = generator(kind, tiny_config(threads, 1, seed));
            let (cold, artifacts) = gen.train_with_artifacts().unwrap();
            let warm_start = artifacts.warm_start();
            assert!(warm_start.cache().len() <= 1, "cache exceeded its bound");
            let reseeded = generator(kind, tiny_config(threads, 1, seed ^ 0xD1F7));
            let (shifted, _) = reseeded.retrain_from(&warm_start).unwrap();
            (cold, shifted)
        };
        let (cold_a, shifted_a) = run();
        let (cold_b, shifted_b) = run();
        prop_assert_eq!(cold_a.tree(), cold_b.tree());
        prop_assert_eq!(shifted_a.tree(), shifted_b.tree());
        prop_assert_eq!(shifted_a.stats().solves, shifted_b.stats().solves);
        prop_assert_eq!(shifted_a.stats().num_rows, shifted_b.stats().num_rows);
    }

    /// Reseeded warm retrains (the drift loop's realistic step) are
    /// reproducible: two independently built caches produce the same
    /// retrained model and the same solve/hit split.
    #[test]
    fn reseeded_retrain_is_deterministic(
        kind in arb_goal_kind(),
        threads_a in 1usize..=4,
        threads_b in 1usize..=4,
        seed in 1u64..1000,
    ) {
        let retrain = |threads: usize| {
            let (_, artifacts) = generator(kind, tiny_config(threads, 0, seed))
                .train_with_artifacts()
                .unwrap();
            let reseeded = generator(kind, tiny_config(threads, 0, seed.wrapping_mul(31) + 7));
            reseeded.retrain_from(&artifacts.warm_start()).unwrap().0
        };
        let a = retrain(threads_a);
        let b = retrain(threads_b);
        prop_assert_eq!(a.tree(), b.tree());
        prop_assert_eq!(a.stats().solves, b.stats().solves);
        prop_assert_eq!(a.stats().cache_hits, b.stats().cache_hits);
        prop_assert_eq!(a.stats().num_rows, b.stats().num_rows);
    }
}

// ---------------------------------------------------------------------------
// Flat-array predict: differential against a recursive reference
// ---------------------------------------------------------------------------

/// The node arrays of a serialized tree, extracted for reference evaluation.
struct FlatArrays {
    feature: Vec<u64>,
    threshold: Vec<f64>,
    right: Vec<u64>,
    num_features: usize,
}

fn extract_arrays(tree: &DecisionTree) -> FlatArrays {
    let json = serde_json::to_string(tree).unwrap();
    let v = serde_json::from_str_value(&json).unwrap();
    let ints = |name: &str| -> Vec<u64> {
        v.get(name)
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect()
    };
    let floats = v
        .get("threshold")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|x| x.as_f64().unwrap())
        .collect();
    FlatArrays {
        feature: ints("feature"),
        threshold: floats,
        right: ints("right"),
        num_features: v.get("num_features").unwrap().as_u64().unwrap() as usize,
    }
}

/// The retired recursive evaluator, reconstructed over the flat arrays:
/// descend left to `i + 1` on `features[f] < threshold`, else jump to
/// `right[i]`, until a leaf (`feature == u32::MAX`) yields its label.
fn predict_recursive(t: &FlatArrays, features: &[f64], i: usize) -> usize {
    if t.feature[i] == u64::from(u32::MAX) {
        return t.right[i] as usize;
    }
    if features[t.feature[i] as usize] < t.threshold[i] {
        predict_recursive(t, features, i + 1)
    } else {
        predict_recursive(t, features, t.right[i] as usize)
    }
}

#[test]
fn flat_predict_matches_recursive_reference() {
    let model = generator(GoalKind::MaxLatency, tiny_config(2, 0, 42))
        .train()
        .unwrap();
    let arrays = extract_arrays(model.tree());
    // Deterministic pseudo-random probe vectors spanning the value shapes
    // the features produce: small counts, waits, and infinite costs.
    let mut state = 0x9E37_79B9_u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..2000 {
        let features: Vec<f64> = (0..arrays.num_features)
            .map(|_| match next() % 5 {
                0 => f64::INFINITY,
                1 => 0.0,
                k => (next() % 600) as f64 / k as f64,
            })
            .collect();
        assert_eq!(
            model.tree().predict(&features),
            predict_recursive(&arrays, &features, 0),
        );
    }
}

#[test]
fn legacy_recursive_model_json_predicts_identically() {
    // A tree serialized by the pre-flat representation (recursive
    // externally-tagged nodes). Loading it must rebuild the preorder
    // arrays; predictions then agree with the recursive reference again.
    let legacy = r#"{
        "root": {"Split": {
            "feature": 0,
            "threshold": 3.5,
            "left": {"Leaf": {"label": 0, "samples": 6, "errors": 1}},
            "right": {"Split": {
                "feature": 2,
                "threshold": 10.0,
                "left": {"Leaf": {"label": 1, "samples": 4, "errors": 0}},
                "right": {"Leaf": {"label": 2, "samples": 5, "errors": 2}}
            }}
        }},
        "num_features": 4,
        "num_labels": 3
    }"#;
    let tree: DecisionTree = serde_json::from_str(legacy).unwrap();
    assert_eq!(tree.num_nodes(), 5);
    assert_eq!(tree.root_split(), Some((0, 3.5)));
    let arrays = extract_arrays(&tree);
    for a in 0..8 {
        for b in 0..16 {
            let features = vec![a as f64, 0.0, b as f64, 1.0];
            assert_eq!(
                tree.predict(&features),
                predict_recursive(&arrays, &features, 0),
            );
        }
    }
}
