//! The paper's worked examples, encoded as executable assertions.

use wisedb::prelude::*;
use wisedb::search::{Decision, SearchState};
use wisedb_core::PenaltyRate;

/// Figure 3's setup: T1 = 2 minutes (deadline 3m), T2 = 1 minute
/// (deadline 1m), single t2.medium type.
fn fig3() -> (WorkloadSpec, PerformanceGoal) {
    let spec = WorkloadSpec::single_vm(
        vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
        VmType::t2_medium(),
    )
    .unwrap();
    let goal = PerformanceGoal::PerQuery {
        deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
        rate: PenaltyRate::CENT_PER_SECOND,
    };
    (spec, goal)
}

/// Figure 3: scenario 1 (three VMs, no violations) beats scenario 2 (two
/// VMs, 3 minutes of violations), and the optimal scheduler finds a
/// three-VM, zero-penalty schedule.
#[test]
fn figure_three_optimal_uses_three_vms() {
    let (spec, goal) = fig3();
    let workload = Workload::from_counts(&[1, 3]);
    let best = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
    assert!(best.stats.optimal);
    assert_eq!(best.schedule.num_vms(), 3);
    let breakdown = cost_breakdown(&spec, &goal, &best.schedule).unwrap();
    assert_eq!(breakdown.penalty, Money::ZERO);
}

/// §3's complexity discussion: for T1/T2/T3 of 4/3/2 minutes with a
/// 9-minute max-latency bound and two instances each, FFD and FFI both
/// need three VMs while the optimal interleaving S' needs two.
#[test]
fn section_three_ffd_ffi_and_the_better_strategy() {
    let spec = WorkloadSpec::single_vm(
        vec![
            ("T1", Millis::from_mins(4)),
            ("T2", Millis::from_mins(3)),
            ("T3", Millis::from_mins(2)),
        ],
        VmType::t2_medium(),
    )
    .unwrap();
    let goal = PerformanceGoal::MaxLatency {
        deadline: Millis::from_mins(9),
        rate: PenaltyRate::CENT_PER_SECOND,
    };
    let workload = Workload::from_counts(&[2, 2, 2]);

    let ffd = Heuristic::FirstFitDecreasing
        .schedule(&spec, &goal, &workload)
        .unwrap();
    let ffi = Heuristic::FirstFitIncreasing
        .schedule(&spec, &goal, &workload)
        .unwrap();
    let optimal = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();

    assert_eq!(ffd.num_vms(), 3, "SFFD = {{[q1,q2],[q3,q4,q5],[q6]}}");
    assert_eq!(ffi.num_vms(), 3, "SFFI = {{[q5,q6,q3],[q4,q1],[q2]}}");
    assert_eq!(
        optimal.schedule.num_vms(),
        2,
        "S' = {{[T1,T2,T3],[T1,T2,T3]}}"
    );

    let c_ffd = total_cost(&spec, &goal, &ffd).unwrap();
    let c_ffi = total_cost(&spec, &goal, &ffi).unwrap();
    assert!(optimal.cost < c_ffd);
    assert!(optimal.cost < c_ffi);
}

/// §4.5's walk-through: with T1 (2m latency, 3m deadline) and T2 (1m
/// latency, 1m deadline), the learned strategy behaves like first-fit
/// increasing — place a T2, then a T1, then open a new VM — producing
/// {[T2, T1], [T2, T1], ...} style schedules. We assert the *outcome*:
/// the model's schedule for {q1(T1), q2(T2), q3(T2)} uses 2 VMs and pairs
/// one T2 with the T1.
#[test]
fn section_four_five_walkthrough_schedule_shape() {
    let (spec, goal) = fig3();
    // Train a model on this spec (small but more than the walkthrough).
    let model = ModelGenerator::new(
        spec.clone(),
        goal.clone(),
        wisedb::advisor::ModelConfig {
            num_samples: 200,
            sample_size: 6,
            seed: 42,
            ..wisedb::advisor::ModelConfig::fast()
        },
    )
    .train()
    .unwrap();

    let workload = Workload::from_templates([TemplateId(0), TemplateId(1), TemplateId(1)]);
    let schedule = model.schedule_batch(&workload).unwrap();
    schedule.validate_complete(&workload).unwrap();

    // The optimal schedule costs 2 startups + 4 query-minutes (T2 first,
    // then T1 on one VM; the other T2 alone). The learned model must match
    // that cost exactly here — the paper walks through precisely this case.
    let optimal = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
    let model_cost = total_cost(&spec, &goal, &schedule).unwrap();
    assert!(
        model_cost.approx_eq(optimal.cost, 1e-6),
        "model {model_cost} vs optimal {optimal_cost}",
        optimal_cost = optimal.cost
    );
    assert_eq!(schedule.num_vms(), 2);
    // No VM may run two T2s (the second would violate its 1m deadline).
    for vm in &schedule.vms {
        let t2s = vm
            .queue
            .iter()
            .filter(|p| p.template == TemplateId(1))
            .count();
        assert!(t2s <= 1);
    }
}

/// Lemma 4.1 (graph reduction preserves goal vertices): every complete
/// schedule with no empty VMs is reachable in the reduced graph. We verify
/// the construction on a concrete case: the reduced successor relation can
/// reproduce an arbitrary no-empty-VM schedule's decision sequence.
#[test]
fn lemma_four_one_reduced_graph_reaches_compact_schedules() {
    let (spec, goal) = fig3();
    // Target schedule: vm1 = [T2, T1], vm2 = [T2] — built VM by VM, which
    // is exactly the decision order the reduced graph permits.
    let decisions = [
        Decision::CreateVm(VmTypeId(0)),
        Decision::Place(TemplateId(1)),
        Decision::Place(TemplateId(0)),
        Decision::CreateVm(VmTypeId(0)),
        Decision::Place(TemplateId(1)),
    ];
    let mut state = SearchState::initial(vec![1, 2], &goal);
    for d in decisions {
        assert!(state.is_valid(&spec, d), "reduced graph rejected {d}");
        let (next, _) = state.apply(&spec, &goal, d).unwrap();
        state = next;
    }
    assert!(state.is_goal());
}

/// Figure 2/§2: queries with identical latency are the same template to
/// WiSeDB; an unknown query is matched to the nearest-latency template.
#[test]
fn unseen_queries_match_nearest_template() {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let model = ModelGenerator::new(
        spec.clone(),
        goal,
        wisedb::advisor::ModelConfig {
            num_samples: 50,
            sample_size: 6,
            seed: 1,
            ..wisedb::advisor::ModelConfig::fast()
        },
    )
    .train()
    .unwrap();
    // T1 is 120s, T2 ≈ 146.7s; 130s sits nearer T1.
    assert_eq!(
        model.nearest_template(Millis::from_secs(130)),
        TemplateId(0)
    );
    // Far beyond every template: clamps to the slowest (T10, 360s).
    assert_eq!(
        model.nearest_template(Millis::from_secs(4000)),
        TemplateId(9)
    );
}
