//! Multi-tenant invariants, end to end (tier 1).
//!
//! Three guarantees the SLA-class refactor must keep:
//!
//! 1. **Single-class == legacy single-goal, bit-identically.** A
//!    one-class service must place, time, bill, and account every query
//!    exactly like the pre-refactor single-goal pipeline — represented
//!    here by `OnlineScheduler::run`, the §6.3 batch replayer that the
//!    original service was differentially tested against.
//! 2. **Per-class accounting partitions the fleet totals.** Completions,
//!    violations, penalties, dollars, and latency populations reported
//!    per class must sum (or merge) to the fleet-wide numbers.
//! 3. **Determinism.** The multi-class event loop replays bit-for-bit
//!    under a fixed seed, including across `ModelConfig::threads`
//!    settings (per-class training merges per-sample results in index
//!    order).

use wisedb::prelude::*;
use wisedb::runtime::generate_class_stream;
use wisedb_core::ArrivingQuery;

fn spec() -> WorkloadSpec {
    wisedb::sim::catalog::tpch_like(4)
}

fn tiny_training() -> ModelConfig {
    ModelConfig {
        num_samples: 60,
        sample_size: 6,
        seed: 11,
        ..ModelConfig::fast()
    }
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        online: OnlineConfig {
            training: tiny_training(),
            age_quantum: Millis::from_secs(30),
            ..OnlineConfig::default()
        },
        ..RuntimeConfig::default()
    }
}

fn three_classes(spec: &WorkloadSpec) -> Vec<SlaClass> {
    vec![
        SlaClass::new(
            "gold",
            PerformanceGoal::paper_default(GoalKind::PerQuery, spec).unwrap(),
        )
        .with_priority(2),
        SlaClass::new(
            "silver",
            PerformanceGoal::paper_default(GoalKind::MaxLatency, spec).unwrap(),
        )
        .with_priority(1),
        SlaClass::new(
            "bronze",
            PerformanceGoal::paper_default(GoalKind::AverageLatency, spec).unwrap(),
        ),
    ]
}

fn tagged_stream(spec: &WorkloadSpec, n_per_class: usize) -> Vec<ArrivingQuery> {
    let mix = TemplateMix::uniform(spec.num_templates());
    let streams = (0..3u32)
        .map(|c| {
            let mut process =
                PoissonProcess::per_second(1.0 / (200.0 + 50.0 * c as f64), mix.clone());
            generate_class_stream(&mut process, n_per_class, 31 + c as u64, TenantId(c))
        })
        .collect();
    merge_streams(streams)
}

/// Invariant 1: a single-class service reproduces the legacy single-goal
/// pipeline bit-identically, for every goal kind — same placements, same
/// virtual times, same total cost — and its one metrics row mirrors the
/// fleet-wide numbers.
#[test]
fn single_class_service_is_bit_identical_to_the_legacy_pipeline() {
    let spec = spec();
    let mut process = PoissonProcess::per_second(0.005, TemplateMix::uniform(spec.num_templates()));
    let stream = wisedb::runtime::generate_stream(&mut process, 20, 77);
    for kind in [
        GoalKind::PerQuery,
        GoalKind::MaxLatency,
        GoalKind::AverageLatency,
    ] {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();

        // The multi-tenant code path, configured with exactly one class.
        let mut svc = WorkloadService::train_classes(
            spec.clone(),
            vec![SlaClass::solo(goal.clone())],
            config(),
        )
        .unwrap();
        let report = svc.run_stream(&stream).unwrap();

        // The legacy §6.3 batch replayer (untouched single-goal code).
        let mut replayer =
            OnlineScheduler::train(spec.clone(), goal.clone(), config().online).unwrap();
        let batch = replayer.run(&stream).unwrap();

        let mut by_query = report.completions.clone();
        by_query.sort_by_key(|c| c.query);
        assert_eq!(by_query.len(), batch.outcomes.len(), "{kind:?}");
        for (c, o) in by_query.iter().zip(&batch.outcomes) {
            assert_eq!(c.query, o.query, "{kind:?}");
            assert_eq!(c.template, o.template, "{kind:?}");
            assert_eq!(c.vm_index, o.vm_index, "{kind:?}");
            assert_eq!(c.start, o.start, "{kind:?}");
            assert_eq!(c.finish, o.finish, "{kind:?}");
            assert_eq!(c.class, TenantId::DEFAULT, "{kind:?}");
        }
        let total = report.last.total_cost();
        let batch_total = batch.total_cost(&spec, &goal).unwrap();
        assert!(
            total.approx_eq(batch_total, 1e-9),
            "{kind:?}: service {total} vs replayer {batch_total}"
        );

        // The single class row IS the fleet view.
        assert_eq!(report.last.classes.len(), 1);
        let row = &report.last.classes[0];
        assert_eq!(row.completed, report.last.completed);
        assert_eq!(row.admitted, report.last.admitted);
        assert_eq!(row.sla_violations, report.last.sla_violations);
        assert_eq!(row.latency, report.last.latency);
        assert_eq!(row.queueing, report.last.queueing);
        assert!(row.billed.approx_eq(report.last.billed, 1e-9));
        assert!(row.penalty.approx_eq(report.last.penalty, 1e-9));
    }
}

/// Invariant 2: per-class accounting sums to the fleet-wide totals — for
/// counts, violations, penalties, dollars, and the latency population.
#[test]
fn per_class_accounting_partitions_the_fleet_totals() {
    let spec = spec();
    let mut svc =
        WorkloadService::train_classes(spec.clone(), three_classes(&spec), config()).unwrap();
    let report = svc.run_stream(&tagged_stream(&spec, 12)).unwrap();
    let last = &report.last;
    assert_eq!(last.classes.len(), 3);

    let sum = |f: &dyn Fn(&ClassMetrics) -> u64| last.classes.iter().map(|c| f(c)).sum::<u64>();
    assert_eq!(sum(&|c| c.completed), last.completed);
    assert_eq!(sum(&|c| c.admitted), last.admitted);
    assert_eq!(sum(&|c| c.rejected), last.rejected);
    assert_eq!(sum(&|c| c.sla_violations), last.sla_violations);
    assert_eq!(sum(&|c| c.latency.count), last.latency.count);

    let penalty: Money = last.classes.iter().map(|c| c.penalty).sum();
    assert!(penalty.approx_eq(last.penalty, 1e-9), "penalties partition");
    let billed: Money = last.classes.iter().map(|c| c.billed).sum();
    assert!(billed.approx_eq(last.billed, 1e-9), "dollars partition");

    // The fleet latency population is the merge of the class populations:
    // the fleet max is the max of class maxes, and every class percentile
    // is bounded by its population's extremes.
    let fleet_max = last.classes.iter().map(|c| c.latency.max).max().unwrap();
    assert_eq!(fleet_max, last.latency.max);

    // Violation *rates* are per-class quantities judged under per-class
    // goals: bronze (average-latency proxy bound) and gold (per-query
    // deadlines) genuinely differ in what counts as a violation.
    for row in &last.classes {
        let expected = if row.completed == 0 {
            0.0
        } else {
            row.sla_violations as f64 / row.completed as f64
        };
        assert!((row.violation_rate - expected).abs() < 1e-12);
    }

    // Completion tags partition the completion list itself.
    for (i, _) in last.classes.iter().enumerate() {
        let tagged = report
            .completions
            .iter()
            .filter(|c| c.class == TenantId(i as u32))
            .count() as u64;
        assert_eq!(tagged, last.classes[i].completed);
    }
}

/// Invariant 3: the multi-class event loop is deterministic under a fixed
/// seed, and `ModelConfig::threads` (parallel per-sample training solves)
/// does not perturb it — the index-ordered merge keeps per-class models
/// bit-identical, so the whole service replays identically.
#[test]
fn multi_class_loop_is_deterministic_across_thread_counts() {
    let spec = spec();
    let stream = tagged_stream(&spec, 10);
    let run = |threads: usize| {
        let mut cfg = config();
        cfg.online.training.threads = threads;
        let mut svc =
            WorkloadService::train_classes(spec.clone(), three_classes(&spec), cfg).unwrap();
        svc.run_stream(&stream).unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    let auto = run(0);
    assert_eq!(serial.completions, parallel.completions);
    assert_eq!(serial.completions, auto.completions);
    assert_eq!(serial.last.latency, parallel.last.latency);
    assert_eq!(serial.last.billed, parallel.last.billed);
    assert_eq!(serial.last.penalty, parallel.last.penalty);
    assert_eq!(serial.last.classes, parallel.last.classes);
    // And re-running the same configuration replays bit-for-bit.
    let again = run(1);
    assert_eq!(serial.completions, again.completions);
    assert_eq!(serial.last.classes, again.last.classes);
}

/// The acceptance scenario: a 3-class stream on one shared fleet, with
/// per-class SLA metrics present and populated in every snapshot.
#[test]
fn three_class_stream_reports_per_class_sla_metrics() {
    let spec = spec();
    let mut cfg = config();
    cfg.snapshot_every = 10;
    let mut svc = WorkloadService::train_classes(spec.clone(), three_classes(&spec), cfg).unwrap();
    let report = svc.run_stream(&tagged_stream(&spec, 10)).unwrap();
    assert!(!report.snapshots.is_empty());
    for snap in report.snapshots.iter().chain([&report.last]) {
        assert_eq!(snap.classes.len(), 3);
        assert_eq!(snap.classes[0].name, "gold");
        assert_eq!(snap.classes[2].name, "bronze");
        assert_eq!(snap.classes[0].priority, 2);
    }
    let last = &report.last;
    assert_eq!(last.completed, 30);
    for row in &last.classes {
        assert_eq!(row.completed, 10, "{}", row.name);
        assert!(row.latency.p95 >= row.latency.p50, "{}", row.name);
        assert!(row.latency.p50 > Millis::ZERO, "{}", row.name);
    }
    // Shared fleet: all three classes' work ran somewhere, and the class
    // cost attribution covers the whole bill.
    assert!(last.vms_provisioned >= 1);
    let attributed: Money = last.classes.iter().map(|c| c.billed).sum();
    assert!(attributed.approx_eq(last.billed, 1e-9));
}
