//! Property-based tests on the foundational unit types — `Money` and
//! `Millis` arithmetic (saturation, ordering, conversion round-trips) — and
//! on the `emd_1d` distance used by strategy recommendation.

use proptest::prelude::*;

use wisedb::advisor::emd_1d;
use wisedb::prelude::{Millis, Money};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 200, .. ProptestConfig::default()
    })]

    // ----------------------------------------------------------------
    // Money
    // ----------------------------------------------------------------

    #[test]
    fn money_dollar_cent_round_trip(d in -1.0e6f64..1.0e6) {
        let m = Money::from_dollars(d);
        prop_assert_eq!(m.as_dollars(), d);
        // cents <-> dollars is a multiply/divide by 100; exact up to one ulp.
        prop_assert!(Money::from_cents(m.as_cents()).approx_eq(m, 1e-9));
    }

    #[test]
    fn money_add_sub_inverse(a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6) {
        let (ma, mb) = (Money::from_dollars(a), Money::from_dollars(b));
        prop_assert!(((ma + mb) - mb).approx_eq(ma, 1e-6));
        prop_assert_eq!(ma + mb, mb + ma);
        prop_assert_eq!(ma - mb, -(mb - ma));
    }

    #[test]
    fn money_ordering_matches_dollars(a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6) {
        let (ma, mb) = (Money::from_dollars(a), Money::from_dollars(b));
        prop_assert_eq!(ma.total_cmp(&mb), a.total_cmp(&b));
        prop_assert_eq!(ma.max(mb).as_dollars(), a.max(b));
        prop_assert_eq!(ma.min(mb).as_dollars(), a.min(b));
    }

    #[test]
    fn money_clamp_saturates_at_zero(a in -1.0e6f64..1.0e6) {
        let clamped = Money::from_dollars(a).clamp_non_negative();
        prop_assert!(clamped.as_dollars() >= 0.0);
        // Idempotent, and the identity on non-negative amounts.
        prop_assert_eq!(clamped.clamp_non_negative(), clamped);
        if a >= 0.0 {
            prop_assert_eq!(clamped.as_dollars(), a);
        }
    }

    #[test]
    fn money_sum_equals_fold(xs in proptest::collection::vec(-1.0e3f64..1.0e3, 0..16)) {
        let summed: Money = xs.iter().map(|&d| Money::from_dollars(d)).sum();
        let folded = xs
            .iter()
            .fold(Money::ZERO, |acc, &d| acc + Money::from_dollars(d));
        prop_assert!(summed.approx_eq(folded, 1e-9));
    }

    #[test]
    fn money_json_round_trip(d in -1.0e6f64..1.0e6) {
        let m = Money::from_dollars(d);
        let json = serde_json::to_string(&m).unwrap();
        let back: Money = serde_json::from_str(&json).unwrap();
        // Rust prints the shortest f64 representation that re-parses
        // exactly, so the round-trip is bit-precise, not just approximate.
        prop_assert_eq!(back, m);
    }

    // ----------------------------------------------------------------
    // Millis
    // ----------------------------------------------------------------

    #[test]
    fn millis_saturating_sub_clamps(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let (ma, mb) = (Millis::from_millis(a), Millis::from_millis(b));
        prop_assert_eq!(ma.saturating_sub(mb).as_millis(), a.saturating_sub(b));
        // Never negative, and zero exactly when b dominates.
        prop_assert_eq!(ma.saturating_sub(mb).is_zero(), a <= b);
        // Saturated subtraction undoes addition.
        prop_assert_eq!((ma + mb).saturating_sub(mb), ma);
    }

    #[test]
    fn millis_ordering_matches_raw(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let (ma, mb) = (Millis::from_millis(a), Millis::from_millis(b));
        prop_assert_eq!(ma.cmp(&mb), a.cmp(&b));
        prop_assert_eq!(ma.max(mb).as_millis(), a.max(b));
        prop_assert_eq!(ma.min(mb).as_millis(), a.min(b));
    }

    #[test]
    fn millis_conversion_round_trips(secs in 0u64..1_000_000, ms in 0u64..1_000_000_000) {
        prop_assert_eq!(Millis::from_secs(secs).as_millis(), secs * 1_000);
        prop_assert_eq!(Millis::from_mins(secs % 10_000), Millis::from_secs((secs % 10_000) * 60));
        // f64 seconds round-trip exactly at millisecond resolution for any
        // duration this codebase works with (well below 2^52 ms).
        let m = Millis::from_millis(ms);
        prop_assert_eq!(Millis::from_secs_f64(m.as_secs_f64()), m);
    }

    #[test]
    fn millis_mul_f64_is_monotone(ms in 0u64..1_000_000_000, f in 0.0f64..10.0, g in 0.0f64..10.0) {
        let m = Millis::from_millis(ms);
        let (lo, hi) = if f <= g { (f, g) } else { (g, f) };
        prop_assert!(m.mul_f64(lo) <= m.mul_f64(hi));
        prop_assert_eq!(m.mul_f64(0.0), Millis::ZERO);
        prop_assert_eq!(m.mul_f64(1.0), m);
    }

    #[test]
    fn millis_json_round_trip(ms in 0u64..u64::MAX / 2) {
        let m = Millis::from_millis(ms);
        let json = serde_json::to_string(&m).unwrap();
        prop_assert_eq!(&json, &ms.to_string(), "transparent newtype must serialize as a bare integer");
        let back: Millis = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, m);
    }

    // ----------------------------------------------------------------
    // emd_1d
    // ----------------------------------------------------------------

    #[test]
    fn emd_symmetry_and_identity(
        a in proptest::collection::vec(0.0f64..10.0, 1..8),
        b in proptest::collection::vec(0.0f64..10.0, 1..8),
        scale in 0.1f64..10.0,
    ) {
        let b = &b[..a.len().min(b.len())];
        let a = &a[..b.len()];
        prop_assert!((emd_1d(a, b) - emd_1d(b, a)).abs() < 1e-9);
        prop_assert!(emd_1d(a, a) < 1e-12);
        prop_assert!(emd_1d(a, b) >= 0.0);
        // Shape-only: profiles are normalized, so uniform scaling is free.
        let scaled: Vec<f64> = a.iter().map(|x| x * scale).collect();
        prop_assert!(emd_1d(a, &scaled) < 1e-9);
    }

    #[test]
    fn emd_point_masses_measure_displacement(
        len in 2usize..10,
        i in 0usize..10,
        j in 0usize..10,
        k in 0usize..10,
    ) {
        // Distance between unit point masses is exactly their displacement,
        // so farther displacement is never cheaper (the "triangle-ish"
        // monotonicity that strategy pruning relies on).
        let (i, j, k) = (i % len, j % len, k % len);
        let point = |at: usize| {
            let mut p = vec![0.0; len];
            p[at] = 1.0;
            p
        };
        let d_ij = emd_1d(&point(i), &point(j));
        let d_ik = emd_1d(&point(i), &point(k));
        prop_assert!((d_ij - (i as f64 - j as f64).abs()).abs() < 1e-12);
        if j.abs_diff(i) <= k.abs_diff(i) {
            prop_assert!(d_ij <= d_ik + 1e-12);
        }
        // Bounded by the support's diameter.
        prop_assert!(d_ij <= (len - 1) as f64 + 1e-12);
    }

    #[test]
    fn emd_triangle_inequality(
        a in proptest::collection::vec(0.0f64..10.0, 5),
        b in proptest::collection::vec(0.0f64..10.0, 5),
        c in proptest::collection::vec(0.0f64..10.0, 5),
    ) {
        prop_assert!(emd_1d(&a, &c) <= emd_1d(&a, &b) + emd_1d(&b, &c) + 1e-9);
    }
}
