//! Scheduler sharding, end to end (tier 1).
//!
//! Four guarantees the sharded scheduler must keep:
//!
//! 1. **1 shard == unsharded, bit-identically, for every goal kind.** A
//!    `ShardedService` with one shard must place, time, bill, and account
//!    every query exactly like the unsharded `WorkloadService` it wraps —
//!    the singleton-tick fast path literally *is* the unsharded pipeline.
//! 2. **Shard count is invisible.** Multi-class ticks fan out to worker
//!    threads, but the merge applies plans in tick order, so completions
//!    and metrics are identical across any shard count.
//! 3. **Rebalancing moves classes, not outcomes.** An eager rebalancer
//!    (deterministic batch-size signal) must fire without perturbing any
//!    per-class metric row, and the rows keep partitioning the fleet
//!    totals.
//! 4. **The wire keeps all of it.** A sharded server replays a lockstep
//!    trace verdict-for-verdict like the in-process unsharded service,
//!    and a tiny command-queue depth converts overflow into typed `Shed`
//!    frames — every concurrent request gets exactly one answer, never a
//!    dropped connection.

use wisedb::prelude::*;
use wisedb::runtime::{generate_class_stream, generate_stream, OfferOutcome};
use wisedb_core::ArrivingQuery;
use wisedb_runtime::{LoadSignal, ShardConfig, ShardedService};
use wisedb_serve::{Client, ServeConfig, Server};

fn spec() -> WorkloadSpec {
    wisedb::sim::catalog::tpch_like(4)
}

fn tiny_training() -> ModelConfig {
    ModelConfig {
        num_samples: 48,
        sample_size: 6,
        seed: 23,
        ..ModelConfig::fast()
    }
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        online: OnlineConfig {
            training: tiny_training(),
            age_quantum: Millis::from_secs(30),
            ..OnlineConfig::default()
        },
        ..RuntimeConfig::default()
    }
}

fn three_classes(spec: &WorkloadSpec) -> Vec<SlaClass> {
    vec![
        SlaClass::new(
            "gold",
            PerformanceGoal::paper_default(GoalKind::PerQuery, spec).unwrap(),
        )
        .with_priority(2),
        SlaClass::new(
            "silver",
            PerformanceGoal::paper_default(GoalKind::MaxLatency, spec).unwrap(),
        )
        .with_priority(1),
        SlaClass::new(
            "bronze",
            PerformanceGoal::paper_default(GoalKind::AverageLatency, spec).unwrap(),
        ),
    ]
}

/// One sparse Poisson sub-stream per class, merged by arrival time —
/// class-disjoint traffic that exercises multi-group ticks.
fn tagged_stream(spec: &WorkloadSpec, n_per_class: usize) -> Vec<ArrivingQuery> {
    let mix = TemplateMix::uniform(spec.num_templates());
    let streams = (0..3u32)
        .map(|c| {
            let mut process =
                PoissonProcess::per_second(1.0 / (200.0 + 50.0 * c as f64), mix.clone());
            generate_class_stream(&mut process, n_per_class, 31 + c as u64, TenantId(c))
        })
        .collect();
    merge_streams(streams)
}

/// Zeroes the only machine-dependent snapshot fields — scheduler
/// wall-clock overhead — so two runs of identical *decisions* compare
/// equal.
fn scrub(mut snapshot: MetricsSnapshot) -> MetricsSnapshot {
    snapshot.mean_decision_secs = 0.0;
    snapshot.p95_decision_secs = 0.0;
    snapshot
}

/// Guarantee 1: for every goal kind — including the percentile goal,
/// whose model is the heaviest — the 1-shard sharded service reproduces
/// the unsharded service bit for bit on the same fixed-seed trace, and
/// never pays a fan-out epoch doing it.
#[test]
fn one_shard_replay_is_bit_identical_to_unsharded_for_every_goal_kind() {
    let spec = spec();
    let mut process = PoissonProcess::per_second(0.02, TemplateMix::uniform(spec.num_templates()));
    let stream = generate_stream(&mut process, 14, 0x5EA2D);

    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let classes = vec![SlaClass::solo(goal)];

        let mut plain =
            WorkloadService::train_classes(spec.clone(), classes.clone(), config()).unwrap();
        let plain_report = plain.run_stream(&stream).unwrap();

        let mut sharded = ShardedService::train_classes(
            spec.clone(),
            classes,
            config(),
            ShardConfig::with_shards(1),
        )
        .unwrap();
        let sharded_report = sharded.run_stream(&stream).unwrap();

        assert_eq!(
            sharded_report.completions,
            plain_report.completions,
            "{}: 1-shard changed a placement or finish time",
            kind.name()
        );
        assert_eq!(
            scrub(sharded_report.last),
            scrub(plain_report.last),
            "{}: 1-shard changed the metrics",
            kind.name()
        );
        // Singleton ticks ride the shared unsharded pipeline directly:
        // no snapshot epoch, no worker round trip.
        let stats = sharded.stats();
        assert_eq!(stats.epochs, 0, "{}", kind.name());
        assert_eq!(stats.decisions, stats.merged_plans, "{}", kind.name());
    }
}

/// Guarantee 2: the same class-disjoint traffic replayed through 1, 2,
/// and 3 shards — with multi-group ticks forcing the epoch-snapshot
/// fan-out — produces identical completions and identical per-class
/// metric rows. The merge order, not the shard layout, decides outputs.
#[test]
fn ticked_replay_is_deterministic_across_shard_counts() {
    let spec = spec();
    let stream = tagged_stream(&spec, 10);
    let run = |shards: usize| {
        let mut svc = ShardedService::train_classes(
            spec.clone(),
            three_classes(&spec),
            config(),
            ShardConfig::with_shards(shards),
        )
        .unwrap();
        let report = svc.run_ticked(&stream, 4).unwrap();
        (report, svc.stats())
    };
    let (base, base_stats) = run(1);
    assert_eq!(base.last.completed, 30);
    for shards in [2, 3] {
        let (report, stats) = run(shards);
        assert_eq!(
            report.completions, base.completions,
            "{shards} shards changed the schedule"
        );
        assert_eq!(
            scrub(report.last.clone()),
            scrub(base.last.clone()),
            "{shards} shards changed the metrics"
        );
        assert_eq!(report.last.classes, base.last.classes);
        // Same plans, same work — only the lanes differ.
        assert_eq!(stats.decisions, base_stats.decisions);
        assert_eq!(stats.merged_plans, base_stats.merged_plans);
        assert!(stats.epochs > 0, "multi-group ticks must fan out");
    }
}

/// Guarantee 3: an eager rebalancer (deterministic batch-size load
/// signal, hair-trigger skew threshold) actually fires — and every
/// per-class metric row is still identical to the run with rebalancing
/// disabled, with the rows partitioning the fleet totals.
#[test]
fn rebalancing_preserves_per_class_metric_sums() {
    let spec = spec();
    let stream = tagged_stream(&spec, 10);
    let run = |rebalance_every: u64| {
        let mut svc = ShardedService::train_classes(
            spec.clone(),
            three_classes(&spec),
            config(),
            ShardConfig {
                shards: 2,
                rebalance_every,
                skew_threshold: 1.01,
                signal: LoadSignal::BatchSize,
                ..ShardConfig::default()
            },
        )
        .unwrap();
        let report = svc.run_ticked(&stream, 4).unwrap();
        (report, svc.stats())
    };
    let (pinned, pinned_stats) = run(0);
    let (moved, moved_stats) = run(2);
    assert_eq!(pinned_stats.rebalances, 0);
    assert!(
        moved_stats.rebalances > 0,
        "the eager configuration must actually move a class"
    );

    assert_eq!(moved.completions, pinned.completions);
    assert_eq!(scrub(moved.last.clone()), scrub(pinned.last.clone()));
    assert_eq!(moved.last.classes, pinned.last.classes);

    // The rows still partition the fleet totals after classes moved.
    let last = &moved.last;
    assert_eq!(last.classes.len(), 3);
    let sum = |f: &dyn Fn(&ClassMetrics) -> u64| last.classes.iter().map(|c| f(c)).sum::<u64>();
    assert_eq!(sum(&|c| c.completed), last.completed);
    assert_eq!(sum(&|c| c.admitted), last.admitted);
    assert_eq!(sum(&|c| c.sla_violations), last.sla_violations);
    assert_eq!(sum(&|c| c.latency.count), last.latency.count);
    let billed: Money = last.classes.iter().map(|c| c.billed).sum();
    assert!(billed.approx_eq(last.billed, 1e-9));
    let penalty: Money = last.classes.iter().map(|c| c.penalty).sum();
    assert!(penalty.approx_eq(last.penalty, 1e-9));
}

/// Guarantee 4a: a *sharded* server replays a lockstep trace with the
/// same verdict per arrival and the same final metrics as the in-process
/// unsharded service — each lockstep offer is a singleton tick, so the
/// shared pipeline keeps the wire bit-identical.
#[test]
fn sharded_server_matches_in_process_unsharded_replay() {
    let spec = spec();
    let stream = tagged_stream(&spec, 8);

    let mut local =
        WorkloadService::train_classes(spec.clone(), three_classes(&spec), config()).unwrap();
    let mut local_outcomes = Vec::with_capacity(stream.len());
    for q in &stream {
        let admitted = local.offer_as(q.template, q.class, q.arrival).unwrap();
        local_outcomes.push(if admitted {
            OfferOutcome::Admitted
        } else {
            OfferOutcome::Shed
        });
    }

    let served =
        WorkloadService::train_classes(spec.clone(), three_classes(&spec), config()).unwrap();
    let handle = Server::spawn(
        served,
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let wire_outcomes: Vec<OfferOutcome> = stream
        .iter()
        .map(|q| client.offer(q.class, q.template, q.arrival).unwrap())
        .collect();
    let snapshot = client.metrics().unwrap();
    client.shutdown().unwrap();
    let served = handle.join().expect("the scheduler hands the service back");

    assert_eq!(wire_outcomes, local_outcomes);
    assert_eq!(served.completions(), local.completions());
    assert_eq!(scrub(snapshot), scrub(local.snapshot()));
}

/// Guarantee 4b: with the command queue bounded to a single slot, a
/// concurrent burst from several connections still gets exactly one
/// answer per request — `Admitted` or a typed `Shed`, never a hang or a
/// dropped connection — and the server keeps serving afterwards. The
/// conservation law (server totals == client totals) holds through the
/// overflow path.
#[test]
fn tiny_queue_depth_sheds_overflow_without_dropping_requests() {
    let spec = spec();
    let service =
        WorkloadService::train_classes(spec.clone(), three_classes(&spec), config()).unwrap();
    let handle = Server::spawn(
        service,
        ServeConfig {
            shards: 2,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    const CLIENTS: usize = 4;
    const PER_CLIENT: u64 = 12;
    let per_client: Vec<(u64, u64)> = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let (mut admitted, mut shed) = (0u64, 0u64);
                    for i in 0..PER_CLIENT {
                        // Monotone per-connection virtual times; the live
                        // cluster clamps cross-client staleness.
                        let at = Millis::from_secs(10 + i * 60);
                        match client
                            .offer(TenantId(c as u32 % 3), TemplateId(0), at)
                            .unwrap()
                        {
                            OfferOutcome::Admitted => admitted += 1,
                            OfferOutcome::Shed => shed += 1,
                        }
                    }
                    (admitted, shed)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client threads do not panic"))
            .collect()
    });

    let answered: u64 = per_client.iter().map(|(a, s)| a + s).sum();
    assert_eq!(
        answered,
        (CLIENTS as u64) * PER_CLIENT,
        "every request must get exactly one verdict"
    );

    // The server is still healthy: a fresh connection gets a snapshot
    // whose totals match what the clients saw (queue sheds answer the
    // client without reaching the scheduler's admission books, so the
    // snapshot's admitted count can only be bounded by the client sum).
    let mut control = Client::connect(addr).unwrap();
    let snapshot = control.metrics().unwrap();
    let admitted: u64 = per_client.iter().map(|(a, _)| a).sum();
    assert_eq!(snapshot.admitted, admitted);
    control.shutdown().unwrap();
    handle.join();
}
