//! Online scheduling integration: stream replay invariants and the
//! effectiveness/overhead behaviour of the §6.3.1 optimizations.

use wisedb::advisor::{ArrivingQuery, ModelConfig, OnlineConfig, OnlineScheduler, Planner};
use wisedb::prelude::*;
use wisedb::sim::Arrivals;

fn spec() -> WorkloadSpec {
    wisedb::sim::catalog::tpch_like(5)
}

fn training() -> ModelConfig {
    ModelConfig {
        num_samples: 60,
        sample_size: 6,
        seed: 404,
        ..ModelConfig::fast()
    }
}

fn stream(spec: &WorkloadSpec, n: usize, arrivals: Arrivals, seed: u64) -> Vec<ArrivingQuery> {
    let workload = wisedb::sim::generator::uniform_workload(spec, n, seed);
    let times = arrivals.times(n, seed);
    workload
        .queries()
        .iter()
        .zip(times)
        .map(|(q, arrival)| ArrivingQuery::new(q.template, arrival))
        .collect()
}

/// Physical sanity of the replay: every query runs exactly once, never
/// before its arrival, and queries sharing a VM never overlap.
#[test]
fn replay_respects_physics() {
    let spec = spec();
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let mut scheduler = OnlineScheduler::train(
            spec.clone(),
            goal.clone(),
            OnlineConfig {
                training: training(),
                ..OnlineConfig::default()
            },
        )
        .unwrap();
        let stream = stream(&spec, 14, Arrivals::Poisson { mean_secs: 20.0 }, 7);
        let report = scheduler.run(&stream).unwrap();
        assert_eq!(report.outcomes.len(), stream.len(), "{kind:?}");

        for (o, a) in report.outcomes.iter().zip(&stream) {
            assert_eq!(o.template, a.template);
            assert_eq!(o.arrival, a.arrival);
            assert!(o.start >= o.arrival, "{kind:?}: started before arrival");
            assert!(o.finish > o.start);
        }
        // Per-VM serialization.
        let mut by_vm: Vec<Vec<(Millis, Millis)>> = vec![Vec::new(); report.vm_types.len()];
        for o in &report.outcomes {
            by_vm[o.vm_index].push((o.start, o.finish));
        }
        for spans in &mut by_vm {
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "{kind:?}: overlapping queries on one VM");
            }
        }
        // Execution times match the catalog.
        for o in &report.outcomes {
            let exec = spec
                .latency(o.template, report.vm_types[o.vm_index])
                .unwrap();
            assert_eq!(o.finish - o.start, exec, "{kind:?}");
        }
    }
}

/// With generous spacing, online cost approaches the sum of independent
/// single-query costs; with a burst, it approaches the batch cost. Both
/// stay within a sane factor of the batch optimal on the same queries.
#[test]
fn online_cost_is_comparable_to_batch_optimal() {
    let spec = spec();
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let stream = stream(
        &spec,
        12,
        Arrivals::Fixed {
            gap: Millis::from_millis(500),
        },
        3,
    );
    let mut scheduler = OnlineScheduler::train(
        spec.clone(),
        goal.clone(),
        OnlineConfig {
            training: training(),
            ..OnlineConfig::default()
        },
    )
    .unwrap();
    let report = scheduler.run(&stream).unwrap();
    let online_cost = report.total_cost(&spec, &goal).unwrap();

    // Batch optimal with all queries available at t = 0 is a lower-ish
    // bound (arrivals only remove options).
    let workload = Workload::from_templates(stream.iter().map(|a| a.template));
    let optimal = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
    assert!(
        online_cost.as_dollars() <= optimal.cost.as_dollars() * 2.0 + 0.01,
        "online {online_cost} vs batch optimal {}",
        optimal.cost
    );
}

/// The optimizations preserve scheduling quality: Shift+Reuse costs about
/// the same as no optimization, while performing no more full retrains.
#[test]
fn optimizations_preserve_quality_and_cut_retraining() {
    let spec = spec();
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let stream = stream(
        &spec,
        10,
        Arrivals::Normal {
            mean_secs: 0.25,
            std_secs: 0.125,
        },
        11,
    );

    let run = |reuse: bool, shift: bool| {
        let mut scheduler = OnlineScheduler::train(
            spec.clone(),
            goal.clone(),
            OnlineConfig {
                reuse,
                shift,
                training: training(),
                ..OnlineConfig::default()
            },
        )
        .unwrap();
        let report = scheduler.run(&stream).unwrap();
        let cost = report.total_cost(&spec, &goal).unwrap();
        (report, cost)
    };

    let (r_none, c_none) = run(false, false);
    let (r_both, c_both) = run(true, true);

    assert!(
        r_both.retrains <= r_none.retrains,
        "optimizations increased retrains: {} vs {}",
        r_both.retrains,
        r_none.retrains
    );
    // Quality within 2x either way (small models, conservative shifts).
    assert!(c_both.as_dollars() <= c_none.as_dollars() * 2.0 + 0.01);
    assert!(c_none.as_dollars() <= c_both.as_dollars() * 2.0 + 0.01);
}

/// The A*-per-batch planner completes and the tree planner stays within a
/// reasonable factor of it (Figure 18's comparison).
#[test]
fn tree_planner_tracks_the_oracle() {
    let spec = spec();
    let goal = PerformanceGoal::paper_default(GoalKind::PerQuery, &spec).unwrap();
    let stream = stream(
        &spec,
        8,
        Arrivals::Fixed {
            gap: Millis::from_secs(1),
        },
        19,
    );
    let mut tree = OnlineScheduler::train(
        spec.clone(),
        goal.clone(),
        OnlineConfig {
            training: training(),
            ..OnlineConfig::default()
        },
    )
    .unwrap();
    let mut oracle = OnlineScheduler::train(
        spec.clone(),
        goal.clone(),
        OnlineConfig {
            planner: Planner::Optimal,
            training: training(),
            ..OnlineConfig::default()
        },
    )
    .unwrap();
    let c_tree = tree.run(&stream).unwrap().total_cost(&spec, &goal).unwrap();
    let c_oracle = oracle
        .run(&stream)
        .unwrap()
        .total_cost(&spec, &goal)
        .unwrap();
    assert!(
        c_tree.as_dollars() <= c_oracle.as_dollars() * 1.75 + 0.01,
        "tree {c_tree} vs oracle {c_oracle}"
    );
}
