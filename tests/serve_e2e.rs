//! The serve layer, end to end (tier 1).
//!
//! Three guarantees the TCP front-end must keep:
//!
//! 1. **The wire adds no semantics.** Replaying a fixed-seed trace
//!    through a loopback [`Server`] must reproduce an in-process
//!    [`WorkloadService`] run bit-identically — same verdict per arrival,
//!    same completions, same metrics (wall-clock decision overhead aside)
//!    — for every goal kind.
//! 2. **Overload degrades gracefully.** Under `PriorityShed` admission a
//!    synchronized burst sheds bronze with typed `Shed` frames while gold
//!    survives; no request is ever answered by a dropped connection.
//! 3. **A hostile byte stream cannot take the server down.** Malformed
//!    frames get one `Error` frame and a close; garbage payloads fail
//!    only their own request; truncated frames are dropped silently — and
//!    in every case the listener keeps accepting fresh connections.

use std::io::Write as _;
use std::net::TcpStream;

use wisedb::prelude::*;
use wisedb::runtime::{generate_class_stream, generate_stream, OfferOutcome};
use wisedb_core::ArrivingQuery;
use wisedb_serve::frame::{read_frame, write_frame, FrameKind, FrameRead};
use wisedb_serve::wire::{decode_response, Response};
use wisedb_serve::{Client, ServeConfig, ServeError, Server};

fn spec() -> WorkloadSpec {
    wisedb::sim::catalog::tpch_like(4)
}

fn tiny_training() -> ModelConfig {
    ModelConfig {
        num_samples: 48,
        sample_size: 6,
        seed: 23,
        ..ModelConfig::fast()
    }
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        online: OnlineConfig {
            training: tiny_training(),
            age_quantum: Millis::from_secs(30),
            ..OnlineConfig::default()
        },
        ..RuntimeConfig::default()
    }
}

/// Zeroes the only machine-dependent snapshot fields — scheduler
/// wall-clock overhead — so two runs of identical *decisions* compare
/// equal.
fn scrub(mut snapshot: MetricsSnapshot) -> MetricsSnapshot {
    snapshot.mean_decision_secs = 0.0;
    snapshot.p95_decision_secs = 0.0;
    snapshot
}

/// Replays `stream` over one client connection, returning the verdicts,
/// the final server-side snapshot (fetched over the wire), and the
/// service itself (recovered from the joined server).
fn replay_over_wire(
    service: WorkloadService,
    stream: &[ArrivingQuery],
) -> (Vec<OfferOutcome>, MetricsSnapshot, WorkloadService) {
    let handle = Server::spawn(service, ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let outcomes = stream
        .iter()
        .map(|q| client.offer(q.class, q.template, q.arrival).unwrap())
        .collect();
    let snapshot = client.metrics().unwrap();
    client.shutdown().unwrap();
    let service = handle.join().expect("the scheduler hands the service back");
    (outcomes, snapshot, service)
}

/// Invariant 1: for every goal kind, the TCP path and the in-process path
/// make identical decisions on a fixed-seed trace — verdict by verdict,
/// completion by completion, and in the final metrics snapshot.
#[test]
fn wire_replay_is_bit_identical_to_in_process() {
    let spec = spec();
    let mut process = PoissonProcess::per_second(0.02, TemplateMix::uniform(spec.num_templates()));
    let stream = generate_stream(&mut process, 14, 0x5E12E);

    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();

        let mut local = WorkloadService::train(spec.clone(), goal.clone(), config()).unwrap();
        let mut local_outcomes = Vec::with_capacity(stream.len());
        for q in &stream {
            let admitted = local.offer_as(q.template, q.class, q.arrival).unwrap();
            local_outcomes.push(if admitted {
                OfferOutcome::Admitted
            } else {
                OfferOutcome::Shed
            });
        }

        let served = WorkloadService::train(spec.clone(), goal, config()).unwrap();
        let (wire_outcomes, wire_snapshot, served) = replay_over_wire(served, &stream);

        assert_eq!(
            wire_outcomes,
            local_outcomes,
            "{}: the wire changed an admission verdict",
            kind.name()
        );
        assert_eq!(
            served.completions(),
            local.completions(),
            "{}: the wire changed a placement or a finish time",
            kind.name()
        );
        assert_eq!(
            scrub(wire_snapshot),
            scrub(local.snapshot()),
            "{}: the wire changed the metrics",
            kind.name()
        );
        // The snapshot fetched over the wire is the joined service's own.
        assert_eq!(scrub(served.snapshot()), scrub(local.snapshot()));
    }
}

/// Invariant 2: a synchronized two-class burst under `PriorityShed` sheds
/// bronze via typed `Shed` frames while gold is never shed — and the shed
/// pattern is exactly what the in-process service produces.
#[test]
fn overload_sheds_bronze_but_not_gold_over_the_wire() {
    let spec = spec();
    let classes = vec![
        SlaClass::new(
            "gold",
            PerformanceGoal::paper_default(GoalKind::PerQuery, &spec).unwrap(),
        )
        .with_priority(2),
        SlaClass::new(
            "bronze",
            PerformanceGoal::paper_default(GoalKind::AverageLatency, &spec).unwrap(),
        ),
    ];
    let mut cfg = config();
    cfg.admission = AdmissionPolicy::PriorityShed {
        base: 1,
        per_priority: 3,
    };

    // A hard burst: 10 arrivals per class inside 10 virtual seconds.
    let streams = (0..2u32)
        .map(|c| {
            let mut p = PoissonProcess::per_second(1.0, TemplateMix::uniform(2));
            generate_class_stream(&mut p, 10, 7 + c as u64, TenantId(c))
        })
        .collect();
    let stream = merge_streams(streams);

    let mut local =
        WorkloadService::train_classes(spec.clone(), classes.clone(), cfg.clone()).unwrap();
    let mut local_outcomes = Vec::with_capacity(stream.len());
    for q in &stream {
        let admitted = local.offer_as(q.template, q.class, q.arrival).unwrap();
        local_outcomes.push(if admitted {
            OfferOutcome::Admitted
        } else {
            OfferOutcome::Shed
        });
    }

    let served = WorkloadService::train_classes(spec, classes, cfg).unwrap();
    let (wire_outcomes, snapshot, _served) = replay_over_wire(served, &stream);

    // Every request was answered with a typed verdict (the replay above
    // unwraps each response), and the verdicts match in-process exactly.
    assert_eq!(wire_outcomes, local_outcomes);

    let shed_of = |class: TenantId| {
        stream
            .iter()
            .zip(&wire_outcomes)
            .filter(|(q, o)| q.class == class && **o == OfferOutcome::Shed)
            .count()
    };
    let (gold_shed, bronze_shed) = (shed_of(TenantId(0)), shed_of(TenantId(1)));
    assert!(bronze_shed > 0, "the burst must overload bronze admission");
    assert!(
        gold_shed < bronze_shed,
        "gold (priority 2) must shed less than bronze ({gold_shed} vs {bronze_shed})"
    );
    // The per-class rows agree with the per-verdict tally.
    assert_eq!(snapshot.classes[1].rejected, bronze_shed as u64);
    assert_eq!(snapshot.classes[0].rejected, gold_shed as u64);
}

fn quick_service() -> WorkloadService {
    let spec = spec();
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    WorkloadService::train(spec, goal, config()).unwrap()
}

/// Reads the one frame a raw-socket experiment expects back.
fn read_response(stream: &mut TcpStream) -> Response {
    match read_frame(stream).unwrap() {
        FrameRead::Frame(FrameKind::Response, payload) => decode_response(&payload).unwrap(),
        other => panic!("expected a response frame, got {other:?}"),
    }
}

/// Invariant 3: malformed bytes, garbage payloads, truncated frames, and
/// backwards frame kinds each get the documented answer — and none of
/// them stop the server from serving the next request. Each of these
/// failure paths used to be silent on the server side; now every one
/// must leave a `wisedb-obs` event carrying the connection id.
#[test]
fn hostile_byte_streams_never_take_the_server_down() {
    let _hold = wisedb::obs::testing::hold();
    let collector = wisedb::obs::install(wisedb::obs::Level::Counters);
    let handle = Server::spawn(quick_service(), ServeConfig::default()).unwrap();
    let addr = handle.addr();

    // (a) Bad magic: one Error frame, then the connection closes — the
    // byte stream can no longer be trusted. (Exactly two bytes: the
    // server stops reading at the magic check, and bytes it never read
    // would turn the close into a reset.)
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0xDE, 0xAD]).unwrap();
    match read_response(&mut raw) {
        Response::Error { message } => {
            assert!(message.contains("malformed frame"), "got {message:?}")
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    assert!(
        matches!(read_frame(&mut raw).unwrap(), FrameRead::Eof),
        "a framing violation must close the connection"
    );

    // (b) A client must not send Response frames: same answer-then-close.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_frame(&mut raw, FrameKind::Response, b"{\"Ok\":null}").unwrap();
    match read_response(&mut raw) {
        Response::Error { message } => {
            assert!(message.contains("protocol violation"), "got {message:?}")
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    assert!(matches!(read_frame(&mut raw).unwrap(), FrameRead::Eof));

    // (c) Garbage JSON in a well-formed frame fails only that request —
    // the same connection keeps working.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_frame(&mut raw, FrameKind::Request, b"{\"NoSuchRequest\": 3}").unwrap();
    match read_response(&mut raw) {
        Response::Error { message } => assert!(message.contains("payload"), "got {message:?}"),
        other => panic!("expected an error frame, got {other:?}"),
    }
    write_frame(&mut raw, FrameKind::Request, b"\"Metrics\"").unwrap();
    assert!(matches!(read_response(&mut raw), Response::Metrics(_)));

    // (d) A frame truncated mid-header, then a hangup: dropped silently.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0x57]).unwrap();
    drop(raw);

    // After all of the above, a fresh client still gets real service.
    let mut client = Client::connect(addr).unwrap();
    let outcome = client
        .offer(TenantId::DEFAULT, TemplateId(0), Millis::from_secs(1))
        .unwrap();
    assert_eq!(outcome, OfferOutcome::Admitted);
    client.shutdown().unwrap();
    // `join` joins the worker pool, so every connection's events have
    // been emitted by the time the collector drains.
    handle.join();

    let trace = collector.finish();
    let named = |name: &str| {
        trace
            .events
            .iter()
            .filter(|e| e.name == name)
            .collect::<Vec<_>>()
    };
    // (a) bad magic and (b) a backwards frame kind are both framing
    // violations; (c)'s garbage payload fails only its own request; (d)'s
    // mid-header hangup surfaces as a connection drop with a reason.
    let violations = named("serve.framing_violation");
    assert!(
        violations.len() >= 2,
        "expected framing-violation events for (a) and (b), got {}",
        violations.len()
    );
    let errors = named("serve.request_error");
    assert!(
        !errors.is_empty(),
        "the garbage payload must leave a request-error event"
    );
    let drops = named("serve.connection_drop");
    assert!(
        !drops.is_empty(),
        "the truncated-header hangup must leave a connection-drop event"
    );
    for event in violations.iter().chain(&errors).chain(&drops) {
        assert!(
            event.attrs.iter().any(|(k, _)| *k == "conn"),
            "{} event is missing its connection id: {:?}",
            event.name,
            event.attrs
        );
    }
    for event in &drops {
        assert!(
            event.attrs.iter().any(|(k, _)| *k == "reason"),
            "connection drops must say why: {:?}",
            event.attrs
        );
    }
}

/// Service-level failures (unknown class, template outside the spec or
/// the class subset, bad swap target) cross the wire as typed `Error`
/// responses on a connection that stays open — never as a hangup. Each
/// also leaves a `serve.request_error` event naming the connection and
/// carrying the message the client saw.
#[test]
fn core_errors_cross_the_wire_as_error_frames() {
    let _hold = wisedb::obs::testing::hold();
    let collector = wisedb::obs::install(wisedb::obs::Level::Counters);
    let handle = Server::spawn(quick_service(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown tenant class.
    match client.offer(TenantId(9), TemplateId(0), Millis::ZERO) {
        Err(ServeError::Remote { message }) => {
            assert!(message.contains("unknown tenant class"), "got {message:?}")
        }
        other => panic!("expected a remote error, got {other:?}"),
    }
    // Template outside the spec.
    match client.offer(TenantId::DEFAULT, TemplateId(99), Millis::ZERO) {
        Err(ServeError::Remote { message }) => {
            assert!(message.contains("outside the spec"), "got {message:?}")
        }
        other => panic!("expected a remote error, got {other:?}"),
    }
    // Retraining an unknown class fails the same way.
    match client.swap_model(TenantId(9), 1) {
        Err(ServeError::Remote { .. }) => {}
        other => panic!("expected a remote error, got {other:?}"),
    }

    // The connection survived all three failures and still serves.
    let outcome = client
        .offer(TenantId::DEFAULT, TemplateId(1), Millis::from_secs(2))
        .unwrap();
    assert_eq!(outcome, OfferOutcome::Admitted);
    // A valid retrain request is accepted (applied asynchronously).
    client.swap_model(TenantId::DEFAULT, 7).unwrap();
    client.shutdown().unwrap();
    handle.join();

    let trace = collector.finish();
    let errors: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.name == "serve.request_error")
        .collect();
    assert!(
        errors.len() >= 3,
        "three failed requests must leave three request-error events, got {}",
        errors.len()
    );
    let message_of = |e: &wisedb::obs::Event| {
        e.attrs.iter().find_map(|(k, v)| match (k, v) {
            (&"message", wisedb::obs::AttrValue::Str(s)) => Some(s.clone()),
            _ => None,
        })
    };
    for event in &errors {
        assert!(event.attrs.iter().any(|(k, _)| *k == "conn"));
        assert!(
            message_of(event).is_some(),
            "error events carry the message"
        );
    }
    assert!(
        errors
            .iter()
            .any(|e| message_of(e).is_some_and(|m| m.contains("unknown tenant class"))),
        "the unknown-class failure must be attributable from the event log"
    );
}
