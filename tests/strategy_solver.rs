//! Differential tests for the pluggable search-strategy layer.
//!
//! The refactor extracted the monolithic A* into a `Solver` running one of
//! four strategies. Contracts pinned here:
//!
//! * **exact == refactored-exact, bit-identically** — the default-config
//!   solver and an explicit `SearchStrategy::Exact` agree with each other
//!   and with the historical goldens on cost, schedule shape, and every
//!   search counter;
//! * **inexact strategies are sound** — beam/anytime always return valid
//!   complete schedules costing at least the optimum, and whenever they
//!   report a finite suboptimality bound, `cost ≤ bound × optimal` holds;
//! * **anytime is monotone in its budget** — growing the expansion budget
//!   never worsens the incumbent (proptest);
//! * **budget outcomes are observable** — `limit_hit` is set, and the
//!   schedule is still complete;
//! * **the queue-wait-aware percentile bound dominates the old one and
//!   stays admissible** — on random reachable states the new estimate is
//!   ≥ the pre-PR-9 fastest-execution reference, and at the start vertex
//!   it never exceeds the true optimum (proptests);
//! * **PEA\* is exact** — partial expansion returns bit-identical costs to
//!   exact A* across all four goal kinds (proptest).

use proptest::prelude::*;

use wisedb::prelude::*;
use wisedb::search::{HeuristicTable, SearchState, SearchStats, SearchStrategy};
use wisedb_core::{total_cost, PenaltyRate, PenaltyTracker, PercentileDigest};

fn fig3_spec() -> WorkloadSpec {
    WorkloadSpec::single_vm(
        vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
        VmType::t2_medium(),
    )
    .unwrap()
}

fn counters(stats: &SearchStats) -> (u64, u64, u64, u64) {
    (
        stats.expanded,
        stats.generated,
        stats.reopened,
        stats.interned,
    )
}

/// The default configuration and an explicit exact strategy are the same
/// search: identical costs, schedules, and counters on the historical
/// golden instances across every goal kind.
#[test]
fn exact_strategy_is_bit_identical_to_default() {
    let catalog = wisedb::sim::catalog::tpch_like(4);
    let catalog_workload = wisedb::sim::generator::uniform_workload(&catalog, 5, 1234);
    let fig3 = fig3_spec();
    let fig3_workload = Workload::from_counts(&[1, 3]);
    for (spec, workload) in [(&catalog, &catalog_workload), (&fig3, &fig3_workload)] {
        for kind in GoalKind::ALL {
            let goal = PerformanceGoal::paper_default(kind, spec)
                .unwrap()
                .tighten_pct(spec, 0.6);
            let default_run = AStarSearcher::new(spec, &goal).solve(workload).unwrap();
            let explicit = Solver::new(spec, &goal)
                .with_strategy(SearchStrategy::Exact)
                .solve(workload)
                .unwrap();
            assert!(default_run.cost.approx_eq(explicit.cost, 0.0), "{kind:?}");
            assert_eq!(
                counters(&default_run.stats),
                counters(&explicit.stats),
                "{kind:?}"
            );
            assert_eq!(default_run.schedule, explicit.schedule, "{kind:?}");
            assert!(explicit.stats.optimal, "{kind:?}");
            assert_eq!(explicit.stats.bound, 1.0, "{kind:?}");
        }
    }
}

/// The Figure 3 golden: the exact strategy reproduces the historical cost
/// to the bit.
#[test]
fn exact_strategy_reproduces_figure_three_golden() {
    let spec = fig3_spec();
    let goal = PerformanceGoal::PerQuery {
        deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
        rate: PenaltyRate::CENT_PER_SECOND,
    };
    let workload = Workload::from_counts(&[1, 3]);
    let result = Solver::new(&spec, &goal)
        .with_strategy(SearchStrategy::Exact)
        .solve(&workload)
        .unwrap();
    let expected = Money::from_dollars(3.0 * 0.0008 + 0.052 * 5.0 / 60.0);
    assert!(result.cost.approx_eq(expected, 1e-9));
    assert_eq!(result.schedule.num_vms(), 3);
}

/// Beam and anytime never beat the optimum (they cannot — their schedules
/// are real), always return complete schedules, and respect any finite
/// bound they report: `cost ≤ bound × optimal`.
#[test]
fn inexact_strategies_bound_the_optimum() {
    let spec = wisedb::sim::catalog::tpch_like(4);
    let workload = wisedb::sim::generator::uniform_workload(&spec, 6, 99);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec)
            .unwrap()
            .tighten_pct(&spec, 0.5);
        let exact = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        assert!(exact.stats.optimal, "{kind:?}");
        for strategy in [
            SearchStrategy::Beam { width: 2 },
            SearchStrategy::Beam { width: 64 },
            SearchStrategy::anytime(),
            SearchStrategy::Anytime {
                weight: 3.0,
                decay: 0.9,
            },
        ] {
            let inexact = Solver::new(&spec, &goal)
                .with_strategy(strategy)
                .solve(&workload)
                .unwrap();
            inexact.schedule.validate_complete(&workload).unwrap();
            // Never better than optimal (same cost model).
            assert!(
                inexact.cost.as_dollars() >= exact.cost.as_dollars() - 1e-9,
                "{kind:?} {strategy:?}: inexact {} < optimal {}",
                inexact.cost,
                exact.cost
            );
            // A reported bound is a real guarantee.
            let bound = inexact.stats.bound;
            assert!(bound >= 1.0, "{kind:?} {strategy:?}");
            if bound.is_finite() {
                assert!(
                    inexact.cost.as_dollars() <= bound * exact.cost.as_dollars() + 1e-9,
                    "{kind:?} {strategy:?}: cost {} exceeds bound {bound} × optimal {}",
                    inexact.cost,
                    exact.cost
                );
            }
            // The analytic cost model agrees with the reported cost.
            let analytic = total_cost(&spec, &goal, &inexact.schedule).unwrap();
            assert!(
                inexact.cost.approx_eq(analytic, 1e-9),
                "{kind:?} {strategy:?}"
            );
        }
    }
}

/// A wide, unbudgeted beam on a tiny instance never truncates, so it can
/// prove optimality and must match exact search.
#[test]
fn exhaustive_beam_matches_exact() {
    let spec = fig3_spec();
    let workload = Workload::from_counts(&[1, 2]);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec)
            .unwrap()
            .tighten_pct(&spec, 0.5);
        let exact = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        let beam = Solver::new(&spec, &goal)
            .with_strategy(SearchStrategy::Beam { width: 100_000 })
            .solve(&workload)
            .unwrap();
        assert_eq!(beam.stats.pruned, 0, "{kind:?}");
        assert!(beam.stats.optimal, "{kind:?}");
        assert_eq!(beam.stats.bound, 1.0, "{kind:?}");
        assert!(
            beam.cost.approx_eq(exact.cost, 1e-9),
            "{kind:?}: beam {} vs exact {}",
            beam.cost,
            exact.cost
        );
    }
}

/// Anytime with an unbounded budget drains its open list and proves
/// optimality — for every goal kind, including the non-monotone ones.
#[test]
fn unbudgeted_anytime_proves_optimality() {
    let spec = fig3_spec();
    let workload = Workload::from_counts(&[2, 2]);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec)
            .unwrap()
            .tighten_pct(&spec, 0.5);
        let exact = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        let anytime = Solver::new(&spec, &goal)
            .with_strategy(SearchStrategy::anytime())
            .solve(&workload)
            .unwrap();
        assert!(anytime.stats.optimal, "{kind:?}");
        assert_eq!(anytime.stats.bound, 1.0, "{kind:?}");
        assert!(
            anytime.cost.approx_eq(exact.cost, 1e-9),
            "{kind:?}: anytime {} vs exact {}",
            anytime.cost,
            exact.cost
        );
    }
}

/// Stopping on the expansion budget is observable (`limit_hit`) for every
/// strategy, and the fallback schedule is still complete.
#[test]
fn budget_outcomes_are_observable_and_complete() {
    let spec = wisedb::sim::catalog::tpch_like(4);
    let workload = wisedb::sim::generator::uniform_workload(&spec, 8, 7);
    let goal = PerformanceGoal::paper_default(GoalKind::Percentile, &spec).unwrap();
    for strategy in [
        SearchStrategy::Exact,
        SearchStrategy::Beam { width: 512 },
        SearchStrategy::anytime(),
    ] {
        let result = Solver::new(&spec, &goal)
            .with_config(SearchConfig {
                node_limit: 10,
                strategy,
                ..SearchConfig::default()
            })
            .solve(&workload)
            .unwrap();
        assert!(result.stats.limit_hit, "{strategy:?}");
        assert!(!result.stats.optimal, "{strategy:?}");
        assert!(result.stats.expanded <= 10, "{strategy:?}");
        result.schedule.validate_complete(&workload).unwrap();
    }
}

/// A small random spec: 2–3 templates, 30 s – 5 min latencies, one VM type.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    proptest::collection::vec(30u64..300, 2..=3).prop_map(|secs| {
        WorkloadSpec::single_vm(
            secs.into_iter()
                .enumerate()
                .map(|(i, s)| (format!("T{}", i + 1), Millis::from_secs(s)))
                .collect::<Vec<_>>(),
            VmType::t2_medium(),
        )
        .unwrap()
    })
}

fn arb_goal(spec: &WorkloadSpec) -> impl Strategy<Value = PerformanceGoal> {
    let latencies: Vec<Millis> = spec
        .templates()
        .iter()
        .map(|t| t.min_latency().unwrap())
        .collect();
    let longest = latencies.iter().copied().max().unwrap();
    let mean = latencies.iter().copied().sum::<Millis>() / latencies.len() as u64;
    prop_oneof![
        (11u64..35).prop_map(move |f| PerformanceGoal::MaxLatency {
            deadline: longest.mul_f64(f as f64 / 10.0),
            rate: PenaltyRate::CENT_PER_SECOND,
        }),
        ((11u64..35), (50.0f64..100.0)).prop_map(move |(f, p)| PerformanceGoal::Percentile {
            percent: p,
            deadline: mean.mul_f64(f as f64 / 10.0),
            rate: PenaltyRate::CENT_PER_SECOND,
        }),
    ]
}

fn arb_instance() -> impl Strategy<Value = (WorkloadSpec, PerformanceGoal, Vec<u32>)> {
    arb_spec().prop_flat_map(|spec| {
        let nt = spec.num_templates();
        let goal = arb_goal(&spec);
        let counts = proptest::collection::vec(0u32..=3, nt).prop_filter("1..=7 queries", |c| {
            let total: u32 = c.iter().sum();
            total > 0 && total <= 7
        });
        (Just(spec), goal, counts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, .. ProptestConfig::default()
    })]

    /// Growing the expansion budget never worsens anytime's incumbent: a
    /// longer run is a strict continuation of a shorter one.
    #[test]
    fn anytime_incumbent_never_worsens_with_budget((spec, goal, counts) in arb_instance()) {
        let workload = Workload::from_counts(&counts);
        let mut last: Option<f64> = None;
        for budget in [5usize, 50, 500, 1_000_000] {
            let result = Solver::new(&spec, &goal)
                .with_config(SearchConfig {
                    node_limit: budget,
                    strategy: SearchStrategy::anytime(),
                    ..SearchConfig::default()
                })
                .solve(&workload)
                .unwrap();
            result.schedule.validate_complete(&workload).unwrap();
            if let Some(prev) = last {
                prop_assert!(
                    result.cost.as_dollars() <= prev + 1e-9,
                    "budget {budget}: cost {} worsened from {prev}",
                    result.cost
                );
            }
            last = Some(result.cost.as_dollars());
        }
        // The unbudgeted run is exact.
        let exact = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        prop_assert!((last.unwrap() - exact.cost.as_dollars()).abs() <= 1e-9);
    }

    /// PEA* is an exact strategy: identical costs to exact A* (to the bit)
    /// and a proven 1.0 bound, for every goal kind.
    #[test]
    fn pea_star_costs_are_bit_identical_to_exact((spec, counts) in arb_workload_instance()) {
        let workload = Workload::from_counts(&counts);
        for kind in GoalKind::ALL {
            let goal = PerformanceGoal::paper_default(kind, &spec)
                .unwrap()
                .tighten_pct(&spec, 0.5);
            let exact = Solver::new(&spec, &goal)
                .with_strategy(SearchStrategy::Exact)
                .solve(&workload)
                .unwrap();
            let pea = Solver::new(&spec, &goal)
                .with_strategy(SearchStrategy::Pea)
                .solve(&workload)
                .unwrap();
            prop_assert!(pea.stats.optimal, "{kind:?}");
            prop_assert_eq!(pea.stats.bound, 1.0, "{kind:?}");
            prop_assert!(
                pea.cost.approx_eq(exact.cost, 0.0),
                "{kind:?}: pea {} != exact {}",
                pea.cost,
                exact.cost
            );
            pea.schedule.validate_complete(&workload).unwrap();
        }
    }

    /// The queue-wait-aware percentile bound dominates the old
    /// fastest-execution bound on random reachable states: tightening
    /// never lost ground anywhere in the graph.
    #[test]
    fn percentile_bound_dominates_old_reference(
        (spec, goal, counts, steps) in arb_percentile_instance()
    ) {
        let table = HeuristicTable::new(&spec);
        let state = random_walk(&spec, &goal, &counts, &steps);
        let h_new = table.estimate(&goal, &state);
        let h_old = old_percentile_estimate(&table, &spec, &goal, &state);
        prop_assert!(
            h_new.as_dollars() >= h_old.as_dollars() - 1e-12,
            "new bound {h_new} lost to old bound {h_old} at {state:?}"
        );
    }

    /// Admissibility: at the start vertex the estimate never exceeds the
    /// true optimum (`g = 0`, so `h(start) ≤ C*`). Exact A* supplies the
    /// brute-force optimum on these ≤7-query instances.
    #[test]
    fn percentile_bound_is_admissible(
        (spec, goal, counts, _steps) in arb_percentile_instance()
    ) {
        let workload = Workload::from_counts(&counts);
        let table = HeuristicTable::new(&spec);
        let counts16: Vec<u16> = counts.iter().map(|&c| c as u16).collect();
        let start = SearchState::initial(counts16, &goal);
        let h0 = table.estimate(&goal, &start);
        let exact = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        prop_assert!(exact.stats.optimal);
        prop_assert!(
            h0.as_dollars() <= exact.cost.as_dollars() + 1e-9,
            "h(start) {h0} exceeds optimum {}",
            exact.cost
        );
    }
}

fn arb_workload_instance() -> impl Strategy<Value = (WorkloadSpec, Vec<u32>)> {
    arb_spec().prop_flat_map(|spec| {
        let nt = spec.num_templates();
        let counts = proptest::collection::vec(0u32..=3, nt).prop_filter("1..=6 queries", |c| {
            let total: u32 = c.iter().sum();
            total > 0 && total <= 6
        });
        (Just(spec), counts)
    })
}

/// A percentile instance plus a random decision walk (indices into each
/// state's successor list) used to reach an arbitrary interior vertex.
fn arb_percentile_instance(
) -> impl Strategy<Value = (WorkloadSpec, PerformanceGoal, Vec<u32>, Vec<usize>)> {
    arb_spec().prop_flat_map(|spec| {
        let nt = spec.num_templates();
        let latencies: Vec<Millis> = spec
            .templates()
            .iter()
            .map(|t| t.min_latency().unwrap())
            .collect();
        let mean = latencies.iter().copied().sum::<Millis>() / latencies.len() as u64;
        let goal =
            ((11u64..35), (50.0f64..100.0)).prop_map(move |(f, p)| PerformanceGoal::Percentile {
                percent: p,
                deadline: mean.mul_f64(f as f64 / 10.0),
                rate: PenaltyRate::CENT_PER_SECOND,
            });
        let counts = proptest::collection::vec(0u32..=3, nt).prop_filter("1..=7 queries", |c| {
            let total: u32 = c.iter().sum();
            total > 0 && total <= 7
        });
        let steps = proptest::collection::vec(0usize..16, 0..12);
        (Just(spec), goal, counts, steps)
    })
}

/// Walks `steps` decisions from the start vertex, picking
/// `successors[step % len]` at each vertex; stops early at goal vertices.
fn random_walk(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    counts: &[u32],
    steps: &[usize],
) -> SearchState {
    let counts16: Vec<u16> = counts.iter().map(|&c| c as u16).collect();
    let mut state = SearchState::initial(counts16, goal);
    for &pick in steps {
        if state.is_goal() {
            break;
        }
        let decisions = state.successors(spec);
        if decisions.is_empty() {
            break;
        }
        let decision = decisions[pick % decisions.len()];
        let (next, _) = state
            .apply(spec, goal, decision)
            .expect("successor is valid");
        state = next;
    }
    state
}

/// The pre-PR-9 percentile estimate: remaining-runtime lower bound plus a
/// penalty floor that assumes every remaining query completes at its
/// *fastest possible* execution — no queue serialization. Reimplemented
/// here as the differential reference for the dominance proptest.
fn old_percentile_estimate(
    table: &HeuristicTable,
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    state: &SearchState,
) -> Money {
    let PerformanceGoal::Percentile {
        percent,
        deadline,
        rate,
    } = goal
    else {
        unreachable!("generator only produces percentile goals")
    };
    let runtime = table.remaining_runtime_lower_bound(state);
    let current = state.tracker.penalty(goal);
    let PenaltyTracker::Percentile { dist } = &state.tracker else {
        unreachable!("percentile goals track a digest")
    };
    let mut completions: Vec<u64> = (1..=dist.len()).map(|k| dist.value_at_rank(k)).collect();
    for t in spec.template_ids() {
        let fastest = spec.templates()[t.index()]
            .min_latency()
            .expect("single-vm templates always have a latency")
            .as_millis();
        for _ in 0..state.unassigned[t.index()] {
            completions.push(fastest);
        }
    }
    completions.sort_unstable();
    if completions.is_empty() {
        return runtime;
    }
    let k = PercentileDigest::nearest_rank(*percent, completions.len() as u64);
    let at = Millis::from_millis(completions[(k - 1) as usize]);
    let floor = rate.for_violation(at.saturating_sub(*deadline));
    runtime + floor - current
}
