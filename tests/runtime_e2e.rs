//! End-to-end tests of the streaming runtime (tier-1).
//!
//! * Determinism: a fixed seed reproduces the exact event trace and
//!   metrics, across runs *and* across training thread counts.
//! * Billing: with latency noise and start-up delays off, the live
//!   cluster's incrementally accrued bill plus the goal penalty equals the
//!   analytic Eq. 1 cost recomputed from the trace (property-tested over
//!   goal kinds, stream lengths, and arrival rates).
//! * Parallel training: the worker-pool path is observationally identical
//!   to the serial path.

use proptest::prelude::*;

use wisedb::advisor::{ModelConfig, ModelGenerator, OnlineConfig};
use wisedb::core::QueryLatency;
use wisedb::prelude::*;
use wisedb::runtime::generate_stream;

fn tiny_training() -> ModelConfig {
    ModelConfig {
        num_samples: 40,
        sample_size: 5,
        seed: 3,
        ..ModelConfig::fast()
    }
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        online: OnlineConfig {
            training: tiny_training(),
            ..OnlineConfig::default()
        },
        ..RuntimeConfig::default()
    }
}

fn trained_service(kind: GoalKind, n_templates: usize) -> WorkloadService {
    let spec = wisedb::sim::catalog::tpch_like(n_templates);
    let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
    WorkloadService::train(spec, goal, runtime_config()).unwrap()
}

/// Zeroes the wall-clock (non-virtual) fields so snapshots compare
/// deterministically.
fn scrub_wall_clock(mut snapshot: MetricsSnapshot) -> MetricsSnapshot {
    snapshot.mean_decision_secs = 0.0;
    snapshot.p95_decision_secs = 0.0;
    snapshot
}

/// The search-strategy choice threads through the runtime config
/// (`OnlineConfig::with_strategy` reaches training and per-arrival oracle
/// replans): a service trained with an inexact solver still completes
/// every arrival, deterministically, and an explicit exact strategy is
/// bit-identical to the default.
#[test]
fn runtime_honors_search_strategy_choice() {
    use wisedb::search::SearchStrategy;
    let spec = wisedb::sim::catalog::tpch_like(4);
    let goal = PerformanceGoal::paper_default(GoalKind::Percentile, &spec).unwrap();
    let run = |strategy: Option<SearchStrategy>| {
        let mut online = OnlineConfig {
            training: tiny_training(),
            ..OnlineConfig::default()
        };
        if let Some(strategy) = strategy {
            online = online.with_strategy(strategy);
        }
        let config = RuntimeConfig {
            online,
            ..RuntimeConfig::default()
        };
        let mut svc = WorkloadService::train(spec.clone(), goal.clone(), config).unwrap();
        let mut process = PoissonProcess::per_second(0.02, TemplateMix::uniform(4));
        svc.run_process(&mut process, 30).unwrap()
    };
    let default_run = run(None);
    let exact = run(Some(SearchStrategy::Exact));
    assert_eq!(
        default_run.completions, exact.completions,
        "explicit exact == default"
    );
    for strategy in [SearchStrategy::beam(), SearchStrategy::anytime()] {
        let inexact_a = run(Some(strategy));
        let inexact_b = run(Some(strategy));
        assert_eq!(inexact_a.completions.len(), 30, "{strategy:?} completes");
        assert_eq!(
            inexact_a.completions, inexact_b.completions,
            "{strategy:?} deterministic"
        );
    }
}

#[test]
fn fixed_seed_reproduces_trace_and_metrics() {
    let run = || {
        let mut svc = trained_service(GoalKind::MaxLatency, 4);
        let mut process = PoissonProcess::per_second(0.02, TemplateMix::uniform(4));
        svc.run_process(&mut process, 40).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.completions, b.completions, "same event trace");
    assert_eq!(
        scrub_wall_clock(a.last.clone()),
        scrub_wall_clock(b.last.clone()),
        "same metrics"
    );
    assert_eq!(a.last.completed, 40);
}

#[test]
fn training_thread_count_does_not_change_the_run() {
    let run = |threads: usize| {
        let spec = wisedb::sim::catalog::tpch_like(4);
        let goal = PerformanceGoal::paper_default(GoalKind::PerQuery, &spec).unwrap();
        let mut config = runtime_config();
        config.online.training.threads = threads;
        let mut svc = WorkloadService::train(spec, goal, config).unwrap();
        let mut process = PoissonProcess::per_second(0.02, TemplateMix::uniform(4));
        svc.run_process(&mut process, 30).unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.completions, parallel.completions);
    assert_eq!(
        scrub_wall_clock(serial.last),
        scrub_wall_clock(parallel.last)
    );
}

#[test]
fn parallel_training_is_observationally_serial() {
    let spec = wisedb::sim::catalog::tpch_like(5);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let serial =
            ModelGenerator::new(spec.clone(), goal.clone(), tiny_training().with_threads(1))
                .train()
                .unwrap();
        let parallel =
            ModelGenerator::new(spec.clone(), goal.clone(), tiny_training().with_threads(3))
                .train()
                .unwrap();
        assert_eq!(serial.render_tree(), parallel.render_tree(), "{kind:?}");
        assert_eq!(
            serial.stats().search_expanded,
            parallel.stats().search_expanded
        );
        for seed in [1u64, 2, 3] {
            let w = wisedb::sim::generator::uniform_workload(&spec, 12, seed);
            assert_eq!(
                serial.schedule_batch(&w).unwrap(),
                parallel.schedule_batch(&w).unwrap()
            );
        }
    }
}

#[test]
fn bursty_and_drifting_streams_run_end_to_end() {
    let n = 4;
    let mut bursty = OnOffProcess::new(0.5, 60.0, 5, TemplateMix::uniform(n));
    let report = trained_service(GoalKind::MaxLatency, n)
        .run_process(&mut bursty, 30)
        .unwrap();
    assert_eq!(report.last.completed, 30);

    let mut drift = DriftProcess::new(
        0.05,
        TemplateMix::uniform(n),
        TemplateMix::hot(n, 0, 0.9),
        Millis::from_mins(5),
    );
    let report = trained_service(GoalKind::AverageLatency, n)
        .run_process(&mut drift, 30)
        .unwrap();
    assert_eq!(report.last.completed, 30);
    assert!(report.last.billed > Money::ZERO);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, .. ProptestConfig::default()
    })]

    /// With noise and start-up delays off (the defaults), the runtime's
    /// incrementally accrued bill plus penalty equals Eq. 1 recomputed
    /// from the trace: `Σ_vm (startup + runtime·busy) + p(R, S)`.
    #[test]
    fn runtime_billing_matches_analytic_eq1(
        kind_idx in 0usize..4,
        n in 12usize..28,
        mean_gap_secs in 10.0f64..120.0,
        seed in 0u64..1000,
    ) {
        let kind = GoalKind::ALL[kind_idx];
        let spec = wisedb::sim::catalog::tpch_like(3);
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let mut svc =
            WorkloadService::train(spec.clone(), goal.clone(), runtime_config()).unwrap();
        let mut process =
            PoissonProcess::with_mean_gap(mean_gap_secs, TemplateMix::uniform(3));
        let stream = generate_stream(&mut process, n, seed);
        let report = svc.run_stream(&stream).unwrap();
        prop_assert_eq!(report.completions.len(), n);

        // Rebuild Eq. 1's infrastructure terms from the trace.
        let vm_types = svc.cluster().vm_types();
        let mut busy = vec![Millis::ZERO; vm_types.len()];
        for c in &report.completions {
            busy[c.vm_index] += c.finish - c.start;
        }
        let mut analytic = Money::ZERO;
        for (v, &vm_type) in vm_types.iter().enumerate() {
            let vt = spec.vm_type(vm_type).unwrap();
            analytic += vt.startup_cost;
            analytic += vt.runtime_cost(busy[v]);
        }
        // ... and the penalty from realized SLA latencies.
        let latencies: Vec<QueryLatency> = report
            .completions
            .iter()
            .map(|c| QueryLatency {
                query: c.query,
                template: c.template,
                latency: c.finish.saturating_sub(stream[c.query.index()].arrival),
            })
            .collect();
        analytic += goal.penalty(&latencies);

        let runtime_total = report.last.total_cost();
        prop_assert!(
            runtime_total.approx_eq(analytic, 1e-9),
            "runtime {} vs analytic {}", runtime_total, analytic
        );
        prop_assert_eq!(report.last.penalty, goal.penalty(&latencies));
    }
}
