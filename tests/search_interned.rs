//! Differential tests for the interned A* hot path.
//!
//! The interning refactor (dense state ids, persistent queues, CoW penalty
//! state) must be **observationally invisible**: same optimal schedules,
//! same costs, same search work — only faster. This suite pins that down
//! three ways: fixed goldens on the paper's example workloads, adaptive-vs-
//! fresh equivalence over the id-indexed memo, and a property test
//! comparing A* against brute-force enumeration on small random workloads.

use proptest::prelude::*;

use wisedb::prelude::*;
use wisedb::search::{AdaptiveSearcher, SearchConfig};
use wisedb_core::{total_cost, PenaltyRate, Placement, VmInstance};

fn fig3_spec() -> WorkloadSpec {
    WorkloadSpec::single_vm(
        vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
        VmType::t2_medium(),
    )
    .unwrap()
}

/// Figure 3's workload (q1 of T1, q2–q4 of T2) under its per-query goal:
/// the optimal schedule is scenario 1 — 3 VMs, zero penalty — and the
/// interned searcher must reproduce its exact cost.
#[test]
fn golden_figure_three_cost_is_bit_identical() {
    let spec = fig3_spec();
    let goal = PerformanceGoal::PerQuery {
        deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
        rate: PenaltyRate::CENT_PER_SECOND,
    };
    let workload = Workload::from_counts(&[1, 3]);
    let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
    assert!(result.stats.optimal);
    assert_eq!(result.schedule.num_vms(), 3);
    // 3 start-ups + 5 query-minutes of t2.medium, no penalty — the value
    // the pre-refactor searcher returned.
    let expected = Money::from_dollars(3.0 * 0.0008 + 0.052 * 5.0 / 60.0);
    assert!(
        result.cost.approx_eq(expected, 1e-9),
        "cost {} != golden {}",
        result.cost,
        expected
    );
    // The interner saw every distinct vertex; work counters are coherent.
    assert!(result.stats.interned > 0);
    assert!(result.stats.interned <= result.stats.generated + 1);
    assert!(result.stats.expanded <= result.stats.generated + 1);
}

/// §3's three-template example: the optimal schedule interleaves
/// T1+T2+T3 per VM, fitting 2 VMs with zero penalty where FFD/FFI use 3.
#[test]
fn golden_section_three_interleaving() {
    let spec = WorkloadSpec::single_vm(
        vec![
            ("T1", Millis::from_mins(4)),
            ("T2", Millis::from_mins(3)),
            ("T3", Millis::from_mins(2)),
        ],
        VmType::t2_medium(),
    )
    .unwrap();
    let goal = PerformanceGoal::MaxLatency {
        deadline: Millis::from_mins(9),
        rate: PenaltyRate::CENT_PER_SECOND,
    };
    let workload = Workload::from_counts(&[2, 2, 2]);
    let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
    result.schedule.validate_complete(&workload).unwrap();
    assert_eq!(result.schedule.num_vms(), 2);
    // 2 start-ups + 18 query-minutes, zero penalty.
    let expected = Money::from_dollars(2.0 * 0.0008 + 0.052 * 18.0 / 60.0);
    assert!(result.cost.approx_eq(expected, 1e-9));
}

/// Fixed-seed goldens across all four goal kinds on the experiment
/// catalog: the reported cost must match both the analytic Eq. 1 cost of
/// the returned schedule and an independent brute-force enumeration.
#[test]
fn golden_catalog_costs_match_brute_force_for_every_goal() {
    let spec = wisedb::sim::catalog::tpch_like(4);
    let workload = wisedb::sim::generator::uniform_workload(&spec, 5, 1234);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec)
            .unwrap()
            .tighten_pct(&spec, 0.6);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        assert!(result.stats.optimal, "{kind:?}");
        result.schedule.validate_complete(&workload).unwrap();
        let analytic = total_cost(&spec, &goal, &result.schedule).unwrap();
        assert!(
            result.cost.approx_eq(analytic, 1e-9),
            "{kind:?}: reported {} vs analytic {}",
            result.cost,
            analytic
        );
        let brute = brute_force_best(&spec, &goal, &workload);
        assert!(
            result.cost.approx_eq(brute, 1e-9),
            "{kind:?}: A* {} vs brute force {}",
            result.cost,
            brute
        );
    }
}

/// The id-indexed adaptive memo must leave results identical to fresh
/// searches while never expanding more vertices.
#[test]
fn adaptive_memo_is_equivalent_and_no_slower() {
    let spec = fig3_spec();
    let workload = Workload::from_counts(&[3, 3]);
    for kind in [GoalKind::MaxLatency, GoalKind::PerQuery] {
        let base = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let mut adaptive = AdaptiveSearcher::new();
        for pct in [0.0, 0.3, 0.6, 0.9] {
            let goal = base.tighten_pct(&spec, pct);
            let reused = adaptive
                .solve(&spec, &goal, &workload, SearchConfig::default())
                .unwrap();
            let fresh = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
            assert!(
                reused.cost.approx_eq(fresh.cost, 1e-9),
                "{kind:?}@{pct}: adaptive {} vs fresh {}",
                reused.cost,
                fresh.cost
            );
            assert!(
                reused.stats.expanded <= fresh.stats.expanded,
                "{kind:?}@{pct}"
            );
        }
        assert!(adaptive.memo_len() > 0);
    }
}

/// Exhaustively enumerates every partition of the workload into ordered
/// VM queues (single VM type) and returns the best Eq. 1 cost.
fn brute_force_best(spec: &WorkloadSpec, goal: &PerformanceGoal, workload: &Workload) -> Money {
    fn go(
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        remaining: &mut Vec<Query>,
        schedule: &mut Schedule,
        best: &mut Money,
    ) {
        if remaining.is_empty() {
            let c = total_cost(spec, goal, schedule).unwrap();
            if c < *best {
                *best = c;
            }
            return;
        }
        for i in 0..remaining.len() {
            let q = remaining.remove(i);
            for v in 0..schedule.vms.len() {
                schedule.vms[v].queue.push(Placement {
                    query: q.id,
                    template: q.template,
                });
                go(spec, goal, remaining, schedule, best);
                schedule.vms[v].queue.pop();
            }
            schedule.vms.push(VmInstance::new(VmTypeId(0)));
            schedule.vms.last_mut().unwrap().queue.push(Placement {
                query: q.id,
                template: q.template,
            });
            go(spec, goal, remaining, schedule, best);
            schedule.vms.pop();
            remaining.insert(i, q);
        }
    }
    let mut remaining: Vec<Query> = workload.queries().to_vec();
    let mut schedule = Schedule::empty();
    let mut best = Money::from_dollars(f64::INFINITY);
    go(spec, goal, &mut remaining, &mut schedule, &mut best);
    best
}

/// A small random spec: 2–3 templates, 30 s – 5 min latencies, one VM type.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    proptest::collection::vec(30u64..300, 2..=3).prop_map(|secs| {
        WorkloadSpec::single_vm(
            secs.into_iter()
                .enumerate()
                .map(|(i, s)| (format!("T{}", i + 1), Millis::from_secs(s)))
                .collect::<Vec<_>>(),
            VmType::t2_medium(),
        )
        .unwrap()
    })
}

fn arb_goal(spec: &WorkloadSpec) -> impl Strategy<Value = PerformanceGoal> {
    let latencies: Vec<Millis> = spec
        .templates()
        .iter()
        .map(|t| t.min_latency().unwrap())
        .collect();
    let longest = latencies.iter().copied().max().unwrap();
    let mean = latencies.iter().copied().sum::<Millis>() / latencies.len() as u64;
    prop_oneof![
        (11u64..35).prop_map({
            let latencies = latencies.clone();
            move |f| PerformanceGoal::PerQuery {
                deadlines: latencies
                    .iter()
                    .map(|l| l.mul_f64(f as f64 / 10.0))
                    .collect(),
                rate: PenaltyRate::CENT_PER_SECOND,
            }
        }),
        (11u64..35).prop_map(move |f| PerformanceGoal::MaxLatency {
            deadline: longest.mul_f64(f as f64 / 10.0),
            rate: PenaltyRate::CENT_PER_SECOND,
        }),
        (11u64..35).prop_map(move |f| PerformanceGoal::AverageLatency {
            target: mean.mul_f64(f as f64 / 10.0),
            rate: PenaltyRate::CENT_PER_SECOND,
        }),
        ((11u64..35), (50.0f64..100.0)).prop_map(move |(f, p)| PerformanceGoal::Percentile {
            percent: p,
            deadline: mean.mul_f64(f as f64 / 10.0),
            rate: PenaltyRate::CENT_PER_SECOND,
        }),
    ]
}

/// (spec, goal, counts) with 1–5 queries — small enough for the
/// brute-force enumerator.
fn arb_instance() -> impl Strategy<Value = (WorkloadSpec, PerformanceGoal, Vec<u32>)> {
    arb_spec().prop_flat_map(|spec| {
        let nt = spec.num_templates();
        let goal = arb_goal(&spec);
        let counts = proptest::collection::vec(0u32..=2, nt).prop_filter("1..=5 queries", |c| {
            let total: u32 = c.iter().sum();
            total > 0 && total <= 5
        });
        (Just(spec), goal, counts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20, .. ProptestConfig::default()
    })]

    /// The interned A* finds the brute-force optimum on random small
    /// workloads under every goal kind.
    #[test]
    fn interned_astar_matches_brute_force((spec, goal, counts) in arb_instance()) {
        let workload = Workload::from_counts(&counts);
        let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        prop_assert!(result.stats.optimal);
        result.schedule.validate_complete(&workload).unwrap();
        let brute = brute_force_best(&spec, &goal, &workload);
        prop_assert!(
            result.cost.approx_eq(brute, 1e-9),
            "A* {} vs brute {}", result.cost, brute
        );
        // Reported cost always agrees with the analytic model.
        let analytic = total_cost(&spec, &goal, &result.schedule).unwrap();
        prop_assert!(result.cost.approx_eq(analytic, 1e-9));
    }
}
