//! Property-based tests on the cost model, simulator, and scheduling
//! executor invariants.

use proptest::prelude::*;

use wisedb::advisor::{attribute_costs, emd_1d, ModelConfig, ModelGenerator};
use wisedb::prelude::*;
use wisedb::sim::{self, SimOptions};
use wisedb_core::PenaltyRate;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    proptest::collection::vec(30u64..300, 2..=3).prop_map(|secs| {
        WorkloadSpec::single_vm(
            secs.into_iter()
                .enumerate()
                .map(|(i, s)| (format!("T{}", i + 1), Millis::from_secs(s)))
                .collect::<Vec<_>>(),
            VmType::t2_medium(),
        )
        .unwrap()
    })
}

fn arb_goal_kind() -> impl Strategy<Value = GoalKind> {
    prop_oneof![
        Just(GoalKind::PerQuery),
        Just(GoalKind::MaxLatency),
        Just(GoalKind::AverageLatency),
        Just(GoalKind::Percentile),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20, .. ProptestConfig::default()
    })]

    /// The simulator's default-mode bill equals Eq. 1 exactly, for any
    /// schedule the optimal searcher produces under any goal kind.
    #[test]
    fn simulator_agrees_with_analytic_cost(
        spec in arb_spec(),
        kind in arb_goal_kind(),
        counts in proptest::collection::vec(0u32..=3, 3),
        tighten in 0.0f64..0.8,
    ) {
        let counts = &counts[..spec.num_templates().min(counts.len())];
        prop_assume!(counts.iter().sum::<u32>() > 0);
        let goal = PerformanceGoal::paper_default(kind, &spec)
            .unwrap()
            .tighten_pct(&spec, tighten);
        let workload = Workload::from_counts(counts);
        let schedule = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap().schedule;
        let analytic = total_cost(&spec, &goal, &schedule).unwrap();
        let trace = sim::execute(&spec, &schedule, &SimOptions::default()).unwrap();
        prop_assert!(trace.total_cost(&goal).approx_eq(analytic, 1e-9));
        // Start-up delays and wall-clock billing can only increase cost.
        let realistic = sim::execute(&spec, &schedule, &SimOptions {
            include_startup_delay: true,
            bill_wallclock: true,
            ..SimOptions::default()
        }).unwrap();
        prop_assert!(
            realistic.total_cost(&goal).as_dollars() >= analytic.as_dollars() - 1e-9
        );
    }

    /// Cost attribution is a partition of total cost: the per-template
    /// totals sum to Eq. 1 for any schedule.
    #[test]
    fn attribution_partitions_total_cost(
        spec in arb_spec(),
        kind in arb_goal_kind(),
        counts in proptest::collection::vec(0u32..=3, 3),
    ) {
        let counts = &counts[..spec.num_templates().min(counts.len())];
        prop_assume!(counts.iter().sum::<u32>() > 0);
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let workload = Workload::from_counts(counts);
        // Use a greedy baseline schedule (faster than A*, arbitrary shape).
        let schedule = Heuristic::FirstFitIncreasing
            .schedule(&spec, &goal, &workload)
            .unwrap();
        let attributed: Money =
            attribute_costs(&spec, &goal, &schedule).unwrap().into_iter().sum();
        let total = total_cost(&spec, &goal, &schedule).unwrap();
        prop_assert!(attributed.approx_eq(total, 1e-9),
            "attributed {} vs total {}", attributed, total);
    }

    /// EMD is a metric on profiles (symmetry, identity, triangle).
    #[test]
    fn emd_metric_axioms(
        a in proptest::collection::vec(0.0f64..10.0, 4),
        b in proptest::collection::vec(0.0f64..10.0, 4),
        c in proptest::collection::vec(0.0f64..10.0, 4),
    ) {
        let dab = emd_1d(&a, &b);
        let dba = emd_1d(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(emd_1d(&a, &a) < 1e-12);
        let dac = emd_1d(&a, &c);
        let dbc = emd_1d(&b, &c);
        prop_assert!(dac <= dab + dbc + 1e-9);
        prop_assert!(dab >= 0.0);
    }

    /// Penalty trackers agree with batch penalty computation: pushing the
    /// latencies one by one accumulates to exactly the batch penalty.
    #[test]
    fn tracker_matches_batch_penalty(
        kind in arb_goal_kind(),
        lat_secs in proptest::collection::vec(10u64..1000, 1..8),
    ) {
        let spec = WorkloadSpec::single_vm(
            vec![("T1", Millis::from_secs(100))],
            VmType::t2_medium(),
        ).unwrap();
        let goal = match kind {
            GoalKind::PerQuery => PerformanceGoal::PerQuery {
                deadlines: vec![Millis::from_secs(200)],
                rate: PenaltyRate::CENT_PER_SECOND,
            },
            GoalKind::MaxLatency => PerformanceGoal::MaxLatency {
                deadline: Millis::from_secs(200),
                rate: PenaltyRate::CENT_PER_SECOND,
            },
            GoalKind::AverageLatency => PerformanceGoal::AverageLatency {
                target: Millis::from_secs(200),
                rate: PenaltyRate::CENT_PER_SECOND,
            },
            GoalKind::Percentile => PerformanceGoal::Percentile {
                percent: 75.0,
                deadline: Millis::from_secs(200),
                rate: PenaltyRate::CENT_PER_SECOND,
            },
        };
        let _ = &spec;
        let lats: Vec<wisedb_core::QueryLatency> = lat_secs
            .iter()
            .enumerate()
            .map(|(i, &s)| wisedb_core::QueryLatency {
                query: QueryId(i as u32),
                template: TemplateId(0),
                latency: Millis::from_secs(s),
            })
            .collect();
        let batch = goal.penalty(&lats);
        let mut tracker = goal.new_tracker();
        let mut accumulated = Money::ZERO;
        for l in &lats {
            accumulated += tracker.push(&goal, l.template, l.latency);
        }
        prop_assert!(accumulated.approx_eq(batch, 1e-9),
            "deltas {} vs batch {}", accumulated, batch);
        prop_assert!(tracker.penalty(&goal).approx_eq(batch, 1e-9));
    }
}

// Learned models always emit complete schedules on random workloads —
// a slower property, checked with fewer cases.
proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, .. ProptestConfig::default()
    })]

    #[test]
    fn learned_models_always_complete(
        kind in arb_goal_kind(),
        seed in 0u64..1000,
        size in 1usize..40,
    ) {
        let spec = WorkloadSpec::single_vm(
            vec![
                ("T1", Millis::from_secs(120)),
                ("T2", Millis::from_secs(60)),
            ],
            VmType::t2_medium(),
        )
        .unwrap();
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let model = ModelGenerator::new(
            spec.clone(),
            goal,
            ModelConfig {
                num_samples: 30,
                sample_size: 5,
                seed,
                ..ModelConfig::fast()
            },
        )
        .train()
        .unwrap();
        let workload = sim::uniform_workload(&spec, size, seed);
        let schedule = model.schedule_batch(&workload).unwrap();
        schedule.validate_complete(&workload).unwrap();
    }
}
