//! The observability layer, end to end (tier 1).
//!
//! Three guarantees `wisedb-obs` must keep:
//!
//! 1. **Exports are well-formed.** A traced solve renders Chrome
//!    trace-event JSON that parses back through the vendored JSON parser
//!    with balanced per-thread `B`/`E` nesting and monotone timestamps
//!    (the `wisedb_bench::trace_check` invariants a real viewer relies
//!    on), and a JSONL log whose every line is one valid object.
//! 2. **String escaping is lossless.** Arbitrary unicode attribute text
//!    survives `escape_json` → parse round trips (property-tested),
//!    including quotes, backslashes, and control characters.
//! 3. **Tracing changes nothing.** The same solve with tracing off, with
//!    full spans recording, and off again produces bit-identical
//!    schedules, costs, and `SearchStats` — instrumentation observes the
//!    system, it never steers it.
//!
//! Every test that touches the process-global collector serializes on
//! [`wisedb::obs::testing::hold`].

use proptest::prelude::*;
use wisedb::obs::{self, escape_json, Level};
use wisedb::prelude::*;
use wisedb_bench::trace_check;

fn instance() -> (WorkloadSpec, PerformanceGoal, Workload) {
    let spec = wisedb::sim::catalog::tpch_like(4);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let workload = wisedb::sim::generator::uniform_workload(&spec, 8, 42);
    (spec, goal, workload)
}

/// Invariant 1: the Chrome export of a real traced solve (plus some
/// deliberately nested spans) passes the full structural validation, and
/// the JSONL export is one parseable object per line.
#[test]
fn exports_parse_back_well_formed() {
    let _hold = obs::testing::hold();
    let collector = obs::install(Level::Spans);

    {
        // Nesting on one thread: inner must close before outer.
        let mut outer = obs::span("test.outer");
        outer.attr_str("note", "quotes \" and \\ backslashes\nsurvive");
        let _inner = obs::span("test.inner");
    }
    let (spec, goal, workload) = instance();
    Solver::new(&spec, &goal)
        .solve(&workload)
        .expect("catalog solves succeed");

    let trace = collector.finish();
    let check = trace_check::validate_chrome_trace(&trace.to_chrome())
        .unwrap_or_else(|e| panic!("chrome export failed validation: {e}"));
    assert!(
        check.events >= 4,
        "traced solve produced {} events",
        check.events
    );
    assert_eq!(check.span("test.outer").count, 1);
    assert_eq!(check.span("test.inner").count, 1);
    assert!(
        check.span("search.solve").count >= 1,
        "the solve must appear as a search.solve span"
    );

    let jsonl = trace.to_jsonl();
    let mut lines = 0;
    for line in jsonl.lines() {
        let value = serde_json::from_str_value(line)
            .unwrap_or_else(|e| panic!("JSONL line failed to parse: {e}\n{line}"));
        assert!(value.get("name").and_then(|v| v.as_str()).is_some());
        assert!(value.get("seq").and_then(|v| v.as_u64()).is_some());
        lines += 1;
    }
    assert_eq!(lines, trace.events.len(), "one JSONL line per event");
}

/// Invariant 3: tracing level and collector lifecycle leave the solver's
/// outputs bit-identical — schedule, cost, and every counter in
/// [`SearchStats`](wisedb::search::strategy::SearchStats).
#[test]
fn full_span_tracing_never_changes_solver_results() {
    let _hold = obs::testing::hold();
    obs::set_level(Level::Off);
    let (spec, goal, workload) = instance();
    let solve = || {
        Solver::new(&spec, &goal)
            .solve(&workload)
            .expect("catalog solves succeed")
    };

    let baseline = solve();
    let collector = obs::install(Level::Spans);
    let traced = solve();
    let trace = collector.finish();
    let after = solve();

    for (label, run) in [("traced", &traced), ("after finish", &after)] {
        assert_eq!(run.schedule, baseline.schedule, "{label}: schedule changed");
        assert_eq!(run.cost, baseline.cost, "{label}: cost changed");
        assert_eq!(
            run.stats, baseline.stats,
            "{label}: search counters changed"
        );
    }
    // ... and the traced run really was recorded.
    let totals = trace.span_totals();
    assert!(totals.contains_key("search.solve"));
}

/// Codepoints across ASCII (including every control character), Latin,
/// and a few astral-plane samples — whatever `filter_map` keeps is a
/// valid `String`.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..=0x2FFF, 0..48).prop_map(|cps| {
        cps.into_iter()
            .flat_map(|cp| char::from_u32(cp).or_else(|| char::from_u32(cp + 0x1F300)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256, .. ProptestConfig::default()
    })]

    /// Invariant 2: `escape_json` output, embedded in a document, parses
    /// back to exactly the original string.
    #[test]
    fn escaping_round_trips_arbitrary_strings(s in arb_text()) {
        let doc = format!("{{\"k\":\"{}\"}}", escape_json(&s));
        let value = serde_json::from_str_value(&doc);
        prop_assert!(value.is_ok(), "escaped form failed to parse: {:?}", value.err());
        let back = value.unwrap();
        prop_assert_eq!(back.get("k").and_then(|v| v.as_str()), Some(s.as_str()));
    }
}
