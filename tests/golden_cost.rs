//! Golden test pinning the Eq. 1 cost model on a small hand-computed
//! schedule, so future refactors cannot silently shift `total_cost` /
//! `cost_breakdown`.
//!
//! Every expected number below is derived by hand from the paper's pricing
//! (§7.1): t2.medium at $0.052/hour rental, $0.0008 start-up fee, and a
//! penalty of one cent per second of SLA violation. If any assertion here
//! starts failing, the cost model changed semantically — do not loosen the
//! constants without re-deriving them.

use wisedb::prelude::*;
use wisedb_core::{cost_breakdown, PenaltyRate, Placement, VmInstance, VmTypeId};

/// T1 = 2 min, T2 = 1 min on a single t2.medium type.
fn spec() -> WorkloadSpec {
    WorkloadSpec::single_vm(
        vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
        VmType::t2_medium(),
    )
    .unwrap()
}

fn place(q: u32, t: u32) -> Placement {
    Placement {
        query: QueryId(q),
        template: TemplateId(t),
    }
}

/// Two VMs; VM A runs q0 (T1) then q1 (T2), VM B runs q2 (T2).
///
/// Hand-computed execution:
///   VM A: q0 finishes at 2 min, q1 waits 2 min and finishes at 3 min.
///   VM B: q2 finishes at 1 min.
/// Busy time: A = 3 min, B = 1 min, total 4 query-minutes.
fn schedule() -> Schedule {
    Schedule {
        vms: vec![
            VmInstance {
                vm_type: VmTypeId(0),
                queue: vec![place(0, 0), place(1, 1)],
            },
            VmInstance {
                vm_type: VmTypeId(0),
                queue: vec![place(2, 1)],
            },
        ],
    }
}

const EPS: f64 = 1e-12;

/// Start-up and rental components are goal-independent:
///   startup = 2 VMs x $0.0008            = $0.0016
///   runtime = $0.052/h x (4/60) h        = $0.003466666666666667
const STARTUP: f64 = 2.0 * 0.0008;
const RUNTIME: f64 = 0.052 * 4.0 / 60.0;

#[test]
fn golden_per_query_breakdown() {
    // Deadlines: T1 = 3 min, T2 = 1 min.
    // q0 (T1): 2 min <= 3 min     -> no violation.
    // q1 (T2): 3 min vs 1 min     -> 2 min = 120 s over -> $1.20.
    // q2 (T2): 1 min <= 1 min     -> no violation.
    let goal = PerformanceGoal::PerQuery {
        deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
        rate: PenaltyRate::CENT_PER_SECOND,
    };
    let b = cost_breakdown(&spec(), &goal, &schedule()).unwrap();
    assert!(b.startup.approx_eq(Money::from_dollars(STARTUP), EPS));
    assert!(b.runtime.approx_eq(Money::from_dollars(RUNTIME), EPS));
    assert!(b.penalty.approx_eq(Money::from_dollars(1.20), EPS));
    let expected_total = STARTUP + RUNTIME + 1.20;
    assert!(b
        .total()
        .approx_eq(Money::from_dollars(expected_total), EPS));
    // total_cost is exactly the breakdown's total.
    let t = total_cost(&spec(), &goal, &schedule()).unwrap();
    assert_eq!(t, b.total());
}

#[test]
fn golden_max_latency_breakdown() {
    // One workload-wide 2.5-minute deadline; only q1 (3 min) violates,
    // by 30 s -> $0.30.
    let goal = PerformanceGoal::MaxLatency {
        deadline: Millis::from_secs(150),
        rate: PenaltyRate::CENT_PER_SECOND,
    };
    let b = cost_breakdown(&spec(), &goal, &schedule()).unwrap();
    assert!(b.startup.approx_eq(Money::from_dollars(STARTUP), EPS));
    assert!(b.runtime.approx_eq(Money::from_dollars(RUNTIME), EPS));
    assert!(b.penalty.approx_eq(Money::from_dollars(0.30), EPS));
    assert!(b
        .total()
        .approx_eq(Money::from_dollars(STARTUP + RUNTIME + 0.30), EPS));
}

#[test]
fn golden_average_latency_breakdown() {
    // Mean latency = (2 + 3 + 1) / 3 = 2 min. Target 1.5 min -> the mean is
    // 30 s over, charged once at the penalty rate:
    // $0.01/s x 30 s = $0.30.
    let goal = PerformanceGoal::AverageLatency {
        target: Millis::from_secs(90),
        rate: PenaltyRate::CENT_PER_SECOND,
    };
    let b = cost_breakdown(&spec(), &goal, &schedule()).unwrap();
    assert!(b.penalty.approx_eq(Money::from_dollars(0.30), EPS));
    assert!(b
        .total()
        .approx_eq(Money::from_dollars(STARTUP + RUNTIME + 0.30), EPS));
}

#[test]
fn golden_zero_penalty_when_goals_met() {
    // A 3-minute max-latency deadline is met by every query; cost collapses
    // to the provisioning + rental terms alone.
    let goal = PerformanceGoal::MaxLatency {
        deadline: Millis::from_mins(3),
        rate: PenaltyRate::CENT_PER_SECOND,
    };
    let b = cost_breakdown(&spec(), &goal, &schedule()).unwrap();
    assert_eq!(b.penalty, Money::ZERO);
    assert!(b
        .total()
        .approx_eq(Money::from_dollars(STARTUP + RUNTIME), EPS));
}
