//! End-to-end integration: specification → training → scheduling →
//! simulated execution, across all four goal kinds.

use wisedb::advisor::{ModelConfig, ModelGenerator};
use wisedb::prelude::*;
use wisedb::sim::{self, SimOptions};

fn training() -> ModelConfig {
    ModelConfig {
        num_samples: 200,
        sample_size: 8,
        seed: 77,
        ..ModelConfig::fast()
    }
}

/// Training succeeds, batches schedule completely, analytic and simulated
/// costs agree, and the learned model stays within a sane factor of
/// optimal — for every goal kind.
#[test]
fn full_pipeline_for_every_goal_kind() {
    let spec = wisedb::sim::catalog::tpch_like(6);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let model = ModelGenerator::new(spec.clone(), goal.clone(), training())
            .train()
            .unwrap();

        let workload = wisedb::sim::generator::uniform_workload(&spec, 16, 5);
        let schedule = model.schedule_batch(&workload).unwrap();
        schedule.validate_complete(&workload).unwrap();

        let analytic = total_cost(&spec, &goal, &schedule).unwrap();
        let trace = sim::execute(&spec, &schedule, &SimOptions::default()).unwrap();
        assert!(
            trace.total_cost(&goal).approx_eq(analytic, 1e-9),
            "{kind:?}: simulator disagrees with Eq. 1"
        );

        let optimal = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        assert!(
            analytic.as_dollars() <= optimal.cost.as_dollars() * 1.5 + 1e-9,
            "{kind:?}: model {analytic} vs optimal {}",
            optimal.cost
        );
        assert!(optimal.cost <= analytic + Money::from_dollars(1e-9));
    }
}

/// The model's schedules beat or match the *wrong-metric* greedy heuristic
/// on batches large enough for the differences to matter, and every
/// baseline produces complete schedules.
#[test]
fn model_vs_baselines_on_larger_batches() {
    let spec = wisedb::sim::catalog::tpch_like(6);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let model = ModelGenerator::new(spec.clone(), goal.clone(), training())
        .train()
        .unwrap();

    let workload = wisedb::sim::generator::uniform_workload(&spec, 120, 11);
    let model_schedule = model.schedule_batch(&workload).unwrap();
    model_schedule.validate_complete(&workload).unwrap();
    let model_cost = total_cost(&spec, &goal, &model_schedule).unwrap();

    for h in Heuristic::ALL {
        let s = h.schedule(&spec, &goal, &workload).unwrap();
        s.validate_complete(&workload).unwrap();
        let c = total_cost(&spec, &goal, &s).unwrap();
        // WiSeDB must be competitive with every heuristic on its own goal
        // (it cannot always beat FFD on Max, but must stay close) and the
        // comparison must at least be meaningful (finite, positive).
        assert!(c > Money::ZERO);
        assert!(
            model_cost.as_dollars() <= c.as_dollars() * 1.25,
            "model {model_cost} much worse than {} {c}",
            h.name()
        );
    }
}

/// Serialization: a model survives a JSON round-trip and schedules
/// identically afterwards.
#[test]
fn model_round_trips_through_json() {
    let spec = wisedb::sim::catalog::tpch_like(4);
    let goal = PerformanceGoal::paper_default(GoalKind::PerQuery, &spec).unwrap();
    let model = ModelGenerator::new(spec.clone(), goal, training())
        .train()
        .unwrap();
    let json = model.to_json().unwrap();
    let restored = wisedb::advisor::DecisionModel::from_json(&json).unwrap();
    let workload = wisedb::sim::generator::uniform_workload(&spec, 25, 3);
    assert_eq!(
        model.schedule_batch(&workload).unwrap(),
        restored.schedule_batch(&workload).unwrap()
    );
}

/// Multi-VM-type pipeline: with t2.medium + t2.small available, the
/// learned model provisions both types when that lowers cost, and never
/// places a query on a type that cannot run it.
#[test]
fn multi_vm_type_pipeline() {
    let spec = wisedb::sim::catalog::tpch_like_two_types(6);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let model = ModelGenerator::new(spec.clone(), goal.clone(), training())
        .train()
        .unwrap();
    let workload = wisedb::sim::generator::uniform_workload(&spec, 30, 9);
    let schedule = model.schedule_batch(&workload).unwrap();
    schedule.validate_complete(&workload).unwrap();
    // Placements are always supported (query_latencies errors otherwise).
    schedule.query_latencies(&spec).unwrap();

    // The two-type optimal is no costlier than the one-type optimal: more
    // choice can only help (Figure 12's observation).
    let optimal_2t = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
    let spec_1t = wisedb::sim::catalog::tpch_like(6);
    let goal_1t = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec_1t).unwrap();
    let optimal_1t = AStarSearcher::new(&spec_1t, &goal_1t)
        .solve(&workload)
        .unwrap();
    assert!(optimal_2t.cost <= optimal_1t.cost + Money::from_dollars(1e-9));
}

/// Skewed batches still schedule completely and competitively (§7.5).
#[test]
fn skewed_batches_remain_competitive() {
    let spec = wisedb::sim::catalog::tpch_like(6);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let model = ModelGenerator::new(spec.clone(), goal.clone(), training())
        .train()
        .unwrap();
    for skew in [0.0, 0.5, 1.0] {
        let workload = wisedb::sim::generator::skewed_workload(&spec, 18, skew, 31);
        let schedule = model.schedule_batch(&workload).unwrap();
        schedule.validate_complete(&workload).unwrap();
        let cost = total_cost(&spec, &goal, &schedule).unwrap();
        let optimal = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        assert!(
            cost.as_dollars() <= optimal.cost.as_dollars() * 1.5 + 1e-9,
            "skew {skew}: model {cost} vs optimal {}",
            optimal.cost
        );
    }
}
