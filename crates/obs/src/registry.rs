//! The named-metrics registry: counters, gauges, and latency histograms,
//! rendered as a Prometheus-style text exposition.
//!
//! Histograms reuse [`wisedb_core::LatencyHistogram`] — the same
//! nearest-rank implementation behind `MetricsCollector` and the loadgen
//! percentiles — with the tick reinterpreted as **microseconds** (the
//! histogram is unit-agnostic integer ticks; serve-path latencies are
//! µs-scale).

use std::collections::BTreeMap;
use std::sync::Mutex;

use wisedb_core::{LatencyHistogram, Millis};

use crate::{enabled, level, Level};

static COUNTERS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<&'static str, f64>> = Mutex::new(BTreeMap::new());
static HISTOGRAMS: Mutex<BTreeMap<&'static str, LatencyHistogram>> = Mutex::new(BTreeMap::new());

fn lock<T>(m: &'static Mutex<T>) -> std::sync::MutexGuard<'static, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Adds to a named monotone counter. Gated at [`Level::Counters`].
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled(Level::Counters) {
        return;
    }
    *lock(&COUNTERS).entry(name).or_insert(0) += delta;
}

/// Sets a named gauge. Gated at [`Level::Counters`].
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled(Level::Counters) {
        return;
    }
    lock(&GAUGES).insert(name, value);
}

/// Records one observation, in microseconds, into a named histogram.
/// Gated at [`Level::Counters`].
pub fn observe_us(name: &'static str, micros: u64) {
    if !enabled(Level::Counters) {
        return;
    }
    lock(&HISTOGRAMS)
        .entry(name)
        .or_insert_with(LatencyHistogram::new)
        .push(Millis::from_millis(micros)); // ticks are µs here
}

/// Clears every metric (done by [`crate::install`]).
pub(crate) fn reset() {
    lock(&COUNTERS).clear();
    lock(&GAUGES).clear();
    lock(&HISTOGRAMS).clear();
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → ascending `(upper_us, count)` buckets.
    pub histograms: Vec<(String, Vec<(u64, u64)>)>,
}

/// Snapshots the registry (works at any level — an `Off` snapshot is
/// simply whatever was recorded before the level dropped).
pub fn snapshot_metrics() -> RegistrySnapshot {
    RegistrySnapshot {
        counters: lock(&COUNTERS)
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
        gauges: lock(&GAUGES)
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
        histograms: lock(&HISTOGRAMS)
            .iter()
            .map(|(&k, h)| {
                (
                    k.to_string(),
                    h.buckets().map(|(v, n)| (v.as_millis(), n)).collect(),
                )
            })
            .collect(),
    }
}

/// Renders a snapshot as a Prometheus-style text exposition: `# TYPE`
/// lines, cumulative `_bucket{le="..."}` series, `_sum`/`_count`.
pub fn render_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        out.push_str(&format!(
            "# TYPE {name} gauge\n{name} {}\n",
            fmt_value(*value)
        ));
    }
    for (name, buckets) in &snapshot.histograms {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        let mut sum = 0u64;
        for &(upper_us, count) in buckets {
            cumulative += count;
            sum += upper_us * count;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{upper_us}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{name}_sum {sum}\n"));
        out.push_str(&format!("{name}_count {cumulative}\n"));
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// The full telemetry payload the serve layer answers `Telemetry`
/// requests with: a header naming the enable level, then the exposition.
pub fn telemetry_text() -> String {
    let level = match level() {
        Level::Off => "off",
        Level::Counters => "counters",
        Level::Spans => "spans",
    };
    format!(
        "# wisedb-obs exposition\n# level {level}\n{}",
        render_prometheus(&snapshot_metrics())
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, test_lock};

    #[test]
    fn counters_gauges_histograms_round_trip_through_the_exposition() {
        let _hold = test_lock::hold();
        reset();
        set_level(Level::Counters);
        counter_add("serve_requests_total", 2);
        counter_add("serve_requests_total", 3);
        gauge_set("fleet_vms", 4.0);
        observe_us("decision_us", 100);
        observe_us("decision_us", 100);
        observe_us("decision_us", 250);
        set_level(Level::Off);

        let text = telemetry_text();
        assert!(text.contains("# level off"));
        assert!(text.contains("serve_requests_total 5"));
        assert!(text.contains("fleet_vms 4"));
        // Cumulative buckets: 2 at le=100, 3 at le=250 and +Inf.
        assert!(text.contains("decision_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("decision_us_bucket{le=\"250\"} 3"));
        assert!(text.contains("decision_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("decision_us_sum 450"));
        assert!(text.contains("decision_us_count 3"));
        reset();
    }

    #[test]
    fn histogram_percentiles_match_the_shared_implementation() {
        // The registry's histogram IS LatencyHistogram with µs ticks —
        // its nearest-rank percentile must agree with the naive sort.
        let mut h = LatencyHistogram::new();
        let samples: Vec<u64> = vec![120, 80, 80, 300, 95, 240, 80, 150];
        for &s in &samples {
            h.push(Millis::from_millis(s));
        }
        let mut sorted: Vec<Millis> = samples.iter().map(|&s| Millis::from_millis(s)).collect();
        sorted.sort();
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(h.percentile(p), wisedb_core::percentile_sorted(&sorted, p));
        }
    }
}
