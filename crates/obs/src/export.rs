//! Trace exporters: Chrome trace-event JSON and the JSONL event log.
//!
//! Both are written by hand (the vendored `serde_json` is available to
//! *consumers* for parse-back, but the exporter keeps `wisedb-obs`
//! dependency-light): the only subtlety is string escaping, which is
//! property-tested round-trip through `serde_json` in the workspace
//! tests.

use crate::event::{AttrValue, Event, Phase};

/// Escapes `s` for inclusion inside a JSON string literal: `"`, `\`, and
/// all control characters below 0x20 (the named short escapes where JSON
/// has them, `\u00XX` otherwise). Other UTF-8 passes through unchanged.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn attr_value_json(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::Bool(v) => v.to_string(),
        // JSON has no Infinity/NaN literals; ship them as strings so the
        // document stays parseable (search bounds are +Inf on limit hits).
        AttrValue::F64(v) if v.is_finite() => format!("{v}"),
        AttrValue::F64(v) if v.is_nan() => "\"NaN\"".to_string(),
        AttrValue::F64(v) if *v > 0.0 => "\"+Inf\"".to_string(),
        AttrValue::F64(_) => "\"-Inf\"".to_string(),
        AttrValue::Str(v) => format!("\"{}\"", escape_json(v)),
    }
}

/// `"args"` object body: seq + optional virtual clock + attributes.
fn args_json(event: &Event) -> String {
    let mut fields = vec![format!("\"seq\":{}", event.seq)];
    if let Some(virt) = event.virt_ms {
        fields.push(format!("\"virt_ms\":{virt}"));
    }
    for (key, value) in &event.attrs {
        fields.push(format!(
            "\"{}\":{}",
            escape_json(key),
            attr_value_json(value)
        ));
    }
    format!("{{{}}}", fields.join(","))
}

/// Renders Chrome trace-event JSON ("JSON object format": a
/// `traceEvents` array), loadable in Perfetto and `chrome://tracing`.
/// Span Begin/End map to `B`/`E` (balanced per thread by the guard
/// discipline), retroactive closed spans to `X` with `dur`, instants to
/// `i`.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut rows = Vec::with_capacity(events.len());
    for event in events {
        let (ph, extra) = match event.phase {
            Phase::Begin => ("B", String::new()),
            Phase::End => ("E", String::new()),
            Phase::Complete { dur_us } => ("X", format!(",\"dur\":{dur_us}")),
            Phase::Instant => ("i", ",\"s\":\"t\"".to_string()),
        };
        rows.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"wisedb\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{}{extra},\"args\":{}}}",
            escape_json(event.name),
            event.wall_us,
            event.tid,
            args_json(event)
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        rows.join(",\n")
    )
}

/// Renders the JSONL structured event log: one object per line, in
/// sequence order — `grep`- and `jq`-friendly.
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        let ph = match event.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete { .. } => "X",
            Phase::Instant => "i",
        };
        let mut fields = vec![
            format!("\"seq\":{}", event.seq),
            format!("\"ph\":\"{ph}\""),
            format!("\"name\":\"{}\"", escape_json(event.name)),
            format!("\"tid\":{}", event.tid),
            format!("\"wall_us\":{}", event.wall_us),
        ];
        if let Phase::Complete { dur_us } = event.phase {
            fields.push(format!("\"dur_us\":{dur_us}"));
        }
        if let Some(virt) = event.virt_ms {
            fields.push(format!("\"virt_ms\":{virt}"));
        }
        if !event.attrs.is_empty() {
            let attrs: Vec<String> = event
                .attrs
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape_json(k), attr_value_json(v)))
                .collect();
            fields.push(format!("\"attrs\":{{{}}}", attrs.join(",")));
        }
        out.push_str(&format!("{{{}}}\n", fields.join(",")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(phase: Phase, name: &'static str) -> Event {
        Event {
            seq: 1,
            phase,
            name,
            tid: 3,
            wall_us: 42,
            virt_ms: Some(7),
            attrs: vec![
                ("n", AttrValue::U64(5)),
                ("bound", AttrValue::F64(f64::INFINITY)),
                ("msg", AttrValue::Str("say \"hi\"\n".to_string())),
            ],
        }
    }

    #[test]
    fn chrome_trace_renders_phases_and_escapes() {
        let events = vec![
            event(Phase::Begin, "plan"),
            event(Phase::End, "plan"),
            event(Phase::Complete { dur_us: 9 }, "queue"),
            event(Phase::Instant, "shed"),
        ];
        let json = chrome_trace(&events);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"X\",\"ts\":42,\"pid\":1,\"tid\":3,\"dur\":9"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"bound\":\"+Inf\""));
        assert!(json.contains("say \\\"hi\\\"\\n"));
        assert!(json.contains("\"virt_ms\":7"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = jsonl(&[event(Phase::Instant, "shed"), event(Phase::Begin, "plan")]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn escape_json_handles_control_characters() {
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\u{01}b"), "a\\u0001b");
        assert_eq!(escape_json("héllo"), "héllo");
    }
}
