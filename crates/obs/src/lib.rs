//! # wisedb-obs
//!
//! The workspace's observability layer: tracing spans, a structured event
//! log, and a named-metrics registry, all hand-rolled (the build is
//! offline — no crates.io) and built around one hard constraint: **with
//! tracing disabled, instrumented code paths must stay byte-identical in
//! behavior and near-zero in cost.**
//!
//! ## How the near-zero-overhead gate works
//!
//! A process-global [`AtomicU8`](std::sync::atomic::AtomicU8) holds the
//! enable [`Level`]:
//!
//! | level | what records |
//! |-------|--------------|
//! | [`Level::Off`] *(default)* | nothing — every entry point is one relaxed atomic load and a branch |
//! | [`Level::Counters`] | named counters/gauges/histograms and instant events |
//! | [`Level::Spans`] | everything above, plus Begin/End spans and closed (`Complete`) spans |
//!
//! Every public entry point ([`span`], [`instant`], [`counter_add`], …)
//! loads the level with `Ordering::Relaxed` first and returns a no-op
//! value when the level is below its gate — no allocation, no lock, no
//! clock read. Instrumentation therefore lives permanently in the hot
//! paths of the other crates (one predictable branch), and the regress
//! harness's counters stay byte-identical with tracing off.
//!
//! ## Recording pipeline
//!
//! [`install`] pins the process wall-clock epoch, resets the metrics
//! registry, opens a global mpsc sender, and spawns one collector thread
//! that drains [`Event`]s into a `Vec`. Producers (span guards, event
//! builders) stamp each event with:
//!
//! * a global sequence number (total order, independent of clocks),
//! * the **wall clock** in microseconds since the epoch (`Instant`-based,
//!   monotone), and
//! * optionally the **virtual clock** ([`wisedb_core::Millis`]) of the
//!   event loop, so traces of the deterministic simulator stay
//!   deterministic and can be lined up across runs.
//!
//! [`Collector::finish`] flips the level off, disconnects the sender,
//! joins the collector, and hands back a [`Trace`] with three exporters:
//! [`Trace::to_chrome`] (Chrome trace-event JSON, loadable in Perfetto /
//! `chrome://tracing`), [`Trace::to_jsonl`] (one JSON object per event),
//! and — independent of any trace — [`telemetry_text`] renders the
//! metrics registry as a Prometheus-style text exposition (the payload of
//! the serve layer's `Telemetry` wire request).
//!
//! Span guards keep a thread-local span stack, so Begin/End pairs nest
//! per thread (what the Chrome `B`/`E` phases require) and each Begin
//! records its parent span. Spans that must be stamped retroactively
//! (e.g. a queue wait measured only once the consumer picks the item up)
//! are emitted as Chrome `X` (complete) events via [`complete`], which
//! need no nesting.
//!
//! Only one collector can be live at a time; installing a second one
//! replaces the first (whose `finish` then returns what it had). Tests
//! that install a collector serialize on a shared mutex.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod collect;
mod event;
mod export;
mod registry;

pub use collect::{install, now_if_spans, Collector, SpanTotal, Trace};
pub use event::{
    complete, current_span, current_tid, instant, span, AttrValue, Event, EventBuilder, Phase, Span,
};
pub use export::escape_json;
pub use registry::{
    counter_add, gauge_set, observe_us, render_prometheus, snapshot_metrics, telemetry_text,
    RegistrySnapshot,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// The process-global enable level. See the crate docs for the tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing records; every entry point is one relaxed load + branch.
    Off = 0,
    /// Counters, gauges, histograms, and instant events record.
    Counters = 1,
    /// Everything records, including Begin/End and Complete spans.
    Spans = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global enable level. Usually done via [`install`];
/// exposed so counters-only runs need no collector thread.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Release);
}

/// The current enable level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Counters,
        _ => Level::Spans,
    }
}

/// The hot-path gate: one relaxed atomic load and a compare.
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    LEVEL.load(Ordering::Relaxed) >= level as u8
}

/// Support for tests that exercise the process-global obs state.
pub mod testing {
    use std::sync::{Mutex, MutexGuard};

    /// Tests that install a collector or assert on the registry serialize
    /// here — the level, sender, and registry are process-global, so two
    /// such tests running in parallel would see each other's events.
    static LOCK: Mutex<()> = Mutex::new(());

    /// Acquires the global obs test lock (a poisoned lock is recovered —
    /// one failed test must not cascade).
    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
pub(crate) use testing as test_lock;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_defaults_off_and_gates() {
        let _hold = test_lock::hold();
        set_level(Level::Off);
        assert!(!enabled(Level::Counters));
        assert!(!enabled(Level::Spans));
        set_level(Level::Counters);
        assert!(enabled(Level::Counters));
        assert!(!enabled(Level::Spans));
        set_level(Level::Spans);
        assert!(enabled(Level::Counters));
        assert!(enabled(Level::Spans));
        set_level(Level::Off);
    }

    #[test]
    fn disabled_entry_points_are_no_ops() {
        let _hold = test_lock::hold();
        set_level(Level::Off);
        // None of these may panic, allocate into the registry, or emit.
        let mut s = span("noop");
        assert!(!s.recording());
        s.attr_u64("k", 1);
        drop(s);
        instant("noop").attr_u64("k", 1).emit();
        counter_add("noop_total", 1);
        gauge_set("noop_gauge", 1.0);
        observe_us("noop_us", 17);
        let snap = snapshot_metrics();
        assert!(!snap.counters.iter().any(|(n, _)| n == "noop_total"));
    }
}
