//! Events, span guards, and the thread-local span stack.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use wisedb_core::Millis;

use crate::collect::{emit, wall_us_now};
use crate::{enabled, Level};

/// What kind of record an [`Event`] is — maps onto the Chrome trace-event
/// phases `B`, `E`, `X`, and `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opened ([`span`]). Balanced by a matching [`Phase::End`] on
    /// the same thread (the guard emits it on drop).
    Begin,
    /// A span closed.
    End,
    /// A retroactively-stamped closed span ([`complete`]): its timestamp
    /// is the start, `dur_us` the measured extent. Needs no nesting.
    Complete {
        /// The span's extent in microseconds.
        dur_us: u64,
    },
    /// A point-in-time event ([`instant`]).
    Instant,
}

/// One attribute value. Strings are owned (they are only built when
/// recording is on); everything else is plain scalars.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned scalar.
    U64(u64),
    /// A signed scalar.
    I64(i64),
    /// A float (non-finite values export as JSON strings).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// An owned string.
    Str(String),
}

/// One record in the trace.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global sequence number: a total order over all events, assigned at
    /// emit time — ties on the microsecond clock stay deterministic.
    pub seq: u64,
    /// The record kind.
    pub phase: Phase,
    /// The span/event name (static: names are part of the span taxonomy).
    pub name: &'static str,
    /// The emitting thread's small dense id (assigned on first use).
    pub tid: u64,
    /// Microseconds of wall clock since the collector epoch.
    pub wall_us: u64,
    /// The event loop's virtual clock, when the site attached one.
    pub virt_ms: Option<u64>,
    /// Named attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// This thread's small dense id (1-based, in first-use order).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// The innermost open span on this thread, if any.
pub fn current_span() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// An RAII span guard: Begin on creation, End on drop. When spans are
/// disabled the guard is inert — no clock read, no emit, and every
/// attribute method is a no-op (check [`Span::recording`] before building
/// expensive attribute values).
pub struct Span {
    name: &'static str,
    recording: bool,
    virt_ms: Option<u64>,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Opens a span. One relaxed atomic load when spans are disabled.
pub fn span(name: &'static str) -> Span {
    if !enabled(Level::Spans) {
        return Span {
            name,
            recording: false,
            virt_ms: None,
            attrs: Vec::new(),
        };
    }
    let mut begin_attrs = Vec::new();
    if let Some(parent) = current_span() {
        begin_attrs.push(("parent", AttrValue::Str(parent.to_string())));
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    emit(Event {
        seq: 0,
        phase: Phase::Begin,
        name,
        tid: current_tid(),
        wall_us: wall_us_now(),
        virt_ms: None,
        attrs: begin_attrs,
    });
    Span {
        name,
        recording: true,
        virt_ms: None,
        attrs: Vec::new(),
    }
}

impl Span {
    /// Whether this guard will emit — gate expensive attribute
    /// construction on it.
    pub fn recording(&self) -> bool {
        self.recording
    }

    /// Attaches the event loop's virtual clock to the closing event.
    pub fn virt(&mut self, at: Millis) {
        if self.recording {
            self.virt_ms = Some(at.as_millis());
        }
    }

    /// Attaches an unsigned attribute (recorded on the closing event).
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if self.recording {
            self.attrs.push((key, AttrValue::U64(value)));
        }
    }

    /// Attaches a float attribute.
    pub fn attr_f64(&mut self, key: &'static str, value: f64) {
        if self.recording {
            self.attrs.push((key, AttrValue::F64(value)));
        }
    }

    /// Attaches a boolean attribute.
    pub fn attr_bool(&mut self, key: &'static str, value: bool) {
        if self.recording {
            self.attrs.push((key, AttrValue::Bool(value)));
        }
    }

    /// Attaches a string attribute.
    pub fn attr_str(&mut self, key: &'static str, value: impl Into<String>) {
        if self.recording {
            self.attrs.push((key, AttrValue::Str(value.into())));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recording {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop LIFO; anything else is a bug in the
            // instrumentation, not worth panicking a host thread over.
            if stack.last() == Some(&self.name) {
                stack.pop();
            }
        });
        emit(Event {
            seq: 0,
            phase: Phase::End,
            name: self.name,
            tid: current_tid(),
            wall_us: wall_us_now(),
            virt_ms: self.virt_ms,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

/// A deferred event under construction; inert (all methods no-ops) when
/// the gate level was not met at creation.
pub struct EventBuilder(Option<Event>);

/// Starts a point-in-time event. Gated at [`Level::Counters`] — instant
/// events are the structured event log (sheds, framing violations,
/// retrain lifecycle), useful even without full spans.
pub fn instant(name: &'static str) -> EventBuilder {
    if !enabled(Level::Counters) {
        return EventBuilder(None);
    }
    EventBuilder(Some(Event {
        seq: 0,
        phase: Phase::Instant,
        name,
        tid: current_tid(),
        wall_us: wall_us_now(),
        virt_ms: None,
        attrs: Vec::new(),
    }))
}

/// Starts a retroactive closed span covering `start..now` — for extents
/// whose beginning is only known to another thread (queue waits). Gated
/// at [`Level::Spans`].
pub fn complete(name: &'static str, start: std::time::Instant) -> EventBuilder {
    if !enabled(Level::Spans) {
        return EventBuilder(None);
    }
    let start_us = crate::collect::wall_us_of(start);
    let now_us = wall_us_now();
    EventBuilder(Some(Event {
        seq: 0,
        phase: Phase::Complete {
            dur_us: now_us.saturating_sub(start_us),
        },
        name,
        tid: current_tid(),
        wall_us: start_us,
        virt_ms: None,
        attrs: Vec::new(),
    }))
}

impl EventBuilder {
    /// Whether this builder will emit.
    pub fn recording(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches the event loop's virtual clock.
    pub fn virt(mut self, at: Millis) -> Self {
        if let Some(e) = &mut self.0 {
            e.virt_ms = Some(at.as_millis());
        }
        self
    }

    /// Attaches an unsigned attribute.
    pub fn attr_u64(mut self, key: &'static str, value: u64) -> Self {
        if let Some(e) = &mut self.0 {
            e.attrs.push((key, AttrValue::U64(value)));
        }
        self
    }

    /// Attaches a float attribute.
    pub fn attr_f64(mut self, key: &'static str, value: f64) -> Self {
        if let Some(e) = &mut self.0 {
            e.attrs.push((key, AttrValue::F64(value)));
        }
        self
    }

    /// Attaches a boolean attribute.
    pub fn attr_bool(mut self, key: &'static str, value: bool) -> Self {
        if let Some(e) = &mut self.0 {
            e.attrs.push((key, AttrValue::Bool(value)));
        }
        self
    }

    /// Attaches a string attribute.
    pub fn attr_str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        if let Some(e) = &mut self.0 {
            e.attrs.push((key, AttrValue::Str(value.into())));
        }
        self
    }

    /// Sends the event to the collector (no-op when inert).
    pub fn emit(self) {
        if let Some(e) = self.0 {
            emit(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, test_lock};

    #[test]
    fn spans_nest_and_balance_on_one_thread() {
        let _hold = test_lock::hold();
        let collector = install(Level::Spans);
        {
            let mut outer = span("outer");
            outer.attr_u64("n", 1);
            assert_eq!(current_span(), Some("outer"));
            {
                let _inner = span("inner");
                assert_eq!(current_span(), Some("inner"));
            }
            assert_eq!(current_span(), Some("outer"));
        }
        assert_eq!(current_span(), None);
        let trace = collector.finish();
        let phases: Vec<(Phase, &str)> = trace.events.iter().map(|e| (e.phase, e.name)).collect();
        assert_eq!(
            phases,
            vec![
                (Phase::Begin, "outer"),
                (Phase::Begin, "inner"),
                (Phase::End, "inner"),
                (Phase::End, "outer"),
            ]
        );
        // The inner Begin records its parent.
        assert!(trace.events[1]
            .attrs
            .iter()
            .any(|(k, v)| *k == "parent" && *v == AttrValue::Str("outer".into())));
        // End timestamps never precede their Begin.
        assert!(trace.events[3].wall_us >= trace.events[0].wall_us);
        // Sequence numbers are a strict total order.
        assert!(trace.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn complete_and_instant_events_record_attrs_and_virtual_time() {
        let _hold = test_lock::hold();
        let collector = install(Level::Spans);
        let start = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        complete("queue_wait", start)
            .attr_u64("conn", 7)
            .virt(Millis::from_secs(3))
            .emit();
        instant("shed").attr_str("class", "bronze").emit();
        let trace = collector.finish();
        assert_eq!(trace.events.len(), 2);
        match trace.events[0].phase {
            Phase::Complete { dur_us } => assert!(dur_us >= 1_000),
            other => panic!("expected a complete event, got {other:?}"),
        }
        assert_eq!(trace.events[0].virt_ms, Some(3_000));
        assert_eq!(trace.events[1].name, "shed");
    }

    #[test]
    fn counters_level_records_instants_but_not_spans() {
        let _hold = test_lock::hold();
        let collector = install(Level::Counters);
        {
            let _s = span("invisible");
        }
        instant("visible").emit();
        let trace = collector.finish();
        let names: Vec<&str> = trace.events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["visible"]);
    }
}
