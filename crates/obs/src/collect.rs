//! The collector: per-thread event buffers drained by one background
//! thread, the process wall-clock epoch, and the [`Trace`] it produces.
//!
//! The emit path is deliberately contention-free: each producing thread
//! appends to its **own** buffer (an `Arc<Mutex<Vec<Event>>>` that only
//! the collector thread ever locks besides the owner), and sequence
//! numbers come from one relaxed `fetch_add`. The collector thread wakes
//! every few milliseconds, swaps every registered buffer empty, and
//! accumulates the events; `finish` performs a final drain and sorts by
//! sequence number. Compared to sending each event over a shared mpsc
//! channel under a global lock, this keeps the per-event cost to one
//! uncontended lock and a `Vec` push — which is what lets full-span
//! tracing ride the serve layer's microsecond-scale SLO path.
//!
//! Sequence numbers respect causality: the counter's modification order
//! is total, and any cross-thread happens-before edge (an mpsc send, a
//! mutex hand-off) orders the two threads' subsequent `fetch_add`s.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::event::{Event, Phase};
use crate::{export, registry, set_level, Level};

type Buffer = Arc<Mutex<Vec<Event>>>;

/// Buffers registered by producing threads for the current generation.
static BUFFERS: Mutex<Vec<Buffer>> = Mutex::new(Vec::new());
/// The live collector's generation; 0 means none is live. Bumped on every
/// [`install`], so a stale thread-local buffer from an older collector is
/// recognized and re-registered instead of polluting the new trace.
static ACTIVE_GEN: AtomicU64 = AtomicU64::new(0);
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);
static SEQ: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// How often the collector thread sweeps the per-thread buffers.
const DRAIN_TICK: Duration = Duration::from_millis(5);

thread_local! {
    /// This thread's buffer, tagged with the generation it registered for.
    static LOCAL: RefCell<Option<(u64, Buffer)>> = const { RefCell::new(None) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds of wall clock since the process epoch.
pub(crate) fn wall_us_now() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// `instant` as microseconds since the process epoch (0 if it predates it).
pub(crate) fn wall_us_of(instant: Instant) -> u64 {
    instant
        .checked_duration_since(epoch())
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// `Instant::now()` when spans record, else `None` — the cheap way for a
/// producer to stamp work another thread will close with
/// [`crate::complete`].
pub fn now_if_spans() -> Option<Instant> {
    if crate::enabled(Level::Spans) {
        Some(Instant::now())
    } else {
        None
    }
}

/// Records one event into this thread's buffer, assigning its sequence
/// number. Callers have already passed the level gate; without a live
/// collector this drops the event.
pub(crate) fn emit(mut event: Event) {
    let gen = ACTIVE_GEN.load(Ordering::Acquire);
    if gen == 0 {
        return;
    }
    event.seq = SEQ.fetch_add(1, Ordering::Relaxed);
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let buffer = match local.as_ref() {
            Some((g, buffer)) if *g == gen => buffer,
            // First event of this generation on this thread: register a
            // fresh buffer with the collector. Once per thread per
            // install — never on the steady-state path.
            _ => {
                let buffer: Buffer = Arc::new(Mutex::new(Vec::new()));
                BUFFERS
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(Arc::clone(&buffer));
                *local = Some((gen, buffer));
                &local.as_ref().expect("just set").1
            }
        };
        buffer.lock().unwrap_or_else(|p| p.into_inner()).push(event);
    });
}

/// Moves every registered buffer's contents into `into` — but only while
/// `gen` is still the live generation, so a lingering collector from a
/// replaced install cannot steal its successor's events.
fn drain_buffers(gen: u64, into: &mut Vec<Event>) {
    let live = ACTIVE_GEN.load(Ordering::Acquire);
    if live != gen && live != 0 {
        return;
    }
    let buffers: Vec<Buffer> = BUFFERS
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .map(Arc::clone)
        .collect();
    for buffer in buffers {
        let mut guard = buffer.lock().unwrap_or_else(|p| p.into_inner());
        into.append(&mut guard);
    }
}

/// A live collector: finish it to get the [`Trace`].
pub struct Collector {
    gen: u64,
    stop: Sender<()>,
    thread: JoinHandle<Vec<Event>>,
}

/// Pins the epoch, resets the metrics registry and sequence counter,
/// spawns the collector thread, and raises the level. One collector at a
/// time; installing another replaces it (the older collector's `finish`
/// then only returns what its thread had already drained).
pub fn install(level: Level) -> Collector {
    epoch();
    registry::reset();
    let gen = NEXT_GEN.fetch_add(1, Ordering::Relaxed);
    {
        // Discard any buffers of a replaced generation: their owning
        // threads re-register on their next event.
        let mut buffers = BUFFERS.lock().unwrap_or_else(|p| p.into_inner());
        buffers.clear();
    }
    SEQ.store(0, Ordering::Relaxed);
    let (stop, stop_rx) = channel::<()>();
    let thread = std::thread::Builder::new()
        .name("wisedb-obs-collector".to_string())
        .spawn(move || {
            let mut events = Vec::new();
            loop {
                match stop_rx.recv_timeout(DRAIN_TICK) {
                    Err(RecvTimeoutError::Timeout) => drain_buffers(gen, &mut events),
                    // Stop requested (or the Collector was leaked and its
                    // sender dropped): one final sweep, then hand back.
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                        drain_buffers(gen, &mut events);
                        return events;
                    }
                }
            }
        })
        .expect("collector thread spawns");
    ACTIVE_GEN.store(gen, Ordering::Release);
    set_level(level);
    Collector { gen, stop, thread }
}

impl Collector {
    /// Lowers the level to [`Level::Off`], stops the collector thread
    /// (which sweeps the buffers one last time), and returns the trace,
    /// ordered by sequence number.
    pub fn finish(self) -> Trace {
        set_level(Level::Off);
        // Only clear the live generation if it is still ours — finishing
        // a replaced collector must not mute its successor.
        let _ = ACTIVE_GEN.compare_exchange(self.gen, 0, Ordering::AcqRel, Ordering::Acquire);
        let _ = self.stop.send(());
        let mut events = self.thread.join().unwrap_or_default();
        events.sort_by_key(|e| e.seq);
        Trace { events }
    }
}

/// Everything one collector recorded.
pub struct Trace {
    /// The events, in sequence order.
    pub events: Vec<Event>,
}

/// Aggregate extent of one span name in a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanTotal {
    /// Closed spans observed (Begin/End pairs plus Complete events).
    pub count: u64,
    /// Total microseconds across those spans.
    pub total_us: u64,
}

impl Trace {
    /// Renders Chrome trace-event JSON (open in Perfetto or
    /// `chrome://tracing`).
    pub fn to_chrome(&self) -> String {
        export::chrome_trace(&self.events)
    }

    /// Renders the JSONL structured event log: one JSON object per line,
    /// in sequence order.
    pub fn to_jsonl(&self) -> String {
        export::jsonl(&self.events)
    }

    /// Sums closed-span extents per name, matching Begin/End pairs on a
    /// per-thread stack (unbalanced leftovers are ignored) and adding
    /// Complete events directly. This is what the loadgen's span-coverage
    /// report is computed from.
    pub fn span_totals(&self) -> BTreeMap<&'static str, SpanTotal> {
        let mut totals: BTreeMap<&'static str, SpanTotal> = BTreeMap::new();
        let mut stacks: BTreeMap<u64, Vec<(&'static str, u64)>> = BTreeMap::new();
        for event in &self.events {
            match event.phase {
                Phase::Begin => {
                    stacks
                        .entry(event.tid)
                        .or_default()
                        .push((event.name, event.wall_us));
                }
                Phase::End => {
                    if let Some(stack) = stacks.get_mut(&event.tid) {
                        if let Some(pos) = stack.iter().rposition(|(n, _)| *n == event.name) {
                            let (_, begin_us) = stack.remove(pos);
                            let t = totals.entry(event.name).or_default();
                            t.count += 1;
                            t.total_us += event.wall_us.saturating_sub(begin_us);
                        }
                    }
                }
                Phase::Complete { dur_us } => {
                    let t = totals.entry(event.name).or_default();
                    t.count += 1;
                    t.total_us += dur_us;
                }
                Phase::Instant => {}
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instant, span, test_lock};

    #[test]
    fn cross_thread_events_all_arrive_in_sequence_order() {
        let _hold = test_lock::hold();
        let collector = install(Level::Spans);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        let _s = span("worker");
                    }
                });
            }
        });
        let trace = collector.finish();
        assert_eq!(trace.events.len(), 4 * 25 * 2);
        assert!(trace.events.windows(2).all(|w| w[0].seq < w[1].seq));
        let totals = trace.span_totals();
        assert_eq!(totals["worker"].count, 100);
    }

    #[test]
    fn finish_disables_recording_and_later_events_are_dropped() {
        let _hold = test_lock::hold();
        let collector = install(Level::Counters);
        instant("before").emit();
        let trace = collector.finish();
        assert_eq!(crate::level(), Level::Off);
        instant("after").emit(); // gated off, and no sender either way
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].name, "before");
    }
}
