//! # wisedb-serve
//!
//! The network-facing scheduler service: the WiSeDB online
//! workload-management loop ([`wisedb_runtime::WorkloadService`]) behind
//! a TCP wire protocol, so the advisor can be *deployed* — clients offer
//! arrivals over a socket and get back the same admit/shed verdicts and
//! metrics the in-process API yields, bit for bit.
//!
//! * [`frame`] — the versioned binary frame: magic, version, kind,
//!   big-endian length, payload; hostile lengths capped, truncation and
//!   garbage turned into typed errors.
//! * [`wire`] — the JSON request/response vocabulary (`Offer`,
//!   `Metrics`, `SwapModel`, `Shutdown` / `Admitted`, `Shed`,
//!   `Metrics`, `Ok`, `Error`), built on the workspace's serde'd core
//!   types.
//! * [`batch`] — the scheduler thread's command queue plus the
//!   drain-and-coalesce policy: under load, consecutive same-class
//!   offers plan as one `offer_batch_as` burst.
//! * [`server`] — accept loop, bounded worker pool, ONE scheduler
//!   thread owning the service (determinism preserved), background
//!   trainer threads for hot model swaps.
//! * [`client`] — a blocking client mirroring the in-process surface.
//! * [`error`] — the per-layer error taxonomy; nothing on the request
//!   path panics the server.
//!
//! ## Service-level objective
//!
//! Decision latency over loopback at quick-scale load: **p95 < 1 ms,
//! p99 < 10 ms** (see `wisedb-bench --bin loadgen`, which gates these
//! and feeds the regress counters). Overload degrades gracefully: the
//! admission policy's verdict ships as a [`wire::Response::Shed`] frame,
//! never a dropped connection.
//!
//! ## Quickstart
//!
//! ```
//! use wisedb_serve::prelude::*;
//! use wisedb_advisor::{ModelConfig, OnlineConfig};
//! use wisedb_core::{GoalKind, Millis, PerformanceGoal, TemplateId, TenantId, VmType, WorkloadSpec};
//! use wisedb_runtime::{OfferOutcome, RuntimeConfig, WorkloadService};
//!
//! let spec = WorkloadSpec::single_vm(
//!     vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
//!     VmType::t2_medium(),
//! )
//! .unwrap();
//! let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
//! let config = RuntimeConfig {
//!     online: OnlineConfig {
//!         training: ModelConfig { num_samples: 40, sample_size: 5, ..ModelConfig::fast() },
//!         ..OnlineConfig::default()
//!     },
//!     ..RuntimeConfig::default()
//! };
//! let service = WorkloadService::train(spec, goal, config).unwrap();
//!
//! // Serve it on a loopback port, drive it over the wire, wind it down.
//! let handle = Server::spawn(service, ServeConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let outcome = client
//!     .offer(TenantId::DEFAULT, TemplateId(0), Millis::from_secs(1))
//!     .unwrap();
//! assert_eq!(outcome, OfferOutcome::Admitted);
//! let snapshot = client.metrics().unwrap();
//! assert_eq!(snapshot.admitted, 1);
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod client;
pub mod error;
pub mod frame;
pub mod server;
pub mod wire;

pub use client::Client;
pub use error::{ServeError, ServeResult};
pub use server::{ServeConfig, Server, ServerHandle};
pub use wire::{Request, Response};

/// One-stop imports for serving and talking to a scheduler over TCP.
pub mod prelude {
    pub use crate::client::Client;
    pub use crate::error::{ServeError, ServeResult};
    pub use crate::server::{ServeConfig, Server, ServerHandle};
    pub use crate::wire::{Request, Response};
}
