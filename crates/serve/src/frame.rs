//! The binary frame: a fixed 8-byte header plus an opaque payload.
//!
//! Layout (all integers big-endian):
//!
//! | offset | size | field       | value                                  |
//! |-------:|-----:|-------------|----------------------------------------|
//! |      0 |    2 | magic       | `0x5744` (`"WD"`)                      |
//! |      2 |    1 | version     | [`VERSION`]                            |
//! |      3 |    1 | kind        | [`FrameKind`] discriminant             |
//! |      4 |    4 | payload len | at most [`MAX_PAYLOAD`]                |
//! |      8 |    n | payload     | JSON body (see [`crate::wire`])        |
//!
//! The header is validated field by field on read; any violation is a
//! [`ServeError::Frame`] — the stream can no longer be trusted, so the
//! server answers one error frame and closes the connection. A connection
//! that closes *between* frames is a clean [`FrameRead::Eof`]; one that
//! closes *inside* a frame is an I/O error (truncated frame).

use std::io::{self, Read, Write};

use byteorder::{BigEndian, ReadBytesExt, WriteBytesExt};

use crate::error::{ServeError, ServeResult};

/// `"WD"` — the first two bytes of every frame.
pub const MAGIC: u16 = 0x5744;

/// Protocol version this build speaks. A peer announcing any other
/// version is rejected with a framing error.
pub const VERSION: u8 = 1;

/// Upper bound on a frame's payload, guarding the server against a
/// hostile or corrupt length field allocating gigabytes.
pub const MAX_PAYLOAD: u32 = 4 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A client-to-server [`crate::wire::Request`].
    Request,
    /// A server-to-client [`crate::wire::Response`].
    Response,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Response),
            _ => None,
        }
    }
}

/// The outcome of one [`read_frame`] attempt.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete, well-formed frame.
    Frame(FrameKind, Vec<u8>),
    /// The peer closed the connection cleanly (EOF before a header byte).
    Eof,
    /// A read timeout fired before any header byte arrived — the
    /// connection is idle, not broken. Only seen on sockets with a read
    /// timeout set (the server's shutdown-poll tick).
    Idle,
}

/// Writes one frame: header then payload, single flush.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_PAYLOAD as u64);
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.write_u16::<BigEndian>(MAGIC)?;
    buf.write_u8(VERSION)?;
    buf.write_u8(kind.to_byte())?;
    buf.write_u32::<BigEndian>(payload.len() as u32)?;
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, distinguishing a clean close ([`FrameRead::Eof`]) and
/// an idle poll tick ([`FrameRead::Idle`]) from real failures. Header
/// violations come back as [`ServeError::Frame`]; a connection that dies
/// mid-frame (truncation) is [`ServeError::Io`].
pub fn read_frame(r: &mut impl Read) -> ServeResult<FrameRead> {
    // The first byte decides whether this is a frame, a clean close, or
    // an idle tick; everything after it must arrive in full.
    let first = match r.read_u8() {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(FrameRead::Eof),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            return Ok(FrameRead::Idle)
        }
        Err(e) => return Err(ServeError::Io(e)),
    };
    let second = r.read_u8()?;
    let magic = u16::from_be_bytes([first, second]);
    if magic != MAGIC {
        return Err(ServeError::Frame {
            detail: format!("bad magic {magic:#06x} (expected {MAGIC:#06x})"),
        });
    }
    let version = r.read_u8()?;
    if version != VERSION {
        return Err(ServeError::Frame {
            detail: format!("unsupported protocol version {version} (this build speaks {VERSION})"),
        });
    }
    let kind_byte = r.read_u8()?;
    let Some(kind) = FrameKind::from_byte(kind_byte) else {
        return Err(ServeError::Frame {
            detail: format!("unknown frame kind {kind_byte}"),
        });
    };
    let len = r.read_u32::<BigEndian>()?;
    if len > MAX_PAYLOAD {
        return Err(ServeError::Frame {
            detail: format!("payload length {len} exceeds the {MAX_PAYLOAD}-byte cap"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(FrameRead::Frame(kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"{\"Metrics\":null}").unwrap();
        write_frame(&mut buf, FrameKind::Response, b"").unwrap();
        let mut r = &buf[..];
        match read_frame(&mut r).unwrap() {
            FrameRead::Frame(FrameKind::Request, p) => {
                assert_eq!(p, b"{\"Metrics\":null}")
            }
            other => panic!("expected a request frame, got {other:?}"),
        }
        match read_frame(&mut r).unwrap() {
            FrameRead::Frame(FrameKind::Response, p) => assert!(p.is_empty()),
            other => panic!("expected a response frame, got {other:?}"),
        }
        assert!(matches!(read_frame(&mut r).unwrap(), FrameRead::Eof));
    }

    #[test]
    fn bad_magic_is_a_framing_error() {
        let mut r = &[0xFFu8, 0xFF, 1, 1, 0, 0, 0, 0][..];
        assert!(matches!(
            read_frame(&mut r),
            Err(ServeError::Frame { detail }) if detail.contains("magic")
        ));
    }

    #[test]
    fn wrong_version_and_kind_are_framing_errors() {
        let mut r = &[0x57u8, 0x44, 9, 1, 0, 0, 0, 0][..];
        assert!(matches!(
            read_frame(&mut r),
            Err(ServeError::Frame { detail }) if detail.contains("version")
        ));
        let mut r = &[0x57u8, 0x44, VERSION, 42, 0, 0, 0, 0][..];
        assert!(matches!(
            read_frame(&mut r),
            Err(ServeError::Frame { detail }) if detail.contains("kind")
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut header = Vec::new();
        header.write_u16::<BigEndian>(MAGIC).unwrap();
        header.write_u8(VERSION).unwrap();
        header.write_u8(1).unwrap();
        header.write_u32::<BigEndian>(u32::MAX).unwrap();
        let mut r = &header[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(ServeError::Frame { detail }) if detail.contains("cap")
        ));
    }

    #[test]
    fn truncated_frames_are_io_errors_not_eof() {
        // Header promises 100 payload bytes; the stream dies after 3.
        let mut buf = Vec::new();
        buf.write_u16::<BigEndian>(MAGIC).unwrap();
        buf.write_u8(VERSION).unwrap();
        buf.write_u8(1).unwrap();
        buf.write_u32::<BigEndian>(100).unwrap();
        buf.extend_from_slice(b"abc");
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(ServeError::Io(_))));
    }
}
