//! The wire vocabulary: what requests and responses say.
//!
//! Payloads are externally-tagged JSON (`{"Offer": {...}}`), carried
//! inside the binary frames of [`crate::frame`]. JSON keeps the payloads
//! inspectable and versionable; the frame header keeps the stream
//! self-delimiting. Both directions reuse the workspace's core types
//! (`TenantId`, `TemplateId`, `Millis`, `MetricsSnapshot`) so a response
//! deserializes straight into what the in-process API would have
//! returned — the bit-identity e2e tests compare them directly.

use serde::{Deserialize, Serialize};
use wisedb_core::{MetricsSnapshot, Millis, TemplateId, TenantId};

use crate::error::{ServeError, ServeResult};

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Offer one arrival of `class` at virtual time `at` — the wire form
    /// of [`WorkloadService::offer_as`](wisedb_runtime::WorkloadService::offer_as).
    Offer {
        /// The arrival's SLA class.
        class: TenantId,
        /// The arriving query's template.
        template: TemplateId,
        /// The arrival's virtual-clock instant.
        at: Millis,
    },
    /// Ask for a [`MetricsSnapshot`] of the service right now.
    Metrics,
    /// Kick off a background retrain of `class`'s decision model with
    /// sampling seed `seed`; the server swaps the new model in (fresh
    /// caches) once training finishes, without stopping the loop.
    /// Training artifacts never cross the wire — they are rebuilt
    /// server-side.
    SwapModel {
        /// Which class's model to retrain.
        class: TenantId,
        /// Sampling seed for the replacement model.
        seed: u64,
    },
    /// Ask for the observability exposition: the `wisedb-obs` metrics
    /// registry (counters, gauges, histograms) rendered as a
    /// Prometheus-style text snapshot, plus live service gauges. Always
    /// answered; with tracing disabled the payload is just the header.
    Telemetry,
    /// Stop accepting connections and wind the server down.
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The offered arrival was admitted and planned onto the fleet.
    Admitted,
    /// The offered arrival was shed by admission control — graceful
    /// degradation under overload, a first-class answer rather than a
    /// dropped connection.
    Shed,
    /// The requested metrics snapshot.
    Metrics(MetricsSnapshot),
    /// The observability exposition text (see [`Request::Telemetry`]).
    Telemetry {
        /// Prometheus-style text exposition, newline-delimited.
        text: String,
    },
    /// The request was accepted (swap scheduled, shutdown begun).
    Ok,
    /// The request failed server-side. The connection stays open unless
    /// the failure was a framing violation.
    Error {
        /// Human-readable failure, usually a rendered `CoreError`.
        message: String,
    },
}

/// Encodes a request as a JSON payload.
pub fn encode_request(req: &Request) -> ServeResult<Vec<u8>> {
    encode(req)
}

/// Encodes a response as a JSON payload.
pub fn encode_response(resp: &Response) -> ServeResult<Vec<u8>> {
    encode(resp)
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> ServeResult<Request> {
    decode(payload)
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> ServeResult<Response> {
    decode(payload)
}

fn encode<T: Serialize>(value: &T) -> ServeResult<Vec<u8>> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| ServeError::Payload {
            detail: format!("encoding failed: {e}"),
        })
}

fn decode<T: Deserialize>(payload: &[u8]) -> ServeResult<T> {
    let text = std::str::from_utf8(payload).map_err(|e| ServeError::Payload {
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| ServeError::Payload {
        detail: format!("payload is not a valid message: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Offer {
                class: TenantId(2),
                template: TemplateId(1),
                at: Millis::from_secs(30),
            },
            Request::Metrics,
            Request::SwapModel {
                class: TenantId(0),
                seed: 4242,
            },
            Request::Telemetry,
            Request::Shutdown,
        ];
        for req in &reqs {
            let bytes = encode_request(req).unwrap();
            assert_eq!(&decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Admitted,
            Response::Shed,
            Response::Ok,
            Response::Telemetry {
                text: "# wisedb-obs exposition\nwisedb_up 1\n".into(),
            },
            Response::Error {
                message: "no such class".into(),
            },
        ];
        for resp in &resps {
            let bytes = encode_response(resp).unwrap();
            assert_eq!(&decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn garbage_payloads_are_payload_errors() {
        assert!(matches!(
            decode_request(b"\xFF\xFE not utf8"),
            Err(ServeError::Payload { detail }) if detail.contains("UTF-8")
        ));
        assert!(matches!(
            decode_request(b"{\"NoSuchVariant\": 3}"),
            Err(ServeError::Payload { .. })
        ));
        assert!(matches!(
            decode_response(b"[1, 2"),
            Err(ServeError::Payload { .. })
        ));
    }
}
