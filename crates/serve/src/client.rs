//! A blocking client for the serve wire protocol.
//!
//! One [`Client`] is one TCP connection speaking request/response in
//! lockstep — exactly what the load generator and the e2e tests need.
//! Typed helpers mirror the in-process [`WorkloadService`] surface:
//! [`Client::offer`] returns the same [`OfferOutcome`] the service
//! would, and [`Client::metrics`] the same `MetricsSnapshot`, so a wire
//! run can be compared bit-for-bit against an in-process run.
//!
//! [`WorkloadService`]: wisedb_runtime::WorkloadService

use std::net::{TcpStream, ToSocketAddrs};

use wisedb_core::{MetricsSnapshot, Millis, TemplateId, TenantId};
use wisedb_runtime::OfferOutcome;

use crate::error::{ServeError, ServeResult};
use crate::frame::{read_frame, write_frame, FrameKind, FrameRead};
use crate::wire::{decode_response, encode_request, Request, Response};

/// A blocking connection to a [`Server`](crate::Server).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and disables Nagle (requests are tiny and round-trip
    /// latency is the service-level objective).
    pub fn connect(addr: impl ToSocketAddrs) -> ServeResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and blocks for its response frame.
    pub fn request(&mut self, request: &Request) -> ServeResult<Response> {
        let payload = encode_request(request)?;
        write_frame(&mut self.stream, FrameKind::Request, &payload)?;
        match read_frame(&mut self.stream)? {
            FrameRead::Frame(FrameKind::Response, payload) => decode_response(&payload),
            FrameRead::Frame(FrameKind::Request, _) => Err(ServeError::Frame {
                detail: "server sent a request frame".to_string(),
            }),
            FrameRead::Eof | FrameRead::Idle => Err(ServeError::Disconnected),
        }
    }

    /// Offers one arrival; `Admitted`/`Shed` mirrors
    /// `WorkloadService::offer_as`, and a server-side failure (unknown
    /// class, inconsistent plan) comes back as [`ServeError::Remote`].
    pub fn offer(
        &mut self,
        class: TenantId,
        template: TemplateId,
        at: Millis,
    ) -> ServeResult<OfferOutcome> {
        match self.request(&Request::Offer {
            class,
            template,
            at,
        })? {
            Response::Admitted => Ok(OfferOutcome::Admitted),
            Response::Shed => Ok(OfferOutcome::Shed),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches a live metrics snapshot.
    pub fn metrics(&mut self) -> ServeResult<MetricsSnapshot> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the observability exposition: the server's `wisedb-obs`
    /// metrics registry rendered as Prometheus-style text.
    pub fn telemetry(&mut self) -> ServeResult<String> {
        match self.request(&Request::Telemetry)? {
            Response::Telemetry { text } => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Schedules a background retrain-and-swap of `class`'s model.
    pub fn swap_model(&mut self, class: TenantId, seed: u64) -> ServeResult<()> {
        match self.request(&Request::SwapModel { class, seed })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to stop accepting and wind down.
    pub fn shutdown(&mut self) -> ServeResult<()> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> ServeError {
    match response {
        Response::Error { message } => ServeError::Remote { message },
        other => ServeError::Payload {
            detail: format!("unexpected response {other:?}"),
        },
    }
}
