//! Typed errors for the serve layer.
//!
//! The error taxonomy mirrors the protocol layers: [`ServeError::Io`] for
//! the socket, [`ServeError::Frame`] for the fixed binary header,
//! [`ServeError::Payload`] for the JSON body, [`ServeError::Remote`] for
//! an error *frame* the server answered with, and
//! [`ServeError::Disconnected`] when the peer (or the scheduler thread
//! behind it) went away mid-conversation. None of these ever takes the
//! server process down: a request fails, the service keeps accepting.

use std::fmt;
use std::io;

/// Anything that can go wrong speaking the wire protocol.
#[derive(Debug)]
pub enum ServeError {
    /// The socket failed (connect, read, write).
    Io(io::Error),
    /// The fixed frame header was violated: wrong magic, unsupported
    /// version, unknown frame kind, or an oversized payload length.
    /// Framing errors are unrecoverable for the connection — the byte
    /// stream can no longer be trusted — so the server answers one error
    /// frame and closes.
    Frame {
        /// What the header got wrong.
        detail: String,
    },
    /// The frame arrived intact but its JSON payload did not decode.
    /// Payload errors are recoverable: the server answers an error frame
    /// and keeps the connection open for the next request.
    Payload {
        /// What the payload got wrong.
        detail: String,
    },
    /// The server answered with an error response (client side): the
    /// request failed server-side — unknown class, inconsistent plan —
    /// while the connection stays usable.
    Remote {
        /// The server's error message, verbatim.
        message: String,
    },
    /// The peer hung up (or the scheduler thread behind the server is
    /// gone) before answering.
    Disconnected,
}

/// Shorthand result for serve-layer operations.
pub type ServeResult<T> = Result<T, ServeError>;

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Frame { detail } => write!(f, "malformed frame: {detail}"),
            ServeError::Payload { detail } => write!(f, "malformed payload: {detail}"),
            ServeError::Remote { message } => write!(f, "server error: {message}"),
            ServeError::Disconnected => write!(f, "peer disconnected before answering"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_protocol_layer() {
        assert!(ServeError::Frame {
            detail: "bad magic".into()
        }
        .to_string()
        .contains("malformed frame"));
        assert!(ServeError::Payload {
            detail: "not json".into()
        }
        .to_string()
        .contains("malformed payload"));
        assert!(ServeError::Remote {
            message: "unknown class".into()
        }
        .to_string()
        .contains("unknown class"));
        let io: ServeError = io::Error::new(io::ErrorKind::ConnectionReset, "reset").into();
        assert!(io.to_string().contains("socket error"));
    }
}
