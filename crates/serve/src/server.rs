//! The TCP server: accept loop, connection workers, one scheduler thread.
//!
//! ```text
//!             TcpListener
//!                  │ accept
//!           ┌──────┴──────┐
//!           │ accept loop │──── shutdown: AtomicBool + self-connect wake
//!           └──────┬──────┘
//!                  │ execute(conn)
//!        ┌─────────┼─────────┐
//!   ┌────┴───┐ ┌───┴────┐ ┌──┴─────┐
//!   │worker 0│ │worker 1│ │worker N│   threadpool: frame I/O + JSON only
//!   └────┬───┘ └───┬────┘ └──┬─────┘
//!        └─────────┼─────────┘
//!                  │ mpsc<Command> (reply channel per request)
//!          ┌───────┴────────┐      ┌────────────────┐
//!          │scheduler thread│◄─────│ trainer threads │ ApplySwap
//!          │ WorkloadService│      │ (SwapModel)     │
//!          └────────────────┘      └────────────────┘
//! ```
//!
//! Only the scheduler thread touches the [`WorkloadService`]; connection
//! workers parse frames and wait on per-request reply channels, so the
//! virtual clock and every plan stays single-threaded and deterministic.
//! Each scheduler wakeup drains the queued backlog and coalesces
//! consecutive same-class offers into one `offer_batch_as` call (see
//! [`crate::batch`]) — request batching kicks in exactly when load
//! outruns planning. Overload never drops a connection: admission
//! control's verdict travels back as a first-class [`Response::Shed`].
//!
//! No `expect()`/`unwrap()` sits on the request path: malformed frames,
//! undecodable payloads, unknown classes, and inconsistent plans each
//! fail their own request with a typed [`Response::Error`] while the
//! server keeps accepting.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use threadpool::ThreadPool;
use wisedb_advisor::{DecisionModel, ModelGenerator, TrainingArtifacts};
use wisedb_core::TenantId;
use wisedb_runtime::{OfferOutcome, ShardConfig, ShardedService, WorkloadService};

use crate::batch::{coalesce, coalesce_tick, drain, Command, Group, OfferEntry, Work};
use crate::error::ServeError;
use crate::frame::{read_frame, write_frame, FrameKind, FrameRead};
use crate::wire::{decode_request, encode_response, Request, Response};

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub bind: String,
    /// Connection worker threads: how many clients can be mid-request at
    /// once. The scheduler itself is always exactly one thread.
    pub workers: usize,
    /// Read-timeout tick on accepted connections: how often an idle
    /// worker re-checks the shutdown flag.
    pub poll_interval: Duration,
    /// Scheduler shards. `1` (the default) keeps the classic
    /// single-threaded [`WorkloadService`] scheduler; `> 1` runs a
    /// [`ShardedService`] whose wakeups coalesce the whole multi-class
    /// backlog into one scheduling tick and plan its class groups in
    /// parallel on shard worker threads. Outputs are bit-identical either
    /// way (see `wisedb_runtime::shard`).
    pub shards: usize,
    /// Command-queue depth for offers (`0` = unbounded). When more than
    /// this many offers are already waiting on the scheduler, new ones
    /// are answered immediately with a typed [`Response::Shed`] frame
    /// instead of piling up — overload sheds load, it never grows the
    /// queue without bound. Control commands (metrics, telemetry, swap,
    /// shutdown) always bypass the gate.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 4,
            poll_interval: Duration::from_millis(50),
            shards: 1,
            queue_depth: 1024,
        }
    }
}

/// The offer-queue depth gate: a shared counter of offers sitting on the
/// scheduler's command queue. Connection workers [`try_push`] before
/// enqueueing an offer and answer `Shed` on overflow; the scheduler
/// [`release`]s what each wakeup drained. Lock-free and advisory — a
/// racing pair of workers may land `depth + workers` entries at worst,
/// which is exactly the slack a bounded channel's senders would have.
///
/// [`try_push`]: QueueGate::try_push
/// [`release`]: QueueGate::release
pub(crate) struct QueueGate {
    depth: usize,
    queued: AtomicUsize,
}

impl QueueGate {
    pub(crate) fn new(depth: usize) -> Self {
        QueueGate {
            depth,
            queued: AtomicUsize::new(0),
        }
    }

    /// Claims one queue slot; `false` means the queue is full and the
    /// offer must be shed. A zero depth never sheds.
    pub(crate) fn try_push(&self) -> bool {
        if self.depth == 0 {
            return true;
        }
        self.queued
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.depth).then_some(n + 1)
            })
            .is_ok()
    }

    /// Returns `n` drained offers' slots to the gate.
    pub(crate) fn release(&self, n: usize) {
        if self.depth != 0 && n != 0 {
            self.queued.fetch_sub(n, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    pub(crate) fn queued(&self) -> usize {
        self.queued.load(Ordering::Acquire)
    }
}

/// The serve layer's entry point: spawns the threads around a trained
/// [`WorkloadService`].
pub struct Server;

impl Server {
    /// Binds, spawns the accept loop, worker pool, and scheduler thread,
    /// and returns a handle. The service must already be trained; no
    /// model work happens on the connection path.
    pub fn spawn(service: WorkloadService, config: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(QueueGate::new(config.queue_depth));
        let (cmd_tx, cmd_rx) = channel::<Command>();
        // Finished retrains ride a channel of their own: if they shared
        // the command queue, the scheduler would hold a sender to itself
        // and recv() could never disconnect at shutdown.
        let (swap_tx, swap_rx) = channel::<FinishedSwap>();

        let engine = if config.shards > 1 {
            Engine::Sharded(service.into_sharded(ShardConfig::with_shards(config.shards)))
        } else {
            Engine::Single(service)
        };
        let scheduler = {
            let gate = Arc::clone(&gate);
            thread::Builder::new()
                .name("wisedb-scheduler".to_string())
                .spawn(move || scheduler_loop(engine, cmd_rx, swap_rx, swap_tx, gate))?
        };

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let cmd_tx = cmd_tx.clone();
            let config = config.clone();
            thread::Builder::new()
                .name("wisedb-accept".to_string())
                .spawn(move || accept_loop(listener, addr, cmd_tx, shutdown, config, gate))?
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            cmd_tx: Some(cmd_tx),
            accept: Some(accept),
            scheduler: Some(scheduler),
        })
    }
}

/// A running server: its address and its off switch.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    cmd_tx: Option<Sender<Command>>,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<WorkloadService>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `bind` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flips the shutdown flag and wakes the accept loop. Idempotent;
    /// also reachable over the wire via [`Request::Shutdown`].
    pub fn shutdown(&self) {
        request_shutdown(&self.shutdown, self.addr);
    }

    /// Shuts down and joins every thread, handing the (drained of
    /// threads, not of queries) service back for inspection — the e2e
    /// tests compare its snapshot against an in-process run.
    pub fn join(mut self) -> Option<WorkloadService> {
        self.wind_down()
    }

    fn wind_down(&mut self) -> Option<WorkloadService> {
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop's pool has joined its workers, so every cloned
        // sender is gone once ours drops — the scheduler's recv() then
        // disconnects and the thread returns the service.
        drop(self.cmd_tx.take());
        self.scheduler.take().and_then(|s| s.join().ok())
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.wind_down();
    }
}

/// Sets the flag, then self-connects so a blocked `accept()` observes it.
fn request_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

fn accept_loop(
    listener: TcpListener,
    addr: SocketAddr,
    cmd_tx: Sender<Command>,
    shutdown: Arc<AtomicBool>,
    config: ServeConfig,
    gate: Arc<QueueGate>,
) {
    let pool = ThreadPool::new(config.workers.max(1));
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shutdown.load(Ordering::SeqCst) {
                    break; // the wake connection, or a late client
                }
                let cmd_tx = cmd_tx.clone();
                let shutdown = Arc::clone(&shutdown);
                let poll = config.poll_interval;
                let gate = Arc::clone(&gate);
                pool.execute(move || handle_connection(stream, addr, cmd_tx, shutdown, poll, gate));
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (EMFILE, aborted handshake):
                // keep serving.
            }
        }
    }
    // Dropping the pool joins the workers; their cloned senders go with
    // them, letting the scheduler thread observe disconnect.
    drop(pool);
}

/// Process-wide connection id sequence: every accepted connection gets a
/// unique id that tags its observability spans and failure events, so a
/// trace or event log can be filtered to one client.
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// One connection's lifetime: read frames, dispatch, answer — until the
/// client hangs up, the stream turns untrustworthy, or shutdown.
///
/// **No failure on this path is silent**: framing violations, dropped
/// (truncated/dead) connections, and per-request errors each emit a
/// `wisedb-obs` event carrying this connection's id before the previous
/// behavior (answer-and-close, or just close) proceeds unchanged.
fn handle_connection(
    stream: TcpStream,
    addr: SocketAddr,
    cmd_tx: Sender<Command>,
    shutdown: Arc<AtomicBool>,
    poll: Duration,
    gate: Arc<QueueGate>,
) {
    let conn = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed);
    wisedb_obs::counter_add("wisedb_serve_connections_total", 1);
    let _ = stream.set_nodelay(true);
    // The read timeout is the shutdown poll tick: an idle connection
    // re-checks the flag instead of pinning its worker forever.
    let _ = stream.set_read_timeout(Some(poll));
    let mut stream = stream;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            // The idle-timeout drop path: the poll tick observed the
            // shutdown flag between frames.
            wisedb_obs::instant("serve.connection_drop")
                .attr_u64("conn", conn)
                .attr_str("reason", "server shutdown while connection idle")
                .emit();
            return;
        }
        match read_frame(&mut stream) {
            Ok(FrameRead::Idle) => continue,
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Frame(FrameKind::Request, payload)) => {
                let decoded = {
                    let mut span = wisedb_obs::span("serve.decode");
                    span.attr_u64("conn", conn);
                    span.attr_u64("bytes", payload.len() as u64);
                    decode_request(&payload)
                };
                match decoded {
                    Ok(Request::Shutdown) => {
                        // Acknowledge first so the client sees the answer,
                        // then wind the listener down.
                        let _ = respond(&mut stream, &Response::Ok, conn);
                        request_shutdown(&shutdown, addr);
                        return;
                    }
                    Ok(request) => {
                        let response = {
                            let mut span = wisedb_obs::span("serve.dispatch");
                            span.attr_u64("conn", conn);
                            dispatch(request, &cmd_tx, &gate)
                        };
                        // A per-request failure (unknown class, template
                        // outside the spec, inconsistent plan) answers as
                        // a typed error frame — and is logged with the
                        // connection that suffered it.
                        if let Response::Error { message } = &response {
                            wisedb_obs::counter_add("wisedb_serve_request_errors_total", 1);
                            wisedb_obs::instant("serve.request_error")
                                .attr_u64("conn", conn)
                                .attr_str("message", message.clone())
                                .emit();
                        }
                        if respond(&mut stream, &response, conn).is_err() {
                            return;
                        }
                    }
                    // Payload-level failure: this request fails, the
                    // connection (and its framing) is still sound.
                    Err(err) => {
                        let message = err.to_string();
                        wisedb_obs::counter_add("wisedb_serve_request_errors_total", 1);
                        wisedb_obs::instant("serve.request_error")
                            .attr_u64("conn", conn)
                            .attr_str("message", message.clone())
                            .emit();
                        let response = Response::Error { message };
                        if respond(&mut stream, &response, conn).is_err() {
                            return;
                        }
                    }
                }
            }
            // A client must not send Response frames.
            Ok(FrameRead::Frame(FrameKind::Response, _)) => {
                emit_framing_violation(conn, "client sent a response frame");
                let response = Response::Error {
                    message: "protocol violation: client sent a response frame".to_string(),
                };
                let _ = respond(&mut stream, &response, conn);
                return;
            }
            // Framing violation: answer once, then close — the byte
            // stream can no longer be trusted.
            Err(ServeError::Frame { detail }) => {
                emit_framing_violation(conn, &detail);
                let response = Response::Error {
                    message: format!("malformed frame: {detail}"),
                };
                let _ = respond(&mut stream, &response, conn);
                return;
            }
            // Truncated frame or dead socket: nothing to answer — but
            // the drop is on the record.
            Err(err) => {
                wisedb_obs::counter_add("wisedb_serve_connection_drops_total", 1);
                wisedb_obs::instant("serve.connection_drop")
                    .attr_u64("conn", conn)
                    .attr_str("reason", err.to_string())
                    .emit();
                return;
            }
        }
    }
}

fn emit_framing_violation(conn: u64, detail: &str) {
    wisedb_obs::counter_add("wisedb_serve_framing_violations_total", 1);
    wisedb_obs::instant("serve.framing_violation")
        .attr_u64("conn", conn)
        .attr_str("detail", detail)
        .emit();
}

fn respond(stream: &mut TcpStream, response: &Response, conn: u64) -> io::Result<()> {
    let mut span = wisedb_obs::span("serve.encode");
    span.attr_u64("conn", conn);
    let payload = encode_response(response).map_err(io::Error::other)?;
    write_frame(stream, FrameKind::Response, &payload)
}

/// Ships a request to the scheduler thread and waits for its answer.
/// Offers pass the queue-depth gate first: a full scheduler queue answers
/// [`Response::Shed`] right here, without touching the scheduler — the
/// overload signal a client sees is the same typed frame admission
/// control uses, so backpressure needs no new wire vocabulary.
fn dispatch(request: Request, cmd_tx: &Sender<Command>, gate: &QueueGate) -> Response {
    let (reply, reply_rx) = channel();
    let command = match request {
        Request::Offer {
            class,
            template,
            at,
        } => {
            if !gate.try_push() {
                wisedb_obs::counter_add("wisedb_serve_queue_shed_total", 1);
                wisedb_obs::instant("serve.queue_shed")
                    .attr_u64("class", class.index() as u64)
                    .emit();
                return Response::Shed;
            }
            Command::Offer {
                class,
                template,
                at,
                reply,
                queued: wisedb_obs::now_if_spans(),
            }
        }
        Request::Metrics => Command::Metrics { reply },
        Request::SwapModel { class, seed } => Command::Swap { class, seed, reply },
        Request::Telemetry => Command::Telemetry { reply },
        // Handled by the connection loop before dispatch.
        Request::Shutdown => return Response::Ok,
    };
    if cmd_tx.send(command).is_err() {
        return scheduler_gone();
    }
    match reply_rx.recv() {
        Ok(response) => response,
        Err(_) => scheduler_gone(),
    }
}

fn scheduler_gone() -> Response {
    Response::Error {
        message: "scheduler is shutting down".to_string(),
    }
}

/// A background retrain's result, waiting to be swapped in by the
/// scheduler thread between wakeups.
struct FinishedSwap {
    class: TenantId,
    model: Box<DecisionModel>,
    artifacts: Box<TrainingArtifacts>,
}

/// What the scheduler thread runs: the classic single-threaded service,
/// or its tenant-partitioned form. The engine choice changes *where*
/// plans are computed (inline vs. shard workers) and how a backlog
/// coalesces (per-class runs vs. one multi-class tick) — never the
/// outputs, which are bit-identical by the sharded service's design.
enum Engine {
    /// One `MultiScheduler`, planning inline ([`ServeConfig::shards`]
    /// `<= 1`).
    Single(WorkloadService),
    /// N shard workers planning in parallel against epoch snapshots.
    Sharded(ShardedService),
}

impl Engine {
    fn classes(&self) -> &[wisedb_core::SlaClass] {
        match self {
            Engine::Single(s) => s.classes(),
            Engine::Sharded(s) => s.classes(),
        }
    }

    fn snapshot(&self) -> wisedb_core::MetricsSnapshot {
        match self {
            Engine::Single(s) => s.snapshot(),
            Engine::Sharded(s) => s.snapshot(),
        }
    }

    fn swap_model(
        &mut self,
        class: TenantId,
        model: DecisionModel,
        artifacts: TrainingArtifacts,
    ) -> wisedb_core::CoreResult<()> {
        match self {
            Engine::Single(s) => s.swap_model(class, model, artifacts),
            Engine::Sharded(s) => s.swap_model(class, model, artifacts),
        }
    }

    fn into_service(self) -> WorkloadService {
        match self {
            Engine::Single(s) => s,
            Engine::Sharded(s) => s.into_service(),
        }
    }
}

/// The single thread that owns the service. Each wakeup applies any
/// finished model swaps (so the next arrival plans on the new model),
/// then drains the backlog, coalesces it, and executes group by group.
/// It exits (handing the service back) when every command sender is
/// gone — the swap channel is only ever `try_recv`'d, so holding its
/// sender here cannot wedge shutdown.
///
/// A [`Engine::Single`] wakeup coalesces consecutive same-class offers
/// and plans them inline; a [`Engine::Sharded`] wakeup folds the whole
/// drained backlog (up to the next control command) into one scheduling
/// tick whose class groups plan in parallel on the shard workers. Either
/// way, every drained offer's gate slot is released before the wakeup
/// plans, so admission verdicts — not queue slots — are what throttles a
/// steady overload.
fn scheduler_loop(
    mut engine: Engine,
    cmd_rx: Receiver<Command>,
    swap_rx: Receiver<FinishedSwap>,
    swap_tx: Sender<FinishedSwap>,
    gate: Arc<QueueGate>,
) -> WorkloadService {
    while let Ok(first) = cmd_rx.recv() {
        while let Ok(swap) = swap_rx.try_recv() {
            // A failed apply (model/goal mismatch) drops the retrained
            // model; the serving model stays.
            let _ = engine.swap_model(swap.class, *swap.model, *swap.artifacts);
        }
        let mut tick = wisedb_obs::span("serve.tick");
        let backlog = drain(&cmd_rx, first);
        tick.attr_u64("drained", backlog.len() as u64);
        let offers_drained = backlog
            .iter()
            .filter(|c| matches!(c, Command::Offer { .. }))
            .count();
        gate.release(offers_drained);
        if matches!(engine, Engine::Sharded(_)) {
            let work = coalesce_tick(backlog);
            tick.attr_u64("groups", work.len() as u64);
            for item in work {
                match item {
                    Work::Tick(groups) => {
                        if let Engine::Sharded(service) = &mut engine {
                            handle_tick(service, groups);
                        }
                    }
                    Work::Other(command) => handle_command(&mut engine, command, &swap_tx),
                }
            }
        } else {
            let groups = coalesce(backlog);
            tick.attr_u64("groups", groups.len() as u64);
            for group in groups {
                match group {
                    Group::Offers { class, offers } => {
                        if let Engine::Single(service) = &mut engine {
                            handle_offers(service, class, offers);
                        }
                    }
                    Group::Other(command) => handle_command(&mut engine, command, &swap_tx),
                }
            }
        }
    }
    engine.into_service()
}

/// One coalesced burst: pre-validate each offer individually (a bad
/// request must not fail its batch neighbors), then plan the valid rest
/// with a single `offer_batch_as` call and route each outcome to its
/// reply channel. If planning itself fails, the service has rolled the
/// burst back — the whole group shares that fate.
fn handle_offers(service: &mut WorkloadService, class: TenantId, offers: Vec<OfferEntry>) {
    // How long each offer sat on the command queue before this wakeup
    // picked it up. Stamped at dispatch only while span tracing is on;
    // rendered as a Chrome `X` (complete) event so the retroactive
    // timestamps never violate B/E nesting.
    for offer in &offers {
        if let Some(queued) = offer.queued {
            wisedb_obs::observe_us(
                "wisedb_serve_queue_wait_us",
                queued.elapsed().as_micros() as u64,
            );
            wisedb_obs::complete("serve.queue_wait", queued)
                .attr_u64("class", class.index() as u64)
                .emit();
        }
    }
    let Some(sla) = service.classes().get(class.index()).cloned() else {
        let message = format!(
            "unknown tenant class {class:?} (service has {} classes)",
            service.classes().len()
        );
        for offer in offers {
            let _ = offer.reply.send(Response::Error {
                message: message.clone(),
            });
        }
        return;
    };
    let num_templates = service.spec().num_templates();

    let mut valid: Vec<OfferEntry> = Vec::with_capacity(offers.len());
    for offer in offers {
        if offer.template.index() >= num_templates {
            let _ = offer.reply.send(Response::Error {
                message: format!(
                    "{} is outside the spec ({num_templates} templates)",
                    offer.template
                ),
            });
        } else if !sla.allows(offer.template) {
            let _ = offer.reply.send(Response::Error {
                message: format!("{} is not in class {:?}'s subset", offer.template, class),
            });
        } else {
            valid.push(offer);
        }
    }
    if valid.is_empty() {
        return;
    }

    let batch: Vec<_> = valid.iter().map(|o| (o.template, o.at)).collect();
    let planned = {
        let mut span = wisedb_obs::span("serve.plan");
        span.attr_u64("class", class.index() as u64);
        span.attr_u64("batch", batch.len() as u64);
        service.offer_batch_as(class, &batch)
    };
    match planned {
        Ok(outcomes) => {
            for (offer, outcome) in valid.into_iter().zip(outcomes) {
                let response = match outcome {
                    OfferOutcome::Admitted => Response::Admitted,
                    OfferOutcome::Shed => Response::Shed,
                };
                let _ = offer.reply.send(response);
            }
        }
        // The service rolled the burst back; every member fails with the
        // same typed reason, and the server keeps accepting.
        Err(err) => {
            let message = err.to_string();
            for offer in valid {
                let _ = offer.reply.send(Response::Error {
                    message: message.clone(),
                });
            }
        }
    }
}

/// One sharded scheduling tick: the wakeup's whole multi-class backlog,
/// pre-validated per offer exactly like [`handle_offers`] (a bad request
/// must not fail its batch neighbors), then planned in parallel with a
/// single [`ShardedService::offer_tick`] fan-out. Per-group failures
/// answer that group's offers with the typed error; the other groups'
/// verdicts stand — mirroring how one class's failed burst never touched
/// another class's on the unsharded path.
fn handle_tick(service: &mut ShardedService, tick: Vec<(TenantId, Vec<OfferEntry>)>) {
    let num_templates = service.spec().num_templates();
    let mut valid: Vec<(TenantId, Vec<OfferEntry>)> = Vec::with_capacity(tick.len());
    for (class, offers) in tick {
        for offer in &offers {
            if let Some(queued) = offer.queued {
                wisedb_obs::observe_us(
                    "wisedb_serve_queue_wait_us",
                    queued.elapsed().as_micros() as u64,
                );
                wisedb_obs::complete("serve.queue_wait", queued)
                    .attr_u64("class", class.index() as u64)
                    .emit();
            }
        }
        let Some(sla) = service.classes().get(class.index()).cloned() else {
            let message = format!(
                "unknown tenant class {class:?} (service has {} classes)",
                service.classes().len()
            );
            for offer in offers {
                let _ = offer.reply.send(Response::Error {
                    message: message.clone(),
                });
            }
            continue;
        };
        let mut entries: Vec<OfferEntry> = Vec::with_capacity(offers.len());
        for offer in offers {
            if offer.template.index() >= num_templates {
                let _ = offer.reply.send(Response::Error {
                    message: format!(
                        "{} is outside the spec ({num_templates} templates)",
                        offer.template
                    ),
                });
            } else if !sla.allows(offer.template) {
                let _ = offer.reply.send(Response::Error {
                    message: format!("{} is not in class {:?}'s subset", offer.template, class),
                });
            } else {
                entries.push(offer);
            }
        }
        if !entries.is_empty() {
            valid.push((class, entries));
        }
    }
    if valid.is_empty() {
        return;
    }

    let groups: Vec<_> = valid
        .iter()
        .map(|(class, entries)| (*class, entries.iter().map(|e| (e.template, e.at)).collect()))
        .collect();
    let planned = {
        let mut span = wisedb_obs::span("serve.plan");
        span.attr_u64("groups", groups.len() as u64);
        span.attr_u64(
            "batch",
            valid.iter().map(|(_, e)| e.len() as u64).sum::<u64>(),
        );
        service.offer_tick(&groups)
    };
    match planned {
        Ok(results) => {
            for ((_, entries), result) in valid.into_iter().zip(results) {
                match result {
                    Ok(outcomes) => {
                        for (offer, outcome) in entries.into_iter().zip(outcomes) {
                            let response = match outcome {
                                OfferOutcome::Admitted => Response::Admitted,
                                OfferOutcome::Shed => Response::Shed,
                            };
                            let _ = offer.reply.send(response);
                        }
                    }
                    Err(err) => {
                        let message = err.to_string();
                        for offer in entries {
                            let _ = offer.reply.send(Response::Error {
                                message: message.clone(),
                            });
                        }
                    }
                }
            }
        }
        // Infrastructure failure (a dead shard worker): every offer of
        // the tick fails with the same typed reason.
        Err(err) => {
            let message = err.to_string();
            for (_, entries) in valid {
                for offer in entries {
                    let _ = offer.reply.send(Response::Error {
                        message: message.clone(),
                    });
                }
            }
        }
    }
}

fn handle_command(engine: &mut Engine, command: Command, swap_tx: &Sender<FinishedSwap>) {
    match command {
        Command::Metrics { reply } => {
            let _ = reply.send(Response::Metrics(engine.snapshot()));
        }
        Command::Telemetry { reply } => {
            // Refresh the live-service gauges right before rendering so
            // the exposition reflects this instant, not the last event.
            if wisedb_obs::enabled(wisedb_obs::Level::Counters) {
                let snapshot = engine.snapshot();
                wisedb_obs::gauge_set("wisedb_virtual_now_ms", snapshot.at.as_millis() as f64);
                wisedb_obs::gauge_set("wisedb_fleet_vms", snapshot.vms_in_flight as f64);
                wisedb_obs::gauge_set("wisedb_in_flight_queries", snapshot.in_flight as f64);
            }
            let _ = reply.send(Response::Telemetry {
                text: wisedb_obs::telemetry_text(),
            });
        }
        Command::Swap { class, seed, reply } => {
            let _ = reply.send(schedule_retrain(engine, class, seed, swap_tx));
        }
        // Offers are grouped before they get here.
        Command::Offer { reply, .. } => {
            let _ = reply.send(Response::Error {
                message: "internal: offer escaped coalescing".to_string(),
            });
        }
    }
}

/// Validates the class, then trains a replacement model on a background
/// thread; the trainer posts the result onto the swap channel, and the
/// scheduler thread applies it between wakeups. Training artifacts never
/// cross the wire — they are rebuilt here, server-side.
///
/// The trainer starts from the serving scheduler's warm state
/// ([`OnlineScheduler::warm_start`]): sample signatures already solved for
/// the serving model are replayed from the solve cache, so a retrain on an
/// unchanged template mix performs zero A* searches. A different `seed`
/// only changes which signatures are *drawn* — overlap with the cache is
/// still served for free.
fn schedule_retrain(
    engine: &Engine,
    class: TenantId,
    seed: u64,
    swap_tx: &Sender<FinishedSwap>,
) -> Response {
    let scheduler = match engine {
        Engine::Single(s) => s.scheduler(class),
        Engine::Sharded(s) => s.scheduler(class),
    };
    let scheduler = match scheduler {
        Ok(s) => s,
        Err(err) => {
            return Response::Error {
                message: err.to_string(),
            }
        }
    };
    let spec = scheduler.base_model().spec_handle().clone();
    let warm = scheduler.warm_start();
    let goal = engine.classes()[class.index()].goal.clone();
    let training = match engine {
        Engine::Single(s) => s.config(),
        Engine::Sharded(s) => s.config(),
    }
    .online
    .training
    .clone()
    .with_seed(seed);
    let swap_tx = swap_tx.clone();
    let spawned = thread::Builder::new()
        .name(format!("wisedb-trainer-{}", class.index()))
        .spawn(move || {
            if let Ok((model, artifacts)) =
                ModelGenerator::new(spec, goal, training).retrain_from(&warm)
            {
                let _ = swap_tx.send(FinishedSwap {
                    class,
                    model: Box::new(model),
                    artifacts: Box::new(artifacts),
                });
            }
        });
    match spawned {
        Ok(_) => Response::Ok,
        Err(err) => Response::Error {
            message: format!("could not start trainer thread: {err}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_gate_sheds_exactly_past_its_depth_and_recovers_on_release() {
        let gate = QueueGate::new(3);
        assert!(gate.try_push());
        assert!(gate.try_push());
        assert!(gate.try_push());
        assert!(!gate.try_push(), "the fourth offer overflows depth 3");
        assert_eq!(gate.queued(), 3);
        gate.release(2);
        assert!(gate.try_push());
        assert!(gate.try_push());
        assert!(!gate.try_push());
        // Releasing everything drained restores the full budget.
        gate.release(3);
        assert_eq!(gate.queued(), 0);
    }

    #[test]
    fn zero_depth_gate_never_sheds() {
        let gate = QueueGate::new(0);
        for _ in 0..10_000 {
            assert!(gate.try_push());
        }
        gate.release(10_000);
        assert_eq!(gate.queued(), 0);
    }

    #[test]
    fn queue_gate_is_exact_under_contention() {
        let gate = Arc::new(QueueGate::new(64));
        let admitted: Vec<usize> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let gate = Arc::clone(&gate);
                    scope.spawn(move || (0..100).filter(|_| gate.try_push()).count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Claims are atomic: exactly `depth` of the 400 racing pushes win.
        assert_eq!(admitted.iter().sum::<usize>(), 64);
        assert_eq!(gate.queued(), 64);
    }
}
