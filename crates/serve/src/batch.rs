//! Request batching: the scheduler thread's command queue and the
//! drain-and-coalesce policy that turns a backlog into few plan calls.
//!
//! Connection workers translate wire requests into [`Command`]s and push
//! them onto one mpsc queue; a single scheduler thread owns the
//! `WorkloadService` and consumes them. When load outruns the scheduler,
//! commands pile up behind the in-progress plan — so each wakeup
//! [`drain`]s everything already queued and [`coalesce`]s *consecutive
//! same-class offers* into one group, which the server answers with one
//! `offer_batch_as` call (one `plan_arrivals`) instead of one per
//! request. Order is never reshuffled: coalescing only merges neighbors,
//! so cross-class interleavings plan in arrival order and the k=1 case
//! is bit-identical to the unbatched path.
//!
//! This module is pure queue-and-group logic — no sockets — so the
//! coalescing policy is unit-tested in isolation.

use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

use wisedb_core::{Millis, TemplateId, TenantId};

use crate::wire::Response;

/// How many commands one wakeup may drain into a single batch. Bounds
/// both the coalesced burst size and how long early requests wait for
/// stragglers draining behind them.
pub const MAX_DRAIN: usize = 64;

/// One unit of work for the scheduler thread.
pub enum Command {
    /// Offer an arrival; the outcome goes back over `reply`.
    Offer {
        /// The arrival's SLA class.
        class: TenantId,
        /// The arriving query's template.
        template: TemplateId,
        /// The arrival's virtual-clock instant.
        at: Millis,
        /// Where the connection worker awaits the answer.
        reply: Sender<Response>,
        /// Wall-clock enqueue stamp, present only while span tracing is
        /// on — the scheduler turns it into a `serve.queue_wait` span
        /// when it picks the offer up.
        queued: Option<Instant>,
    },
    /// Snapshot the metrics.
    Metrics {
        /// Where the connection worker awaits the answer.
        reply: Sender<Response>,
    },
    /// Render the observability exposition ([`crate::wire::Request::Telemetry`]).
    Telemetry {
        /// Where the connection worker awaits the answer.
        reply: Sender<Response>,
    },
    /// Validate and schedule a background retrain of `class`'s model.
    /// (The finished model comes back on a separate swap channel — see
    /// `server::FinishedSwap` — which the scheduler polls between
    /// wakeups, so the command queue never holds a sender to itself.)
    Swap {
        /// Which class's model to retrain.
        class: TenantId,
        /// Sampling seed for the replacement model.
        seed: u64,
        /// Answered as soon as the retrain is scheduled (or rejected).
        reply: Sender<Response>,
    },
}

/// One offer inside a coalesced group, reply channel and all.
pub struct OfferEntry {
    /// The arriving query's template.
    pub template: TemplateId,
    /// The arrival's virtual-clock instant.
    pub at: Millis,
    /// Where the connection worker awaits the answer.
    pub reply: Sender<Response>,
    /// Wall-clock enqueue stamp (only while span tracing is on).
    pub queued: Option<Instant>,
}

/// What one scheduler wakeup executes: either a coalesced run of offers
/// (one plan call) or a single non-offer command.
pub enum Group {
    /// Consecutive same-class offers, planned together.
    Offers {
        /// The shared SLA class.
        class: TenantId,
        /// The arrivals, in queue order.
        offers: Vec<OfferEntry>,
    },
    /// Any other command, executed on its own.
    Other(Command),
}

/// Drains the queue without blocking: `first` (already received) plus
/// whatever else is waiting, up to [`MAX_DRAIN`] commands.
pub fn drain(rx: &Receiver<Command>, first: Command) -> Vec<Command> {
    let mut commands = vec![first];
    while commands.len() < MAX_DRAIN {
        match rx.try_recv() {
            Ok(cmd) => commands.push(cmd),
            Err(_) => break,
        }
    }
    commands
}

/// What one *sharded* scheduler wakeup executes: every offer between
/// non-offer commands folds into one scheduling tick (grouped per class),
/// so a multi-tenant backlog becomes one parallel `offer_tick` fan-out
/// instead of one plan call per class run.
pub enum Work {
    /// All offers up to the next non-offer command, grouped by class in
    /// first-appearance order. Within a class, queue order is preserved.
    Tick(Vec<(TenantId, Vec<OfferEntry>)>),
    /// Any other command, executed on its own.
    Other(Command),
}

/// The sharded counterpart of [`coalesce`]: adjacent offers merge into
/// one tick *across* class changes (per-class groups in first-appearance
/// order), and non-offer commands still act as barriers. The relative
/// order of same-class offers is preserved exactly; cross-class order
/// within one tick is resolved by the sharded service's admit phase,
/// which walks groups in this first-appearance order.
pub fn coalesce_tick(commands: Vec<Command>) -> Vec<Work> {
    let mut work: Vec<Work> = Vec::new();
    for cmd in commands {
        match cmd {
            Command::Offer {
                class,
                template,
                at,
                reply,
                queued,
            } => {
                let entry = OfferEntry {
                    template,
                    at,
                    reply,
                    queued,
                };
                if !matches!(work.last(), Some(Work::Tick(_))) {
                    work.push(Work::Tick(Vec::new()));
                }
                let Some(Work::Tick(groups)) = work.last_mut() else {
                    unreachable!("a tick was just pushed");
                };
                match groups.iter_mut().find(|(c, _)| *c == class) {
                    Some((_, entries)) => entries.push(entry),
                    None => groups.push((class, vec![entry])),
                }
            }
            other => work.push(Work::Other(other)),
        }
    }
    work
}

/// Groups consecutive same-class offers; everything else passes through
/// in place. Queue order is preserved exactly.
pub fn coalesce(commands: Vec<Command>) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    for cmd in commands {
        match cmd {
            Command::Offer {
                class,
                template,
                at,
                reply,
                queued,
            } => {
                let entry = OfferEntry {
                    template,
                    at,
                    reply,
                    queued,
                };
                match groups.last_mut() {
                    Some(Group::Offers {
                        class: open_class,
                        offers,
                    }) if *open_class == class => offers.push(entry),
                    _ => groups.push(Group::Offers {
                        class,
                        offers: vec![entry],
                    }),
                }
            }
            other => groups.push(Group::Other(other)),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn offer(class: u32, template: u32, at_secs: u64) -> (Command, Receiver<Response>) {
        let (reply, rx) = channel();
        (
            Command::Offer {
                class: TenantId(class),
                template: TemplateId(template),
                at: Millis::from_secs(at_secs),
                reply,
                queued: None,
            },
            rx,
        )
    }

    #[test]
    fn consecutive_same_class_offers_merge_into_one_group() {
        let cmds = vec![offer(0, 0, 1).0, offer(0, 1, 2).0, offer(0, 0, 3).0];
        let groups = coalesce(cmds);
        assert_eq!(groups.len(), 1);
        match &groups[0] {
            Group::Offers { class, offers } => {
                assert_eq!(*class, TenantId(0));
                assert_eq!(offers.len(), 3);
                // Queue order survives coalescing.
                let ats: Vec<u64> = offers.iter().map(|o| o.at.as_millis() / 1000).collect();
                assert_eq!(ats, vec![1, 2, 3]);
            }
            Group::Other(_) => panic!("expected a coalesced offer group"),
        }
    }

    #[test]
    fn class_changes_and_interleaved_commands_split_groups() {
        let (metrics_reply, _keep) = channel();
        let cmds = vec![
            offer(0, 0, 1).0,
            offer(1, 0, 2).0, // class change: new group
            offer(1, 1, 3).0,
            Command::Metrics {
                reply: metrics_reply,
            }, // interleaved non-offer: barrier
            offer(1, 0, 4).0, // same class as before the barrier, but a new group
        ];
        let groups = coalesce(cmds);
        assert_eq!(groups.len(), 4);
        let sizes: Vec<usize> = groups
            .iter()
            .map(|g| match g {
                Group::Offers { offers, .. } => offers.len(),
                Group::Other(_) => 0,
            })
            .collect();
        assert_eq!(sizes, vec![1, 2, 0, 1]);
    }

    #[test]
    fn tick_coalescing_merges_across_class_changes_with_barriers() {
        let (metrics_reply, _keep) = channel();
        let cmds = vec![
            offer(0, 0, 1).0,
            offer(1, 0, 2).0, // class change: same tick, new group
            offer(0, 1, 3).0, // back to class 0: appended to its group
            Command::Metrics {
                reply: metrics_reply,
            }, // barrier
            offer(1, 0, 4).0, // a fresh tick after the barrier
        ];
        let work = coalesce_tick(cmds);
        assert_eq!(work.len(), 3);
        match &work[0] {
            Work::Tick(groups) => {
                // First-appearance class order; same-class queue order kept.
                assert_eq!(groups.len(), 2);
                assert_eq!(groups[0].0, TenantId(0));
                let ats: Vec<u64> = groups[0]
                    .1
                    .iter()
                    .map(|o| o.at.as_millis() / 1000)
                    .collect();
                assert_eq!(ats, vec![1, 3]);
                assert_eq!(groups[1].0, TenantId(1));
                assert_eq!(groups[1].1.len(), 1);
            }
            Work::Other(_) => panic!("expected the merged tick first"),
        }
        assert!(matches!(&work[1], Work::Other(Command::Metrics { .. })));
        match &work[2] {
            Work::Tick(groups) => {
                assert_eq!(groups.len(), 1);
                assert_eq!(groups[0].0, TenantId(1));
            }
            Work::Other(_) => panic!("expected a second tick after the barrier"),
        }
    }

    #[test]
    fn drain_pulls_the_backlog_without_blocking() {
        let (tx, rx) = channel();
        let (first, _r0) = offer(0, 0, 1);
        let backlog: Vec<Receiver<Response>> = (0..5)
            .map(|i| {
                let (cmd, r) = offer(0, 0, 2 + i);
                tx.send(cmd).unwrap();
                r
            })
            .collect();
        let commands = drain(&rx, first);
        assert_eq!(commands.len(), 6);
        // The queue is empty now; drain must not have blocked waiting for more.
        assert!(rx.try_recv().is_err());
        drop(backlog);
    }

    #[test]
    fn drain_respects_the_batch_cap() {
        let (tx, rx) = channel();
        let keep: Vec<Receiver<Response>> = (0..MAX_DRAIN + 10)
            .map(|i| {
                let (cmd, r) = offer(0, 0, i as u64);
                tx.send(cmd).unwrap();
                r
            })
            .collect();
        let (first, _r0) = offer(0, 0, 0);
        let commands = drain(&rx, first);
        assert_eq!(commands.len(), MAX_DRAIN);
        // The overflow is still queued for the next wakeup.
        assert!(rx.try_recv().is_ok());
        drop(keep);
    }
}
