//! The TPC-H-like template catalog and VM menus used by the experiments.
//!
//! The paper's testbed (§7.1) runs TPC-H templates 1–10 against a 10 GB
//! PostgreSQL database on `t2.medium` instances, measuring response times of
//! 2–6 minutes with a 4-minute mean. That hardware and dataset are not
//! available here, and WiSeDB only ever consumes per-template latencies — so
//! this module provides a synthetic catalog calibrated to the same published
//! numbers: `n` templates with latencies evenly covering 120–360 seconds
//! (mean 240 s), the same instance prices, and a `t2.small` variant where
//! "low-RAM" templates run at near parity and RAM-hungry ones degrade, as
//! the paper observed.

use wisedb_core::{Millis, Money, QueryTemplate, VmType, WorkloadSpec};

/// Latency of template `i` out of `n` on the reference (`t2.medium`) VM:
/// evenly spaced over 120–360 seconds.
pub fn reference_latency(i: usize, n: usize) -> Millis {
    if n <= 1 {
        return Millis::from_secs(240);
    }
    let span = 240.0 * i as f64 / (n - 1) as f64;
    Millis::from_secs_f64(120.0 + span)
}

/// The paper's default setup: `n` TPC-H-like templates on a single
/// `t2.medium` VM type. The experiments use `n = 10`; Figure 14 scales
/// `n` to 5/10/15/20.
pub fn tpch_like(n: usize) -> WorkloadSpec {
    assert!(n >= 1, "need at least one template");
    let templates = (0..n)
        .map(|i| QueryTemplate::single(format!("TPC-H-like Q{}", i + 1), reference_latency(i, n)))
        .collect();
    WorkloadSpec::new(templates, vec![VmType::t2_medium()])
        .expect("catalog construction is always valid")
}

/// The §7.2 multi-VM-type setup: `t2.medium` plus the half-price
/// `t2.small`. Even-indexed templates model low-RAM queries ("similar
/// performance on t2.medium and t2.small": 1.05x); odd-indexed templates
/// are RAM-hungry and slow down 2x on the small instance.
pub fn tpch_like_two_types(n: usize) -> WorkloadSpec {
    assert!(n >= 1, "need at least one template");
    let templates = (0..n)
        .map(|i| {
            let medium = reference_latency(i, n);
            let small = if i % 2 == 0 {
                medium.mul_f64(1.05)
            } else {
                medium.mul_f64(2.0)
            };
            QueryTemplate::uniform(format!("TPC-H-like Q{}", i + 1), vec![medium, small])
        })
        .collect();
    WorkloadSpec::new(templates, vec![VmType::t2_medium(), VmType::t2_small()])
        .expect("catalog construction is always valid")
}

/// A menu of `k` VM types for the Figure 15 scaling experiment: type `j`
/// is cheaper but slower — rate `0.052 / (1 + 0.35 j)` per hour, latencies
/// multiplied by `1 + 0.25 j` — so slower types cost less *per query* but
/// risk more SLA violations, and no type dominates.
pub fn tpch_like_k_types(n: usize, k: usize) -> WorkloadSpec {
    assert!(n >= 1 && k >= 1, "need at least one template and VM type");
    let vm_types: Vec<VmType> = (0..k)
        .map(|j| VmType {
            name: format!("sim.type{j}"),
            startup_cost: Money::from_dollars(0.0008),
            rate_per_hour: Money::from_dollars(0.052 / (1.0 + 0.35 * j as f64)),
            startup_delay: Millis::from_secs(30),
        })
        .collect();
    let templates = (0..n)
        .map(|i| {
            let base = reference_latency(i, n);
            let latencies = (0..k)
                .map(|j| base.mul_f64(1.0 + 0.25 * j as f64))
                .collect();
            QueryTemplate::uniform(format!("TPC-H-like Q{}", i + 1), latencies)
        })
        .collect();
    WorkloadSpec::new(templates, vm_types).expect("catalog construction is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{TemplateId, VmTypeId};

    #[test]
    fn latencies_match_the_papers_range() {
        let spec = tpch_like(10);
        assert_eq!(spec.num_templates(), 10);
        assert_eq!(
            spec.latency(TemplateId(0), VmTypeId(0)),
            Some(Millis::from_secs(120))
        );
        assert_eq!(
            spec.latency(TemplateId(9), VmTypeId(0)),
            Some(Millis::from_secs(360))
        );
        // Mean = 4 minutes, like the paper's workload.
        let total: Millis = (0..10)
            .map(|i| spec.latency(TemplateId(i), VmTypeId(0)).unwrap())
            .sum();
        assert_eq!(total / 10, Millis::from_secs(240));
    }

    #[test]
    fn single_template_catalog_uses_the_mean() {
        let spec = tpch_like(1);
        assert_eq!(
            spec.latency(TemplateId(0), VmTypeId(0)),
            Some(Millis::from_secs(240))
        );
    }

    #[test]
    fn two_type_catalog_splits_ram_profiles() {
        let spec = tpch_like_two_types(10);
        assert_eq!(spec.num_vm_types(), 2);
        // Even template: near parity on the small type.
        let m = spec.latency(TemplateId(0), VmTypeId(0)).unwrap();
        let s = spec.latency(TemplateId(0), VmTypeId(1)).unwrap();
        assert!(s.as_secs_f64() / m.as_secs_f64() < 1.1);
        // Odd template: 2x degradation.
        let m = spec.latency(TemplateId(1), VmTypeId(0)).unwrap();
        let s = spec.latency(TemplateId(1), VmTypeId(1)).unwrap();
        assert!((s.as_secs_f64() / m.as_secs_f64() - 2.0).abs() < 1e-9);
        // Low-RAM queries are cheaper on the small instance, making the
        // multi-type decision non-trivial (the point of Figure 12).
        let cheap_on_small = spec.runtime_cost(TemplateId(0), VmTypeId(1)).unwrap();
        let on_medium = spec.runtime_cost(TemplateId(0), VmTypeId(0)).unwrap();
        assert!(cheap_on_small < on_medium);
    }

    #[test]
    fn k_type_catalog_has_no_dominant_type() {
        let spec = tpch_like_k_types(10, 5);
        assert_eq!(spec.num_vm_types(), 5);
        // The slowest type is the cheapest per query: trade-off exists.
        let fast = spec.runtime_cost(TemplateId(0), VmTypeId(0)).unwrap();
        let slow = spec.runtime_cost(TemplateId(0), VmTypeId(4)).unwrap();
        assert!(slow < fast);
        // But it is slower in wall-clock.
        let fast_l = spec.latency(TemplateId(0), VmTypeId(0)).unwrap();
        let slow_l = spec.latency(TemplateId(0), VmTypeId(4)).unwrap();
        assert!(slow_l > fast_l);
    }
}
