//! The cluster execution simulator: WiSeDB's "IaaS provider".
//!
//! The paper deploys schedules on a private cloud emulating EC2. Here a
//! discrete-event simulator plays that role: it provisions the schedule's
//! VMs, replays each queue front-to-back (optionally honouring start-up
//! delays, per-query arrival times, and true latencies that differ from the
//! predictions the scheduler used), and bills rental plus SLA penalties.
//!
//! With default options the simulated cost is *exactly* the analytic Eq. 1
//! cost — asserted by tests — so advisor-level experiments can trust either
//! path; the extra options exist to measure what prediction error or slow
//! VM boots would have cost for real.

use serde::{Deserialize, Serialize};

use wisedb_core::{
    CoreError, CoreResult, CostBreakdown, Millis, Money, PerformanceGoal, QueryId, QueryLatency,
    Schedule, TemplateId, VmTypeId, WorkloadSpec,
};

/// Execution options.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Delay each VM's first query by the VM type's start-up delay. The
    /// analytic model folds provisioning time into the start-up *fee*, so
    /// this defaults to off.
    pub include_startup_delay: bool,
    /// Bill wall-clock rental (provision → release) instead of Eq. 1's
    /// busy-time billing.
    pub bill_wallclock: bool,
    /// True execution latency per query (indexed by [`QueryId`]), when the
    /// truth differs from the template prediction (Figure 22's setting).
    pub true_latencies: Option<Vec<Millis>>,
    /// Arrival time per query (indexed by [`QueryId`]); a query cannot
    /// start before it arrives, and its SLA latency is measured from
    /// arrival. Defaults to "all available at t=0".
    pub arrivals: Option<Vec<Millis>>,
}

/// What happened to one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// The query.
    pub query: QueryId,
    /// Template the scheduler believed it was.
    pub template: TemplateId,
    /// VM (index into the schedule) that ran it.
    pub vm_index: usize,
    /// Wall-clock start.
    pub start: Millis,
    /// Wall-clock completion.
    pub finish: Millis,
    /// SLA latency: completion minus arrival (or minus zero for batches).
    pub latency: Millis,
}

/// What happened to one VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmTrace {
    /// The rented type.
    pub vm_type: VmTypeId,
    /// When the VM could first run queries.
    pub ready_at: Millis,
    /// When the VM was released (after its last query).
    pub released_at: Millis,
    /// Total execution time performed.
    pub busy: Millis,
    /// Start-up fee paid.
    pub startup_cost: Money,
    /// Rental charged.
    pub rental_cost: Money,
}

/// A full execution record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Per-query outcomes, in schedule order.
    pub queries: Vec<QueryTrace>,
    /// Per-VM outcomes, in provisioning order.
    pub vms: Vec<VmTrace>,
}

impl ExecutionTrace {
    /// The realized SLA latencies, ready for penalty computation.
    pub fn latencies(&self) -> Vec<QueryLatency> {
        self.queries
            .iter()
            .map(|q| QueryLatency {
                query: q.query,
                template: q.template,
                latency: q.latency,
            })
            .collect()
    }

    /// The SLA penalty of the realized latencies.
    pub fn penalty(&self, goal: &PerformanceGoal) -> Money {
        goal.penalty(&self.latencies())
    }

    /// Cost breakdown: start-up fees, rental, and penalty.
    pub fn breakdown(&self, goal: &PerformanceGoal) -> CostBreakdown {
        let startup: Money = self.vms.iter().map(|v| v.startup_cost).sum();
        let rental: Money = self.vms.iter().map(|v| v.rental_cost).sum();
        CostBreakdown {
            startup,
            runtime: rental,
            penalty: self.penalty(goal),
        }
    }

    /// Total realized cost.
    pub fn total_cost(&self, goal: &PerformanceGoal) -> Money {
        self.breakdown(goal).total()
    }

    /// When the last query finished.
    pub fn makespan(&self) -> Millis {
        self.queries
            .iter()
            .map(|q| q.finish)
            .max()
            .unwrap_or(Millis::ZERO)
    }
}

/// Executes `schedule` on the simulated cluster.
pub fn execute(
    spec: &WorkloadSpec,
    schedule: &Schedule,
    options: &SimOptions,
) -> CoreResult<ExecutionTrace> {
    let mut queries = Vec::with_capacity(schedule.num_queries());
    let mut vms = Vec::with_capacity(schedule.num_vms());

    for (vm_index, vm) in schedule.vms.iter().enumerate() {
        let vm_type = spec.vm_type(vm.vm_type)?;
        let ready_at = if options.include_startup_delay {
            vm_type.startup_delay
        } else {
            Millis::ZERO
        };
        let mut clock = ready_at;
        let mut busy = Millis::ZERO;
        for p in &vm.queue {
            let predicted =
                spec.latency(p.template, vm.vm_type)
                    .ok_or(CoreError::UnsupportedPlacement {
                        template: p.template,
                        vm_type: vm.vm_type,
                    })?;
            let exec = options
                .true_latencies
                .as_ref()
                .and_then(|l| l.get(p.query.index()).copied())
                .unwrap_or(predicted);
            let arrival = options
                .arrivals
                .as_ref()
                .and_then(|a| a.get(p.query.index()).copied())
                .unwrap_or(Millis::ZERO);
            let start = clock.max(arrival);
            let finish = start + exec;
            queries.push(QueryTrace {
                query: p.query,
                template: p.template,
                vm_index,
                start,
                finish,
                latency: finish.saturating_sub(arrival),
            });
            busy += exec;
            clock = finish;
        }
        let released_at = clock;
        let rental_cost = if options.bill_wallclock {
            vm_type.runtime_cost(released_at)
        } else {
            vm_type.runtime_cost(busy)
        };
        vms.push(VmTrace {
            vm_type: vm.vm_type,
            ready_at,
            released_at,
            busy,
            startup_cost: vm_type.startup_cost,
            rental_cost,
        });
    }
    Ok(ExecutionTrace { queries, vms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{tpch_like, tpch_like_two_types};
    use crate::generator::uniform_workload;
    use wisedb_core::{total_cost, GoalKind, Placement, VmInstance, Workload};
    use wisedb_search::AStarSearcher;

    fn simple_schedule(_spec: &WorkloadSpec, workload: &Workload) -> Schedule {
        // Everything on one VM of type 0 in workload order.
        let mut vm = VmInstance::new(VmTypeId(0));
        for q in workload.queries() {
            vm.queue.push(Placement {
                query: q.id,
                template: q.template,
            });
        }
        Schedule { vms: vec![vm] }
    }

    #[test]
    fn default_options_match_analytic_cost() {
        let spec = tpch_like(10);
        let workload = uniform_workload(&spec, 12, 3);
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let schedule = AStarSearcher::new(&spec, &goal)
            .solve(&workload)
            .unwrap()
            .schedule;
        let trace = execute(&spec, &schedule, &SimOptions::default()).unwrap();
        let simulated = trace.total_cost(&goal);
        let analytic = total_cost(&spec, &goal, &schedule).unwrap();
        assert!(
            simulated.approx_eq(analytic, 1e-9),
            "simulated {simulated} != analytic {analytic}"
        );
    }

    #[test]
    fn queries_run_sequentially_per_vm() {
        let spec = tpch_like(3);
        let workload = Workload::from_counts(&[2, 1, 0]);
        let schedule = simple_schedule(&spec, &workload);
        let trace = execute(&spec, &schedule, &SimOptions::default()).unwrap();
        assert_eq!(trace.queries.len(), 3);
        for w in trace.queries.windows(2) {
            assert_eq!(w[1].start, w[0].finish);
        }
        assert_eq!(trace.makespan(), trace.queries.last().unwrap().finish);
        assert_eq!(trace.vms[0].busy, trace.vms[0].released_at);
    }

    #[test]
    fn startup_delay_shifts_everything() {
        let spec = tpch_like(2);
        let workload = Workload::from_counts(&[1, 0]);
        let schedule = simple_schedule(&spec, &workload);
        let opts = SimOptions {
            include_startup_delay: true,
            ..SimOptions::default()
        };
        let trace = execute(&spec, &schedule, &opts).unwrap();
        assert_eq!(trace.queries[0].start, Millis::from_secs(30));
        assert_eq!(trace.vms[0].ready_at, Millis::from_secs(30));
        // Latency includes the boot wait: the SLA clock starts at submission.
        assert_eq!(
            trace.queries[0].latency,
            Millis::from_secs(30) + spec.latency(TemplateId(0), VmTypeId(0)).unwrap()
        );
    }

    #[test]
    fn wallclock_billing_charges_idle_boot_time() {
        let spec = tpch_like(2);
        let workload = Workload::from_counts(&[1, 0]);
        let schedule = simple_schedule(&spec, &workload);
        let busy_bill = execute(&spec, &schedule, &SimOptions::default())
            .unwrap()
            .vms[0]
            .rental_cost;
        let wall_bill = execute(
            &spec,
            &schedule,
            &SimOptions {
                include_startup_delay: true,
                bill_wallclock: true,
                ..SimOptions::default()
            },
        )
        .unwrap()
        .vms[0]
            .rental_cost;
        assert!(wall_bill > busy_bill);
    }

    #[test]
    fn true_latencies_override_predictions() {
        let spec = tpch_like(2);
        let workload = Workload::from_counts(&[1, 0]);
        let schedule = simple_schedule(&spec, &workload);
        let opts = SimOptions {
            true_latencies: Some(vec![Millis::from_secs(999)]),
            ..SimOptions::default()
        };
        let trace = execute(&spec, &schedule, &opts).unwrap();
        assert_eq!(trace.queries[0].latency, Millis::from_secs(999));
        // Billing follows the true execution time, not the prediction.
        let expected = spec.vm_types()[0].runtime_cost(Millis::from_secs(999));
        assert!(trace.vms[0].rental_cost.approx_eq(expected, 1e-12));
    }

    #[test]
    fn arrivals_gate_start_times_and_latency() {
        let spec = tpch_like(2);
        // Two queries of T1 (120s) on one VM; the second arrives late.
        let workload = Workload::from_counts(&[2, 0]);
        let schedule = simple_schedule(&spec, &workload);
        let opts = SimOptions {
            arrivals: Some(vec![Millis::ZERO, Millis::from_secs(300)]),
            ..SimOptions::default()
        };
        let trace = execute(&spec, &schedule, &opts).unwrap();
        // First finishes at 120s; second can't start until 300s.
        assert_eq!(trace.queries[1].start, Millis::from_secs(300));
        assert_eq!(trace.queries[1].latency, Millis::from_secs(120));
        // VM idles between queries; wall-clock billing would cover it.
        assert_eq!(trace.vms[0].busy, Millis::from_secs(240));
        assert_eq!(trace.vms[0].released_at, Millis::from_secs(420));
    }

    #[test]
    fn multi_type_schedule_bills_each_type() {
        let spec = tpch_like_two_types(4);
        let schedule = Schedule {
            vms: vec![
                VmInstance {
                    vm_type: VmTypeId(0),
                    queue: vec![Placement {
                        query: QueryId(0),
                        template: TemplateId(0),
                    }],
                },
                VmInstance {
                    vm_type: VmTypeId(1),
                    queue: vec![Placement {
                        query: QueryId(1),
                        template: TemplateId(0),
                    }],
                },
            ],
        };
        let trace = execute(&spec, &schedule, &SimOptions::default()).unwrap();
        // Same template, but the small VM runs it slower & cheaper per hour.
        assert!(trace.vms[1].busy > trace.vms[0].busy);
        assert!(trace.vms[1].rental_cost < trace.vms[0].rental_cost * 1.2);
    }

    #[test]
    fn unsupported_placement_is_an_error() {
        let spec = wisedb_core::WorkloadSpec::new(
            vec![wisedb_core::QueryTemplate {
                name: "medium-only".into(),
                latencies: vec![Some(Millis::from_mins(1)), None],
            }],
            vec![
                wisedb_core::VmType::t2_medium(),
                wisedb_core::VmType::t2_small(),
            ],
        )
        .unwrap();
        let schedule = Schedule {
            vms: vec![VmInstance {
                vm_type: VmTypeId(1),
                queue: vec![Placement {
                    query: QueryId(0),
                    template: TemplateId(0),
                }],
            }],
        };
        assert!(matches!(
            execute(&spec, &schedule, &SimOptions::default()),
            Err(CoreError::UnsupportedPlacement { .. })
        ));
    }
}
