//! A steppable cluster session: the IaaS provider as an *ongoing* process.
//!
//! [`cluster`](crate::cluster) replays a finished [`Schedule`] front to
//! back; the streaming runtime instead needs a cluster it can drive one
//! event at a time — provision a VM *now*, queue a query behind it, advance
//! the virtual clock and observe what started/finished, pull unstarted work
//! back for rescheduling (§6.3's reschedule-on-arrival), and read a running
//! bill at any instant.
//!
//! [`LiveCluster`] is that session. Execution semantics deliberately match
//! both the analytic Eq. 1 model and the batch simulator: with start-up
//! delays and latency noise off, the final bill for the same placements is
//! exactly `Σ startup + Σ runtime` (asserted by tests and by the runtime's
//! property suite).
//!
//! [`Schedule`]: wisedb_core::Schedule

use rand::rngs::StdRng;
use rand::SeedableRng;

use serde::{Deserialize, Serialize};

use wisedb_core::{
    CoreError, CoreResult, Millis, Money, QueryId, SpecHandle, TemplateId, TenantId, VmTypeId,
    WorkloadSpec,
};

use crate::generator::Gaussian;
use rand::distributions::Distribution;

/// Options of a live cluster session.
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Delay each VM's first query by the VM type's start-up delay (off by
    /// default, matching the analytic model that folds provisioning time
    /// into the start-up fee).
    pub include_startup_delay: bool,
    /// Multiplicative Gaussian latency noise: a query's true execution time
    /// is `predicted × max(0.05, 1 + N(0, σ))`. `None` means predictions
    /// are exact.
    pub latency_noise_sigma: Option<f64>,
    /// Seed for the noise RNG (unused when noise is off).
    pub noise_seed: u64,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            include_startup_delay: false,
            latency_noise_sigma: None,
            noise_seed: 0x11FE,
        }
    }
}

/// A query queued on a live VM but not yet started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedQuery {
    /// Stream-assigned query id.
    pub query: QueryId,
    /// The template the scheduler believes it is (base template, not an
    /// aged alias).
    pub template: TemplateId,
    /// The virtual time of the scheduling pass that queued it; it cannot
    /// start earlier even if the VM is idle.
    pub not_before: Millis,
    /// The submitting tenant's SLA class (drives recall routing and
    /// rental attribution).
    pub class: TenantId,
}

/// A pending query pulled back off the cluster for rescheduling, tagged
/// with the VM it came from (see [`LiveCluster::recall_pending`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecalledQuery {
    /// Index of the VM the query was queued on.
    pub vm_index: usize,
    /// The recalled query.
    pub query: QueryId,
    /// Its template.
    pub template: TemplateId,
    /// Its SLA class.
    pub class: TenantId,
}

/// One query's completed execution on the live cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The query.
    pub query: QueryId,
    /// Its template.
    pub template: TemplateId,
    /// Its SLA class ([`TenantId::DEFAULT`] on single-class sessions).
    pub class: TenantId,
    /// Index of the VM that ran it, in provisioning order.
    pub vm_index: usize,
    /// Execution start (virtual time).
    pub start: Millis,
    /// Execution finish (virtual time).
    pub finish: Millis,
}

pub use wisedb_core::OpenVmView;

/// An immutable point-in-time view of the live cluster — everything the
/// online planner consults, captured once and shareable across threads
/// (`Arc<ClusterSnapshot>`) without locking the session.
///
/// The sharded runtime takes one snapshot per scheduling tick (an
/// *epoch*) and plans every class's batch against it in parallel; the
/// cluster itself is only touched again at the serial merge step. The
/// snapshot is a value, not a lease: mutating the cluster after
/// [`LiveCluster::snapshot`] never changes an existing snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// The virtual clock at capture time.
    pub now: Millis,
    /// VMs ever provisioned (the planner's fleet counter).
    pub vms_provisioned: usize,
    /// VMs provisioned and not yet released.
    pub vms_in_flight: usize,
    /// Queries queued but not started, across all VMs.
    pub pending: usize,
    /// The open VM — index in provisioning order plus the planner's view
    /// of it — if the most recently provisioned VM still accepts work.
    pub open_vm: Option<(usize, OpenVmView)>,
}

/// One rented VM of the live session.
#[derive(Debug, Clone)]
struct LiveVm {
    vm_type: VmTypeId,
    /// When all *committed* (started) work finishes; starts at the VM's
    /// ready time (provisioning instant, or boot completion with delays on).
    avail: Millis,
    /// Total execution time committed so far (drives Eq. 1 billing).
    busy: Millis,
    /// Committed queries still executing: (template, finish).
    running: Vec<(TemplateId, Millis)>,
    /// Queued but not started; recallable.
    pending: Vec<QueuedQuery>,
    /// Released VMs accept no further work.
    released: bool,
}

/// An event-driven cluster session that provisions, runs, and bills VMs as
/// the virtual clock advances. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct LiveCluster {
    spec: SpecHandle,
    options: LiveOptions,
    vms: Vec<LiveVm>,
    now: Millis,
    noise: Option<(Gaussian, StdRng)>,
    /// Queries that have started executing but whose finish lies beyond
    /// the clock: their [`Completion`] is emitted once the clock passes it.
    executing: Vec<Completion>,
    /// Start-up fees of every provisioned VM (paid at provision time).
    startup_billed: Money,
    /// Rental billed for committed execution time.
    runtime_billed: Money,
    /// Dollar attribution per SLA class (index = [`TenantId`]): start-up
    /// fees go to the class whose plan rented the VM, rental to the class
    /// whose query executed. Sums to [`billed`](Self::billed) exactly.
    billed_by_class: Vec<Money>,
}

impl LiveCluster {
    /// Opens a session at virtual time zero. Accepts an owned spec or a
    /// shared [`SpecHandle`] — the runtime passes the scheduler's handle,
    /// so the whole stack shares one spec allocation.
    pub fn new(spec: impl Into<SpecHandle>, options: LiveOptions) -> Self {
        let noise = options.latency_noise_sigma.map(|sigma| {
            (
                Gaussian::new(0.0, sigma),
                StdRng::seed_from_u64(options.noise_seed),
            )
        });
        LiveCluster {
            spec: spec.into(),
            options,
            vms: Vec::new(),
            now: Millis::ZERO,
            noise,
            executing: Vec::new(),
            startup_billed: Money::ZERO,
            runtime_billed: Money::ZERO,
            billed_by_class: Vec::new(),
        }
    }

    /// Adds `amount` to `class`'s dollar attribution, growing the ledger
    /// on first sight of a class.
    fn charge(&mut self, class: TenantId, amount: Money) {
        let i = class.index();
        if self.billed_by_class.len() <= i {
            self.billed_by_class.resize(i + 1, Money::ZERO);
        }
        self.billed_by_class[i] += amount;
    }

    /// The session's workload specification.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The current virtual time.
    pub fn now(&self) -> Millis {
        self.now
    }

    /// Provisions a VM of `vm_type` at the current time, paying its
    /// start-up fee (attributed to the default class). Returns the VM's
    /// index (provisioning order).
    pub fn provision(&mut self, vm_type: VmTypeId) -> CoreResult<usize> {
        self.provision_as(vm_type, TenantId::DEFAULT)
    }

    /// [`provision`](Self::provision) with the start-up fee attributed to
    /// the SLA class whose plan rented the VM. The VM itself is shared —
    /// any class may queue on it.
    pub fn provision_as(&mut self, vm_type: VmTypeId, class: TenantId) -> CoreResult<usize> {
        let vt = self.spec.vm_type(vm_type)?;
        let (startup_cost, startup_delay) = (vt.startup_cost, vt.startup_delay);
        let ready_at = if self.options.include_startup_delay {
            self.now + startup_delay
        } else {
            self.now
        };
        self.startup_billed += startup_cost;
        self.charge(class, startup_cost);
        self.vms.push(LiveVm {
            vm_type,
            avail: ready_at,
            busy: Millis::ZERO,
            running: Vec::new(),
            pending: Vec::new(),
            released: false,
        });
        wisedb_obs::counter_add("wisedb_cluster_vms_provisioned_total", 1);
        wisedb_obs::instant("cluster.provision")
            .virt(self.now)
            .attr_u64("vm_type", vm_type.index() as u64)
            .attr_u64("class", class.index() as u64)
            .attr_u64("vm_index", (self.vms.len() - 1) as u64)
            .emit();
        Ok(self.vms.len() - 1)
    }

    /// Queues `query` on VM `vm_index` behind its existing work, under the
    /// default class. The query cannot start before the current virtual
    /// time. Released VMs are rejected — idle VMs release automatically
    /// and accept no further work.
    pub fn enqueue(
        &mut self,
        vm_index: usize,
        query: QueryId,
        template: TemplateId,
    ) -> CoreResult<()> {
        self.enqueue_as(vm_index, query, template, TenantId::DEFAULT)
    }

    /// [`enqueue`](Self::enqueue) with an SLA class tag: the class rides
    /// the queue entry into the query's [`Completion`] and its rental
    /// attribution.
    pub fn enqueue_as(
        &mut self,
        vm_index: usize,
        query: QueryId,
        template: TemplateId,
        class: TenantId,
    ) -> CoreResult<()> {
        let vm = self
            .vms
            .get_mut(vm_index)
            .ok_or(CoreError::UnknownVmIndex { index: vm_index })?;
        if vm.released {
            return Err(CoreError::VmReleased { index: vm_index });
        }
        if self.spec.latency(template, vm.vm_type).is_none() {
            return Err(CoreError::UnsupportedPlacement {
                template,
                vm_type: vm.vm_type,
            });
        }
        vm.pending.push(QueuedQuery {
            query,
            template,
            not_before: self.now,
            class,
        });
        Ok(())
    }

    /// Pulls every not-yet-started query back off the cluster for
    /// rescheduling, in queue order. The §6.3 loop calls this on each
    /// arrival: everything unstarted is fair game for a better plan. Each
    /// entry names the VM it was recalled from, so a caller whose replan
    /// fails can restore the previous assignment.
    pub fn recall_pending(&mut self) -> Vec<RecalledQuery> {
        let mut out = Vec::new();
        for (vm_index, vm) in self.vms.iter_mut().enumerate() {
            for q in vm.pending.drain(..) {
                out.push(RecalledQuery {
                    vm_index,
                    query: q.query,
                    template: q.template,
                    class: q.class,
                });
            }
        }
        out
    }

    /// Pulls back only `class`'s not-yet-started queries, in queue order,
    /// leaving other classes' pending work in place — the multi-tenant
    /// recall discipline: one class's replan never perturbs another's
    /// queued placements. For a single-class session this is exactly
    /// [`recall_pending`](Self::recall_pending).
    pub fn recall_pending_of(&mut self, class: TenantId) -> Vec<RecalledQuery> {
        let mut out = Vec::new();
        for (vm_index, vm) in self.vms.iter_mut().enumerate() {
            let mut kept = Vec::with_capacity(vm.pending.len());
            for q in vm.pending.drain(..) {
                if q.class == class {
                    out.push(RecalledQuery {
                        vm_index,
                        query: q.query,
                        template: q.template,
                        class: q.class,
                    });
                } else {
                    kept.push(q);
                }
            }
            vm.pending = kept;
        }
        if !out.is_empty() {
            wisedb_obs::counter_add("wisedb_cluster_recalled_total", out.len() as u64);
            wisedb_obs::instant("cluster.recall")
                .virt(self.now)
                .attr_u64("class", class.index() as u64)
                .attr_u64("queries", out.len() as u64)
                .emit();
        }
        out
    }

    /// Advances the virtual clock to `now` (monotone; earlier times are
    /// clamped to the current clock). Starts pending queries whose start
    /// time falls strictly before `now`, retires finished work, releases
    /// idle VMs, and returns the queries that **finished** by `now`, in
    /// finish order. A query that has started but not yet finished stays
    /// in flight — its completion is emitted by a later advance — so
    /// callers' live gauges never count executing work as done.
    ///
    /// A pending query starts at `max(vm ready/avail, its queueing time)`;
    /// its execution time is the spec's predicted latency, optionally
    /// perturbed by the session's noise model.
    pub fn advance_to(&mut self, now: Millis) -> Vec<Completion> {
        let now = now.max(self.now);
        self.now = now;
        let mut by_class = std::mem::take(&mut self.billed_by_class);
        for (v, vm) in self.vms.iter_mut().enumerate() {
            vm.running.retain(|&(_, finish)| finish > now);
            let mut started = 0;
            for q in &vm.pending {
                let start = vm.avail.max(q.not_before);
                if start >= now {
                    break;
                }
                let predicted = self
                    .spec
                    .latency(q.template, vm.vm_type)
                    .expect("enqueue validated the placement");
                let exec = match &mut self.noise {
                    Some((gaussian, rng)) => {
                        let factor = (1.0 + gaussian.sample(rng)).max(0.05);
                        predicted.mul_f64(factor).max(Millis::from_millis(1))
                    }
                    None => predicted,
                };
                let finish = start + exec;
                self.executing.push(Completion {
                    query: q.query,
                    template: q.template,
                    class: q.class,
                    vm_index: v,
                    start,
                    finish,
                });
                vm.busy += exec;
                let rental = self
                    .spec
                    .vm_type(vm.vm_type)
                    .expect("provision validated the type")
                    .runtime_cost(exec);
                self.runtime_billed += rental;
                // Rental attribution: the executing query's class pays.
                if by_class.len() <= q.class.index() {
                    by_class.resize(q.class.index() + 1, Money::ZERO);
                }
                by_class[q.class.index()] += rental;
                vm.avail = finish;
                if finish > now {
                    vm.running.push((q.template, finish));
                }
                started += 1;
            }
            vm.pending.drain(..started);
            if vm.pending.is_empty() && vm.avail <= now && !vm.released {
                vm.released = true;
            }
        }
        self.billed_by_class = by_class;
        let mut completions: Vec<Completion> = Vec::new();
        self.executing.retain(|c| {
            if c.finish <= now {
                completions.push(*c);
                false
            } else {
                true
            }
        });
        completions.sort_by_key(|c| (c.finish, c.query));
        completions
    }

    /// Runs everything still queued to completion and returns the final
    /// completions. The clock ends at the last finish (it never rewinds).
    pub fn drain(&mut self) -> Vec<Completion> {
        let before = self.now;
        let completions = self.advance_to(Millis::from_millis(u64::MAX));
        // The drain pass moved the clock to the sentinel; settle it back to
        // the true end of work so dollars-per-hour stays meaningful.
        let last_activity = self
            .vms
            .iter()
            .map(|vm| vm.avail)
            .max()
            .unwrap_or(Millis::ZERO);
        self.now = before.max(last_activity);
        completions
    }

    /// The most recently provisioned VM, if it can still accept work:
    /// its index (provisioning order) and the planner's view of it.
    ///
    /// The backlog covers committed work *and* queries still queued on the
    /// VM (predicted latency), and `running` lists both populations: in
    /// the single-class loop the queue is always empty here (everything
    /// unstarted was just recalled), but a multi-tenant replan leaves
    /// other classes' pending in place, and a plan that ignored it would
    /// stack deadline-bound work behind invisible queues.
    pub fn open_vm(&self) -> Option<(usize, OpenVmView)> {
        let index = self.vms.len().checked_sub(1)?;
        let vm = self.vms.last().filter(|vm| !vm.released)?;
        let mut running: Vec<TemplateId> = vm.running.iter().map(|&(t, _)| t).collect();
        let mut backlog = vm.avail.saturating_sub(self.now);
        for q in &vm.pending {
            backlog += self
                .spec
                .latency(q.template, vm.vm_type)
                .expect("enqueue validated the placement");
            running.push(q.template);
        }
        Some((
            index,
            OpenVmView {
                vm_type: vm.vm_type,
                running,
                backlog,
            },
        ))
    }

    /// Captures a read-only [`ClusterSnapshot`] of the session at the
    /// current instant: clock, fleet counters, pending total, and the
    /// open-VM view. O(open-VM queue length); borrows `&self` only, so
    /// callers can wrap the result in an `Arc` and hand it to planner
    /// threads while the session stays exclusively owned elsewhere.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            now: self.now,
            vms_provisioned: self.vms_provisioned(),
            vms_in_flight: self.vms_in_flight(),
            pending: self.pending(),
            open_vm: self.open_vm(),
        }
    }

    /// VMs provisioned and not yet released.
    pub fn vms_in_flight(&self) -> usize {
        self.vms.iter().filter(|vm| !vm.released).count()
    }

    /// VMs ever provisioned.
    pub fn vms_provisioned(&self) -> usize {
        self.vms.len()
    }

    /// The provisioned VM types, in provisioning order.
    pub fn vm_types(&self) -> Vec<VmTypeId> {
        self.vms.iter().map(|vm| vm.vm_type).collect()
    }

    /// Queries queued but not started, across all VMs.
    pub fn pending(&self) -> usize {
        self.vms.iter().map(|vm| vm.pending.len()).sum()
    }

    /// Queries of one SLA class queued but not started, across all VMs.
    pub fn pending_of(&self, class: TenantId) -> usize {
        self.vms
            .iter()
            .flat_map(|vm| &vm.pending)
            .filter(|q| q.class == class)
            .count()
    }

    /// Queries started but not yet finished at the current clock.
    pub fn executing(&self) -> usize {
        self.executing.len()
    }

    /// Infrastructure billed so far: start-up fees of every provisioned VM
    /// plus rental for committed execution time. With noise and start-up
    /// delays off, the post-drain value equals Eq. 1's infrastructure terms
    /// for the same placements.
    pub fn billed(&self) -> Money {
        self.startup_billed + self.runtime_billed
    }

    /// Dollar attribution per SLA class, indexed by [`TenantId`] (classes
    /// beyond the vector's length have been charged nothing). Start-up
    /// fees belong to the class whose plan rented the VM, rental to the
    /// class whose query executed; the entries sum to
    /// [`billed`](Self::billed).
    pub fn billed_by_class(&self) -> &[Money] {
        &self.billed_by_class
    }

    /// One class's dollar attribution.
    pub fn billed_for(&self, class: TenantId) -> Money {
        self.billed_by_class
            .get(class.index())
            .copied()
            .unwrap_or(Money::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{tpch_like, tpch_like_two_types};

    fn cluster(n: usize) -> LiveCluster {
        LiveCluster::new(tpch_like(n), LiveOptions::default())
    }

    #[test]
    fn provision_enqueue_advance_bills_eq1() {
        let mut c = cluster(3);
        let spec = c.spec().clone();
        let v = c.provision(VmTypeId(0)).unwrap();
        c.enqueue(v, QueryId(0), TemplateId(0)).unwrap();
        c.enqueue(v, QueryId(1), TemplateId(1)).unwrap();
        let l0 = spec.latency(TemplateId(0), VmTypeId(0)).unwrap();
        let l1 = spec.latency(TemplateId(1), VmTypeId(0)).unwrap();

        let done = c.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].start, Millis::ZERO);
        assert_eq!(done[0].finish, l0);
        assert_eq!(done[1].start, l0);
        assert_eq!(done[1].finish, l0 + l1);
        let vt = spec.vm_type(VmTypeId(0)).unwrap();
        let expected = vt.startup_cost + vt.runtime_cost(l0 + l1);
        assert!(c.billed().approx_eq(expected, 1e-9), "{}", c.billed());
        assert_eq!(c.now(), l0 + l1);
        assert_eq!(c.vms_in_flight(), 0);
    }

    #[test]
    fn queries_start_only_strictly_before_now_and_finish_later() {
        let mut c = cluster(2);
        let v = c.provision(VmTypeId(0)).unwrap();
        c.enqueue(v, QueryId(0), TemplateId(0)).unwrap();
        // Advancing *to* the queueing instant starts nothing (start >= now).
        assert!(c.advance_to(Millis::ZERO).is_empty());
        assert_eq!(c.pending(), 1);
        assert_eq!(c.executing(), 0);
        // One tick later the query has started but is far from finished:
        // no completion is emitted until the clock passes its finish.
        assert!(c.advance_to(Millis::from_millis(1)).is_empty());
        assert_eq!(c.pending(), 0);
        assert_eq!(c.executing(), 1);
        let exec = c.spec().latency(TemplateId(0), VmTypeId(0)).unwrap();
        let done = c.advance_to(exec);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].start, Millis::ZERO);
        assert_eq!(done[0].finish, exec);
        assert_eq!(c.executing(), 0);
    }

    #[test]
    fn recall_pulls_back_only_unstarted_work() {
        let mut c = cluster(2);
        let v = c.provision(VmTypeId(0)).unwrap();
        c.enqueue(v, QueryId(0), TemplateId(0)).unwrap();
        c.enqueue(v, QueryId(1), TemplateId(1)).unwrap();
        // Move a little: query 0 starts (it's committed), query 1 waits.
        c.advance_to(Millis::from_secs(1));
        let recalled = c.recall_pending();
        assert_eq!(
            recalled,
            vec![RecalledQuery {
                vm_index: 0,
                query: QueryId(1),
                template: TemplateId(1),
                class: TenantId::DEFAULT,
            }]
        );
        assert_eq!(c.pending(), 0);
        // The open VM reports the backlog of the committed query.
        let (index, open) = c.open_vm().unwrap();
        assert_eq!(index, 0);
        assert_eq!(open.running, vec![TemplateId(0)]);
        let l0 = c.spec().latency(TemplateId(0), VmTypeId(0)).unwrap();
        assert_eq!(open.backlog, l0.saturating_sub(Millis::from_secs(1)));
    }

    #[test]
    fn idle_vm_releases_and_closes() {
        let mut c = cluster(2);
        let v = c.provision(VmTypeId(0)).unwrap();
        c.enqueue(v, QueryId(0), TemplateId(1)).unwrap();
        let l = c.spec().latency(TemplateId(1), VmTypeId(0)).unwrap();
        c.advance_to(l + Millis::SECOND);
        assert_eq!(c.vms_in_flight(), 0);
        assert!(c.open_vm().is_none(), "released VMs are not open");
        assert_eq!(c.vms_provisioned(), 1);
        // Released VMs accept no further work.
        assert!(matches!(
            c.enqueue(v, QueryId(1), TemplateId(0)),
            Err(CoreError::VmReleased { .. })
        ));
    }

    #[test]
    fn startup_delay_defers_first_start() {
        let spec = tpch_like(2);
        let mut c = LiveCluster::new(
            spec.clone(),
            LiveOptions {
                include_startup_delay: true,
                ..LiveOptions::default()
            },
        );
        let v = c.provision(VmTypeId(0)).unwrap();
        c.enqueue(v, QueryId(0), TemplateId(0)).unwrap();
        let done = c.drain();
        let delay = spec.vm_type(VmTypeId(0)).unwrap().startup_delay;
        assert_eq!(done[0].start, delay);
    }

    #[test]
    fn noise_perturbs_execution_deterministically() {
        let spec = tpch_like(2);
        let run = |seed: u64| {
            let mut c = LiveCluster::new(
                spec.clone(),
                LiveOptions {
                    latency_noise_sigma: Some(0.3),
                    noise_seed: seed,
                    ..LiveOptions::default()
                },
            );
            let v = c.provision(VmTypeId(0)).unwrap();
            c.enqueue(v, QueryId(0), TemplateId(0)).unwrap();
            c.drain()[0].finish
        };
        assert_eq!(run(1), run(1), "same seed, same execution");
        let predicted = spec.latency(TemplateId(0), VmTypeId(0)).unwrap();
        // Across seeds, some run must differ from the exact prediction.
        assert!((0..8).any(|s| run(s) != predicted));
    }

    #[test]
    fn unsupported_placement_is_rejected_at_enqueue() {
        let spec = tpch_like_two_types(2);
        // Manufacture a spec where template 0 cannot run on type 1.
        let mut templates = spec.templates().to_vec();
        templates[0].latencies[1] = None;
        let spec = WorkloadSpec::new(templates, spec.vm_types().to_vec()).unwrap();
        let mut c = LiveCluster::new(spec, LiveOptions::default());
        let v = c.provision(VmTypeId(1)).unwrap();
        assert!(matches!(
            c.enqueue(v, QueryId(0), TemplateId(0)),
            Err(CoreError::UnsupportedPlacement { .. })
        ));
    }

    #[test]
    fn class_recall_leaves_other_classes_queued() {
        let mut c = cluster(3);
        let v = c.provision_as(VmTypeId(0), TenantId(1)).unwrap();
        c.enqueue_as(v, QueryId(0), TemplateId(0), TenantId(0))
            .unwrap();
        c.enqueue_as(v, QueryId(1), TemplateId(1), TenantId(1))
            .unwrap();
        c.enqueue_as(v, QueryId(2), TemplateId(2), TenantId(0))
            .unwrap();
        assert_eq!(c.pending_of(TenantId(0)), 2);
        assert_eq!(c.pending_of(TenantId(1)), 1);
        // Recalling class 0 pulls its two queries in queue order and
        // leaves class 1's untouched.
        let recalled = c.recall_pending_of(TenantId(0));
        assert_eq!(
            recalled.iter().map(|r| r.query).collect::<Vec<_>>(),
            vec![QueryId(0), QueryId(2)]
        );
        assert!(recalled.iter().all(|r| r.class == TenantId(0)));
        assert_eq!(c.pending(), 1);
        assert_eq!(c.pending_of(TenantId(1)), 1);
        // The open VM's view accounts for the still-queued class-1 query.
        let (_, open) = c.open_vm().unwrap();
        let l1 = c.spec().latency(TemplateId(1), VmTypeId(0)).unwrap();
        assert_eq!(open.backlog, l1);
        assert_eq!(open.running, vec![TemplateId(1)]);
    }

    #[test]
    fn class_billing_attribution_sums_to_the_total() {
        let spec = tpch_like(3);
        let mut c = LiveCluster::new(spec.clone(), LiveOptions::default());
        // Class 1 rents the VM; classes 0 and 1 both execute on it.
        let v = c.provision_as(VmTypeId(0), TenantId(1)).unwrap();
        c.enqueue_as(v, QueryId(0), TemplateId(0), TenantId(0))
            .unwrap();
        c.enqueue_as(v, QueryId(1), TemplateId(1), TenantId(1))
            .unwrap();
        let done = c.drain();
        assert_eq!(done[0].class, TenantId(0));
        assert_eq!(done[1].class, TenantId(1));
        let vt = spec.vm_type(VmTypeId(0)).unwrap();
        let l0 = spec.latency(TemplateId(0), VmTypeId(0)).unwrap();
        let l1 = spec.latency(TemplateId(1), VmTypeId(0)).unwrap();
        assert!(c
            .billed_for(TenantId(0))
            .approx_eq(vt.runtime_cost(l0), 1e-9));
        assert!(c
            .billed_for(TenantId(1))
            .approx_eq(vt.startup_cost + vt.runtime_cost(l1), 1e-9));
        let attributed: Money = c.billed_by_class().iter().copied().sum();
        assert!(attributed.approx_eq(c.billed(), 1e-9));
        assert_eq!(c.billed_for(TenantId(9)), Money::ZERO);
    }

    #[test]
    fn snapshot_is_immutable_and_matches_accessors() {
        let mut c = cluster(3);
        let v = c.provision_as(VmTypeId(0), TenantId(1)).unwrap();
        c.enqueue_as(v, QueryId(0), TemplateId(0), TenantId(0))
            .unwrap();
        c.advance_to(Millis::from_millis(1));
        c.enqueue_as(v, QueryId(1), TemplateId(1), TenantId(1))
            .unwrap();

        let snap = c.snapshot();
        assert_eq!(snap.now, c.now());
        assert_eq!(snap.vms_provisioned, c.vms_provisioned());
        assert_eq!(snap.vms_in_flight, c.vms_in_flight());
        assert_eq!(snap.pending, c.pending());
        assert_eq!(snap.open_vm, c.open_vm());

        // Mutating the session afterwards leaves the snapshot untouched —
        // it is a value, not a lease on live state.
        let frozen = snap.clone();
        let w = c.provision(VmTypeId(0)).unwrap();
        c.enqueue(w, QueryId(2), TemplateId(2)).unwrap();
        c.advance_to(Millis::from_secs(5));
        assert_eq!(snap, frozen);
        assert_ne!(c.snapshot(), frozen, "the live view moved on");
    }

    #[test]
    fn billing_accrues_incrementally() {
        let mut c = cluster(2);
        let v = c.provision(VmTypeId(0)).unwrap();
        let after_provision = c.billed();
        assert!(after_provision > Money::ZERO, "start-up fee paid up front");
        c.enqueue(v, QueryId(0), TemplateId(0)).unwrap();
        c.advance_to(Millis::from_millis(1));
        assert!(c.billed() > after_provision, "runtime billed at commit");
    }
}
