//! # wisedb-sim
//!
//! The simulated substrate for WiSeDB's experiments: everything the paper
//! ran on real hardware that is reproduced synthetically here.
//!
//! * [`catalog`] — TPC-H-like template catalogs calibrated to the paper's
//!   published latencies and EC2 prices (§7.1).
//! * [`generator`] — uniform training samples, χ²-controlled skewed batches,
//!   and online arrival processes.
//! * [`cluster`] — a discrete-event execution simulator that *runs*
//!   schedules (start-up delays, arrival gating, true-latency overrides)
//!   and bills them; with default options its cost equals the analytic
//!   Eq. 1 cost exactly.
//! * [`live`] — the steppable counterpart: an incremental cluster session
//!   that provisions, runs, and bills VMs as events fire, for the
//!   streaming runtime (recallable queues, open-VM view, running bill).
//! * [`noise`] — latency-predictor error injection and the closest-latency
//!   template matching rule (Figure 22).
//! * [`stats`] — means, percentiles, and the chi-squared machinery
//!   (hand-rolled regularized incomplete gamma) behind Figures 20–21.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod cluster;
pub mod generator;
pub mod live;
pub mod noise;
pub mod stats;

pub use cluster::{execute, ExecutionTrace, QueryTrace, SimOptions, VmTrace};
pub use generator::{sample_workloads, skewed_workload, uniform_workload, Arrivals};
pub use live::{
    ClusterSnapshot, Completion, LiveCluster, LiveOptions, OpenVmView, QueuedQuery, RecalledQuery,
};
pub use noise::{perceive_workload, PerceivedWorkload};
