//! Workload generators: uniform training samples (§4.2), skewed runtime
//! batches (§7.5), and online arrival processes (§7.4).

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wisedb_core::{Millis, TemplateId, Workload, WorkloadSpec};

/// Draws one workload of `m` queries with templates sampled uniformly —
/// the paper's training-time sampling (uniform direct sampling covers both
/// balanced and naturally imbalanced mixes).
pub fn uniform_workload(spec: &WorkloadSpec, m: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    uniform_workload_rng(spec, m, &mut rng)
}

/// Uniform workload from a caller-managed RNG.
pub fn uniform_workload_rng(spec: &WorkloadSpec, m: usize, rng: &mut StdRng) -> Workload {
    let nt = spec.num_templates() as u32;
    Workload::from_templates((0..m).map(|_| TemplateId(rng.gen_range(0..nt))))
}

/// The training corpus: `n_samples` independent uniform workloads of `m`
/// queries each (the paper uses N = 3000, m = 18).
pub fn sample_workloads(
    spec: &WorkloadSpec,
    n_samples: usize,
    m: usize,
    seed: u64,
) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_samples)
        .map(|_| uniform_workload_rng(spec, m, &mut rng))
        .collect()
}

/// Draws a workload skewed toward one "hot" template: with probability
/// `skew` a query is the hot template, otherwise uniform. `skew = 0` is
/// the uniform distribution; `skew = 1` yields single-template batches —
/// spanning the χ² range of Figures 20–21.
pub fn skewed_workload(spec: &WorkloadSpec, m: usize, skew: f64, seed: u64) -> Workload {
    assert!((0.0..=1.0).contains(&skew), "skew must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let nt = spec.num_templates() as u32;
    let hot = TemplateId(rng.gen_range(0..nt));
    Workload::from_templates((0..m).map(|_| {
        if rng.gen_bool(skew) {
            hot
        } else {
            TemplateId(rng.gen_range(0..nt))
        }
    }))
}

/// Inter-arrival time models for online scheduling experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Every query arrives exactly `gap` after the previous one.
    Fixed {
        /// The constant inter-arrival gap.
        gap: Millis,
    },
    /// Gaps are normally distributed (truncated at zero) — the §7.4 setup
    /// uses mean 250 ms, std 125 ms.
    Normal {
        /// Mean gap in seconds.
        mean_secs: f64,
        /// Standard deviation in seconds.
        std_secs: f64,
    },
    /// Gaps are exponentially distributed (Poisson arrivals).
    Poisson {
        /// Mean gap in seconds.
        mean_secs: f64,
    },
}

impl Arrivals {
    /// Generates `n` absolute arrival times starting at zero.
    pub fn times(&self, n: usize, seed: u64) -> Vec<Millis> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Millis::ZERO;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if i > 0 {
                t += self.gap(&mut rng);
            }
            out.push(t);
        }
        out
    }

    fn gap(&self, rng: &mut StdRng) -> Millis {
        match *self {
            Arrivals::Fixed { gap } => gap,
            Arrivals::Normal {
                mean_secs,
                std_secs,
            } => {
                let g = mean_secs + std_secs * standard_normal(rng);
                Millis::from_secs_f64(g.max(0.0))
            }
            Arrivals::Poisson { mean_secs } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                Millis::from_secs_f64(-mean_secs * u.ln())
            }
        }
    }
}

/// A standard normal draw via Box–Muller (keeps us off extra crates).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A reusable Gaussian sampler for noise models.
#[derive(Debug, Clone)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// A normal distribution with the given moments.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0, "standard deviation must be non-negative");
        Gaussian { mean, std }
    }
}

impl Distribution<f64> for Gaussian {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::tpch_like;
    use crate::stats;

    #[test]
    fn uniform_workload_covers_templates() {
        let spec = tpch_like(10);
        let w = uniform_workload(&spec, 1000, 7);
        assert_eq!(w.len(), 1000);
        let counts = w.template_counts(10);
        // Every template shows up in a 1000-query uniform draw.
        assert!(counts.iter().all(|&c| c > 0));
        // Roughly uniform: chi-squared confidence should be unremarkable.
        let stat = stats::chi_squared_stat(&counts);
        let conf = stats::chi_squared_confidence(stat, 9);
        assert!(conf < 0.999, "uniform draw looked skewed: conf={conf}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = tpch_like(5);
        assert_eq!(
            uniform_workload(&spec, 20, 1),
            uniform_workload(&spec, 20, 1)
        );
        assert_ne!(
            uniform_workload(&spec, 20, 1),
            uniform_workload(&spec, 20, 2)
        );
    }

    #[test]
    fn sample_workloads_vary() {
        let spec = tpch_like(5);
        let samples = sample_workloads(&spec, 10, 6, 3);
        assert_eq!(samples.len(), 10);
        assert!(samples.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn skew_parameter_moves_chi_squared() {
        let spec = tpch_like(10);
        let uniform = skewed_workload(&spec, 300, 0.0, 11);
        let heavy = skewed_workload(&spec, 300, 0.95, 11);
        let s_u = stats::chi_squared_stat(&uniform.template_counts(10));
        let s_h = stats::chi_squared_stat(&heavy.template_counts(10));
        assert!(
            s_h > s_u * 5.0,
            "skew should inflate chi-squared: {s_u} vs {s_h}"
        );

        let single = skewed_workload(&spec, 50, 1.0, 11);
        let counts = single.template_counts(10);
        assert_eq!(counts.iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn arrival_times_are_sorted_and_start_at_zero() {
        for arrivals in [
            Arrivals::Fixed {
                gap: Millis::from_millis(250),
            },
            Arrivals::Normal {
                mean_secs: 0.25,
                std_secs: 0.125,
            },
            Arrivals::Poisson { mean_secs: 0.25 },
        ] {
            let times = arrivals.times(50, 9);
            assert_eq!(times.len(), 50);
            assert_eq!(times[0], Millis::ZERO);
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn fixed_arrivals_are_exact() {
        let times = Arrivals::Fixed {
            gap: Millis::from_secs(1),
        }
        .times(4, 0);
        assert_eq!(
            times,
            vec![
                Millis::ZERO,
                Millis::from_secs(1),
                Millis::from_secs(2),
                Millis::from_secs(3)
            ]
        );
    }

    #[test]
    fn normal_arrivals_have_reasonable_moments() {
        let times = Arrivals::Normal {
            mean_secs: 0.25,
            std_secs: 0.125,
        }
        .times(5000, 42);
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let m = stats::mean(&gaps);
        assert!((m - 0.25).abs() < 0.02, "mean gap {m}");
    }
}
