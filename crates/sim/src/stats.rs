//! Small statistics toolbox: moments, percentiles, and the chi-squared
//! skewness measure used by §7.5.
//!
//! The paper quantifies workload skew by the confidence with which a
//! chi-squared test rejects "templates are uniformly represented". That
//! needs the regularized lower incomplete gamma function `P(s, x)`, which is
//! implemented here from scratch (series expansion for `x < s + 1`,
//! Lentz's continued fraction otherwise, with a Lanczos log-gamma).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Nearest-rank percentile of an unsorted slice (`p` in (0, 100]).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty slice");
    assert!(p > 0.0 && p <= 100.0, "percentile p out of range: {p}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let k = (((p / 100.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[k - 1]
}

/// Pearson's chi-squared statistic of observed template counts against the
/// uniform null hypothesis.
pub fn chi_squared_stat(observed: &[u32]) -> f64 {
    let total: u64 = observed.iter().map(|&c| c as u64).sum();
    if observed.is_empty() || total == 0 {
        return 0.0;
    }
    let expected = total as f64 / observed.len() as f64;
    observed
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// The confidence `P(X² ≤ stat)` with which the uniform hypothesis is
/// rejected — the paper's x-axis in Figures 20–21 (0 = perfectly uniform,
/// →1 = single-template batches). `dof` is `num_templates - 1`.
pub fn chi_squared_confidence(stat: f64, dof: usize) -> f64 {
    if dof == 0 || stat <= 0.0 {
        return 0.0;
    }
    lower_regularized_gamma(dof as f64 / 2.0, stat / 2.0)
}

/// Regularized lower incomplete gamma `P(s, x) = γ(s, x) / Γ(s)`.
pub fn lower_regularized_gamma(s: f64, x: f64) -> f64 {
    assert!(s > 0.0, "shape must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x < s + 1.0 {
        // Series: P(s,x) = x^s e^-x / Γ(s+1) * Σ x^n Γ(s+1)/Γ(s+1+n)
        let mut term = 1.0 / s;
        let mut sum = term;
        let mut n = 1.0;
        while n < 1000.0 {
            term *= x / (s + n);
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
            n += 1.0;
        }
        (sum * (-x + s * x.ln() - ln_gamma(s)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(s,x) (modified Lentz).
        let mut b = x + 1.0 - s;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..1000 {
            let an = -(i as f64) * (i as f64 - s);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + s * x.ln() - ln_gamma(s)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 90.0), 9.0);
        assert_eq!(percentile(&xs, 100.0), 10.0);
        assert_eq!(percentile(&xs, 1.0), 1.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn chi_squared_uniform_is_zero() {
        assert_eq!(chi_squared_stat(&[5, 5, 5, 5]), 0.0);
        assert_eq!(chi_squared_confidence(0.0, 3), 0.0);
    }

    #[test]
    fn chi_squared_skew_increases_confidence() {
        let mild = chi_squared_stat(&[6, 5, 5, 4]);
        let heavy = chi_squared_stat(&[17, 1, 1, 1]);
        assert!(heavy > mild);
        let c_mild = chi_squared_confidence(mild, 3);
        let c_heavy = chi_squared_confidence(heavy, 3);
        assert!(c_heavy > c_mild);
        assert!(c_heavy > 0.99);
        assert!((0.0..=1.0).contains(&c_mild));
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn regularized_gamma_matches_chi_squared_table() {
        // Chi-squared CDF with k dof at x is P(k/2, x/2).
        // Known: CDF of chi2(1) at 3.841 ≈ 0.95; chi2(9) at 16.919 ≈ 0.95.
        assert!((lower_regularized_gamma(0.5, 3.841 / 2.0) - 0.95).abs() < 1e-3);
        assert!((lower_regularized_gamma(4.5, 16.919 / 2.0) - 0.95).abs() < 1e-3);
        // Exponential special case: P(1, x) = 1 - e^-x.
        for x in [0.1, 1.0, 5.0] {
            assert!((lower_regularized_gamma(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        // Monotone in x.
        assert!(lower_regularized_gamma(2.0, 1.0) < lower_regularized_gamma(2.0, 2.0));
    }
}
