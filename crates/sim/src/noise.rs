//! Latency-prediction error injection (§7.5, Figure 22).
//!
//! WiSeDB consumes latency *predictions*; real predictors err. The paper
//! models this as Gaussian error proportional to the true latency and
//! observes that large errors make queries ambiguous between templates —
//! WiSeDB matches an unknown query to the template with the closest
//! predicted latency (§6.2), so a mispredicted query lands on the wrong
//! template and is scheduled with the wrong latency estimate.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

use wisedb_core::{Millis, TemplateId, VmTypeId, Workload, WorkloadSpec};

use crate::generator::Gaussian;

/// A workload as WiSeDB *perceives* it under prediction error, alongside
/// the ground truth needed to execute and account it honestly.
#[derive(Debug, Clone)]
pub struct PerceivedWorkload {
    /// The workload with possibly-misassigned templates; this is what the
    /// scheduler sees and plans with.
    pub perceived: Workload,
    /// The true template of each query, indexed by query id.
    pub true_templates: Vec<TemplateId>,
    /// The true execution latency of each query (its true template's
    /// latency on the reference VM type), indexed by query id.
    pub true_latencies: Vec<Millis>,
}

impl PerceivedWorkload {
    /// Fraction of queries whose perceived template differs from the truth.
    pub fn misassignment_rate(&self) -> f64 {
        if self.true_templates.is_empty() {
            return 0.0;
        }
        let wrong = self
            .perceived
            .queries()
            .iter()
            .zip(&self.true_templates)
            .filter(|(q, &t)| q.template != t)
            .count();
        wrong as f64 / self.true_templates.len() as f64
    }
}

/// Simulates a latency predictor with relative error `sigma` (standard
/// deviation as a fraction of the true latency): each query's predicted
/// latency is `true * (1 + N(0, sigma))`, and the query is assigned to the
/// template with the nearest reference latency — the paper's closest-
/// predicted-latency rule.
pub fn perceive_workload(
    spec: &WorkloadSpec,
    workload: &Workload,
    sigma: f64,
    seed: u64,
) -> PerceivedWorkload {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = Gaussian::new(0.0, sigma);
    let reference: Vec<Millis> = spec
        .template_ids()
        .map(|t| {
            spec.latency(t, VmTypeId(0))
                .or_else(|| spec.template(t).ok().and_then(|qt| qt.min_latency()))
                .unwrap_or(Millis::ZERO)
        })
        .collect();

    let mut perceived_templates = Vec::with_capacity(workload.len());
    let mut true_templates = Vec::with_capacity(workload.len());
    let mut true_latencies = Vec::with_capacity(workload.len());
    for q in workload.queries() {
        let true_latency = reference[q.template.index()];
        let factor = (1.0 + noise.sample(&mut rng)).max(0.05);
        let predicted = true_latency.mul_f64(factor);
        let nearest = reference
            .iter()
            .enumerate()
            .min_by_key(|(_, &r)| {
                let a = r.as_millis();
                let b = predicted.as_millis();
                a.abs_diff(b)
            })
            .map(|(i, _)| TemplateId(i as u32))
            .unwrap_or(q.template);
        perceived_templates.push(nearest);
        true_templates.push(q.template);
        true_latencies.push(true_latency);
    }
    PerceivedWorkload {
        perceived: Workload::from_templates(perceived_templates),
        true_templates,
        true_latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::tpch_like;
    use crate::generator::uniform_workload;

    #[test]
    fn zero_error_preserves_templates() {
        let spec = tpch_like(10);
        let w = uniform_workload(&spec, 100, 5);
        let p = perceive_workload(&spec, &w, 0.0, 5);
        assert_eq!(p.misassignment_rate(), 0.0);
        assert_eq!(p.perceived, w);
        // True latencies equal the catalog's.
        for (q, &lat) in w.queries().iter().zip(&p.true_latencies) {
            assert_eq!(lat, spec.latency(q.template, VmTypeId(0)).unwrap());
        }
    }

    #[test]
    fn misassignment_grows_with_error() {
        let spec = tpch_like(10);
        let w = uniform_workload(&spec, 500, 8);
        let low = perceive_workload(&spec, &w, 0.02, 8).misassignment_rate();
        let mid = perceive_workload(&spec, &w, 0.10, 8).misassignment_rate();
        let high = perceive_workload(&spec, &w, 0.40, 8).misassignment_rate();
        assert!(low < mid && mid < high, "low={low} mid={mid} high={high}");
        assert!(high > 0.5, "40% error should confuse most queries: {high}");
        // Our catalog spaces templates ~27s apart (evenly over 2–6 min), so
        // a 2% relative error (~5s on the mean query) rarely crosses the
        // half-gap while 10% often does. The paper's clustered TPC-H
        // latencies shift these onsets; the *shape* (accelerating
        // degradation) is what matters.
        assert!(low < 0.35, "low={low}");
    }

    #[test]
    fn misassignments_stay_near_the_true_template() {
        let spec = tpch_like(10);
        let w = uniform_workload(&spec, 300, 13);
        let p = perceive_workload(&spec, &w, 0.10, 13);
        let mut jumps: Vec<i64> = p
            .perceived
            .queries()
            .iter()
            .zip(&p.true_templates)
            .map(|(q, &truth)| (q.template.0 as i64 - truth.0 as i64).abs())
            .collect();
        jumps.sort_unstable();
        // Median misassignment distance is small; extremes are rare tails.
        assert!(jumps[jumps.len() / 2] <= 1);
        assert!(jumps[(jumps.len() * 9) / 10] <= 3);
    }
}
