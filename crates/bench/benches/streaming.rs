//! Criterion benches for the streaming runtime: event-loop throughput
//! (arrivals scheduled per second of wall clock) as the arrival rate and
//! the planner vary. Training happens outside the timed region.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use wisedb::advisor::{ModelGenerator, OnlineConfig, OnlineScheduler};
use wisedb::prelude::*;
use wisedb_runtime::generate_stream;

const STREAM_LEN: usize = 200;

fn bench_training() -> ModelConfig {
    ModelConfig {
        num_samples: 60,
        sample_size: 9,
        seed: 0xC0FFEE,
        ..ModelConfig::fast()
    }
}

fn streaming_throughput(c: &mut Criterion) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let (model, artifacts) = ModelGenerator::new(spec.clone(), goal, bench_training())
        .train_with_artifacts()
        .unwrap();

    let mut group = c.benchmark_group("streaming/throughput");
    group.sample_size(3);
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    for &rate in &[0.5f64, 2.0, 8.0] {
        let mut process =
            PoissonProcess::per_second(rate, TemplateMix::uniform(spec.num_templates()));
        let stream = generate_stream(&mut process, STREAM_LEN, 42);
        group.bench_with_input(BenchmarkId::from_parameter(rate), &stream, |b, stream| {
            b.iter_batched(
                || {
                    let online = OnlineConfig {
                        training: bench_training(),
                        age_quantum: Millis::from_secs(30),
                        ..OnlineConfig::default()
                    };
                    let scheduler =
                        OnlineScheduler::with_model(model.clone(), artifacts.clone(), online);
                    WorkloadService::with_scheduler(scheduler, RuntimeConfig::default())
                },
                |mut svc| svc.run_stream(stream).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn streaming_vs_goal(c: &mut Criterion) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    // A brisk rate keeps batches mostly fresh: non-monotone goals stack
    // queries on the open VM at slow rates, which blows up the aged-path
    // retrains and the guard search far beyond bench scale.
    let mut process = PoissonProcess::per_second(4.0, TemplateMix::uniform(spec.num_templates()));
    let stream = generate_stream(&mut process, STREAM_LEN, 7);

    let mut group = c.benchmark_group("streaming/goal");
    group.sample_size(3);
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let (model, artifacts) = ModelGenerator::new(spec.clone(), goal, bench_training())
            .train_with_artifacts()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &stream,
            |b, stream| {
                b.iter_batched(
                    || {
                        let online = OnlineConfig {
                            training: bench_training(),
                            age_quantum: Millis::from_secs(30),
                            ..OnlineConfig::default()
                        };
                        let scheduler =
                            OnlineScheduler::with_model(model.clone(), artifacts.clone(), online);
                        WorkloadService::with_scheduler(scheduler, RuntimeConfig::default())
                    },
                    |mut svc| svc.run_stream(stream).unwrap(),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn parallel_training(c: &mut Criterion) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    // Enough per-sample A* work for the worker pool to matter: at the tiny
    // 60-sample config the serial tree induction dominates the profile.
    let training = ModelConfig {
        num_samples: 400,
        sample_size: 12,
        seed: 0xC0FFEE,
        ..ModelConfig::fast()
    };
    let mut group = c.benchmark_group("streaming/train_threads");
    group.sample_size(5);
    for &threads in &[1usize, 2, 4, 0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if threads == 0 {
                "auto".to_string()
            } else {
                threads.to_string()
            }),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    ModelGenerator::new(
                        spec.clone(),
                        goal.clone(),
                        training.clone().with_threads(threads),
                    )
                    .train()
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    streaming_throughput,
    streaming_vs_goal,
    parallel_training
);
criterion_main!(benches);
