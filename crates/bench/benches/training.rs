//! Criterion benches for model training (Figures 14–15 territory):
//! time to train a decision model as templates and VM types scale.
//!
//! These use reduced sample counts so `cargo bench` stays minutes-scale;
//! the `fig14`/`fig15` report binaries measure the full configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wisedb::advisor::{ModelConfig, ModelGenerator};
use wisedb::prelude::*;

fn bench_config() -> ModelConfig {
    ModelConfig {
        num_samples: 60,
        sample_size: 9,
        seed: 0xC0FFEE,
        ..ModelConfig::fast()
    }
}

fn training_vs_templates(c: &mut Criterion) {
    let mut group = c.benchmark_group("training/templates");
    group.sample_size(10);
    for &n in &[5usize, 10, 15, 20] {
        let spec = wisedb::sim::catalog::tpch_like(n);
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                ModelGenerator::new(spec.clone(), goal.clone(), bench_config())
                    .train()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn training_vs_vm_types(c: &mut Criterion) {
    let mut group = c.benchmark_group("training/vm_types");
    group.sample_size(10);
    for &k in &[1usize, 5, 10] {
        let spec = wisedb::sim::catalog::tpch_like_k_types(10, k);
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                ModelGenerator::new(spec.clone(), goal.clone(), bench_config())
                    .train()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn training_vs_goal(c: &mut Criterion) {
    let mut group = c.benchmark_group("training/goal");
    group.sample_size(10);
    let spec = wisedb::sim::catalog::tpch_like(10);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| {
                ModelGenerator::new(spec.clone(), goal.clone(), bench_config())
                    .train()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    training_vs_templates,
    training_vs_vm_types,
    training_vs_goal
);
criterion_main!(benches);
