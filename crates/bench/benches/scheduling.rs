//! Criterion benches for runtime scheduling (Figure 17 territory): batch
//! scheduling throughput of a trained model, plus the A* kernel that
//! training runs thousands of times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use wisedb::advisor::{DecisionModel, ModelConfig, ModelGenerator};
use wisedb::prelude::*;

fn trained_model() -> (WorkloadSpec, PerformanceGoal, DecisionModel) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let model = ModelGenerator::new(
        spec.clone(),
        goal.clone(),
        ModelConfig {
            num_samples: 120,
            sample_size: 9,
            seed: 0xFACADE,
            ..ModelConfig::fast()
        },
    )
    .train()
    .unwrap();
    (spec, goal, model)
}

fn batch_scheduling(c: &mut Criterion) {
    let (spec, _goal, model) = trained_model();
    let mut group = c.benchmark_group("scheduling/batch");
    group.sample_size(10);
    for &size in &[1_000usize, 10_000, 30_000] {
        let workload = wisedb::sim::generator::uniform_workload(&spec, size, 99);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| model.schedule_batch(&workload).unwrap())
        });
    }
    group.finish();
}

fn astar_solve_kernel(c: &mut Criterion) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let mut group = c.benchmark_group("search/astar_sample");
    group.sample_size(20);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let workload = wisedb::sim::generator::uniform_workload(&spec, 18, 7);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| AStarSearcher::new(&spec, &goal).solve(&workload).unwrap())
        });
    }
    group.finish();
}

fn baseline_heuristics(c: &mut Criterion) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let workload = wisedb::sim::generator::uniform_workload(&spec, 5_000, 3);
    let mut group = c.benchmark_group("scheduling/baselines_5k");
    group.sample_size(20);
    for h in Heuristic::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(h.name()), &h, |b, &h| {
            b.iter(|| h.schedule(&spec, &goal, &workload).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    batch_scheduling,
    astar_solve_kernel,
    baseline_heuristics
);
criterion_main!(benches);
