//! Criterion benches for adaptive modeling (Figure 16 territory): re-train
//! for a tightened goal with memo reuse versus training from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wisedb::advisor::{ModelConfig, ModelGenerator};
use wisedb::prelude::*;

fn config() -> ModelConfig {
    ModelConfig {
        num_samples: 60,
        sample_size: 9,
        seed: 0xADA7,
        ..ModelConfig::fast()
    }
}

fn adaptive_vs_fresh(c: &mut Criterion) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let base = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let generator = ModelGenerator::new(spec.clone(), base.clone(), config());

    let mut group = c.benchmark_group("adaptive/retrain");
    group.sample_size(10);
    for &shift in &[0.2f64, 0.4, 0.8] {
        let goal = base.tighten_pct(&spec, shift);
        group.bench_with_input(
            BenchmarkId::new("reuse", format!("{:.0}%", shift * 100.0)),
            &shift,
            |b, _| {
                b.iter_batched(
                    || generator.train_with_artifacts().unwrap().1,
                    |mut artifacts| generator.retrain_tightened(&goal, &mut artifacts).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fresh", format!("{:.0}%", shift * 100.0)),
            &shift,
            |b, _| {
                b.iter(|| {
                    ModelGenerator::new(spec.clone(), goal.clone(), config())
                        .train()
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, adaptive_vs_fresh);
criterion_main!(benches);
