//! The multi-tenant consolidation scenario: shared fleet vs isolated
//! fleets.
//!
//! Three tenant SLA classes — gold (per-query deadlines, priority 2),
//! silver (workload max-latency, priority 1), bronze (average latency,
//! priority 0) — each with its own Poisson arrival stream, are run two
//! ways over identical traffic:
//!
//! * **shared** — one [`WorkloadService`] scheduling all three classes
//!   onto one fleet (per-class decision models, shared open VM);
//! * **isolated** — one single-class service per class, each renting its
//!   own fleet (the pre-multi-tenant deployment: one fleet per goal).
//!
//! The interesting number is the **consolidation saving**: the shared
//! fleet packs one class's queries into another's rented-but-idle VM
//! tails, so it runs the same traffic with fewer VM rentals and start-up
//! fees. Both runs reuse the same per-class base models, so the
//! comparison isolates *fleet sharing* — not model quality.
//!
//! Used by `--bin multitenant` (the report) and `--bin regress` (counter
//! guards: completions, shared/isolated VM rentals).

use wisedb::prelude::*;
use wisedb_advisor::{MultiScheduler, TrainingArtifacts};
use wisedb_runtime::StreamReport;

use crate::Scale;

/// The scenario's three SLA classes over `spec`.
pub fn classes(spec: &WorkloadSpec) -> Vec<SlaClass> {
    vec![
        SlaClass::new(
            "gold",
            PerformanceGoal::paper_default(GoalKind::PerQuery, spec).expect("defaults exist"),
        )
        .with_priority(2),
        SlaClass::new(
            "silver",
            PerformanceGoal::paper_default(GoalKind::MaxLatency, spec).expect("defaults exist"),
        )
        .with_priority(1),
        SlaClass::new(
            "bronze",
            PerformanceGoal::paper_default(GoalKind::AverageLatency, spec).expect("defaults exist"),
        ),
    ]
}

/// Per-class Poisson arrival rates (queries per virtual second): gold is
/// the thin premium stream, bronze the heavy background one. Each class
/// alone is *sparse* against the catalog's 120–360 s query latencies
/// (mean gaps of 5–6.7 minutes), so an isolated fleet mostly pays a fresh
/// VM start-up per query; the merged stream's ~2-minute gaps are dense
/// enough that the shared fleet keeps finding a busy open VM whose tail a
/// deadline-feasible query can ride — that gap is the consolidation
/// saving.
pub const RATES: [f64; 3] = [1.0 / 400.0, 1.0 / 350.0, 1.0 / 300.0];

/// Arrivals per class at each scale.
pub fn arrivals_per_class(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 50,
        Scale::Std => 150,
        Scale::Paper => 300,
    }
}

/// Everything one scenario run produces.
pub struct MultiTenantOutcome {
    /// The three classes, in [`TenantId`] order.
    pub classes: Vec<SlaClass>,
    /// The shared-fleet run.
    pub shared: StreamReport,
    /// One isolated single-class run per class (same order, same
    /// sub-streams, same base models).
    pub isolated: Vec<StreamReport>,
}

impl MultiTenantOutcome {
    /// Total cost (infrastructure + penalties) of the shared fleet.
    pub fn shared_total(&self) -> Money {
        self.shared.last.total_cost()
    }

    /// Total cost summed across the isolated fleets.
    pub fn isolated_total(&self) -> Money {
        self.isolated.iter().map(|r| r.last.total_cost()).sum()
    }

    /// VMs the shared fleet rented.
    pub fn shared_vms(&self) -> u64 {
        self.shared.last.vms_provisioned
    }

    /// VM rentals summed across the isolated fleets.
    pub fn isolated_vms(&self) -> u64 {
        self.isolated.iter().map(|r| r.last.vms_provisioned).sum()
    }

    /// Consolidation saving: how much of the isolated deployments' total
    /// cost the shared fleet avoids (positive = sharing is cheaper).
    pub fn saving_pct(&self) -> f64 {
        let iso = self.isolated_total().as_dollars();
        if iso <= 0.0 {
            return 0.0;
        }
        (1.0 - self.shared_total().as_dollars() / iso) * 100.0
    }
}

/// Online configuration shared by both deployments: light in-loop
/// retraining, coarse age quantum (minutes-scale queries).
pub fn online_config() -> OnlineConfig {
    OnlineConfig {
        training: ModelConfig {
            num_samples: 150,
            sample_size: 9,
            seed: 0xBE7C4,
            ..ModelConfig::fast()
        },
        age_quantum: Millis::from_secs(30),
        ..OnlineConfig::default()
    }
}

/// Runs the scenario at `scale` on `spec` and returns both deployments'
/// reports. Deterministic: fixed per-class stream seeds, fixed training
/// seeds, and both deployments share the same trained base models.
pub fn run(spec: &WorkloadSpec, scale: Scale) -> MultiTenantOutcome {
    let class_set = classes(spec);
    let online = online_config();
    let n = arrivals_per_class(scale);
    let mix = TemplateMix::uniform(spec.num_templates());

    // One base model per class, shared by both deployments.
    eprintln!("multitenant: training {} class models...", class_set.len());
    let mut trained: Vec<(DecisionModel, TrainingArtifacts)> = Vec::new();
    for class in &class_set {
        let generator = ModelGenerator::new(
            spec.clone(),
            class.goal.clone(),
            scale.training().with_seed(0xC1A55),
        );
        let (model, artifacts) = generator
            .train_with_artifacts()
            .expect("training on catalog specs succeeds");
        eprintln!("  {}: {:.2}s", class.name, model.stats().training_secs);
        trained.push((model, artifacts));
    }

    // One tagged Poisson sub-stream per class.
    let sub_streams: Vec<Vec<wisedb_core::ArrivingQuery>> = class_set
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let mut process = PoissonProcess::per_second(RATES[i], mix.clone());
            generate_class_stream(&mut process, n, 0x5EED + i as u64, TenantId(i as u32))
        })
        .collect();

    // Shared fleet: all classes, one service.
    let schedulers: Vec<OnlineScheduler> = trained
        .iter()
        .map(|(m, a)| OnlineScheduler::with_model(m.clone(), a.clone(), online.clone()))
        .collect();
    let multi = MultiScheduler::with_schedulers(class_set.clone(), schedulers, online.clone())
        .expect("class schedulers share the spec");
    let mut shared_svc = wisedb_runtime::WorkloadService::with_multi(
        multi,
        RuntimeConfig {
            online: online.clone(),
            ..RuntimeConfig::default()
        },
    );
    let shared = shared_svc
        .run_stream(&merge_streams(sub_streams.clone()))
        .expect("shared run completes");

    // Isolated fleets: one single-class service per class over its own
    // sub-stream (retagged to the default class — each service knows only
    // one class).
    let isolated: Vec<StreamReport> = class_set
        .iter()
        .zip(&trained)
        .zip(&sub_streams)
        .map(|((_, (model, artifacts)), stream)| {
            let scheduler =
                OnlineScheduler::with_model(model.clone(), artifacts.clone(), online.clone());
            let mut svc = wisedb_runtime::WorkloadService::with_scheduler(
                scheduler,
                RuntimeConfig {
                    online: online.clone(),
                    ..RuntimeConfig::default()
                },
            );
            let solo: Vec<wisedb_core::ArrivingQuery> = stream
                .iter()
                .map(|a| wisedb_core::ArrivingQuery::new(a.template, a.arrival))
                .collect();
            svc.run_stream(&solo).expect("isolated run completes")
        })
        .collect();

    MultiTenantOutcome {
        classes: class_set,
        shared,
        isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic_and_conserves_work() {
        let spec = wisedb::sim::catalog::tpch_like(4);
        let a = run(&spec, Scale::Quick);
        assert_eq!(a.classes.len(), 3);
        let n = arrivals_per_class(Scale::Quick) as u64;
        assert_eq!(a.shared.last.completed, 3 * n);
        for (i, iso) in a.isolated.iter().enumerate() {
            assert_eq!(iso.last.completed, n, "class {i}");
        }
        // Per-class rows in the shared run cover the same work as the
        // isolated runs.
        for (row, iso) in a.shared.last.classes.iter().zip(&a.isolated) {
            assert_eq!(row.completed, iso.last.completed);
        }
        let b = run(&spec, Scale::Quick);
        assert_eq!(a.shared.completions, b.shared.completions);
        assert_eq!(a.shared_vms(), b.shared_vms());
        assert_eq!(a.isolated_vms(), b.isolated_vms());
    }
}
