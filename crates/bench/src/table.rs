//! Minimal fixed-width table printer for the figure reports.

/// A simple column-aligned table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["metric", "value"]);
        t.row(&["Max".to_string(), "1.0".to_string()]);
        t.row(&["PerQuery".to_string(), "12.5".to_string()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("metric"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }
}
