//! # wisedb-bench
//!
//! The benchmark harness that regenerates every data-bearing figure of the
//! WiSeDB evaluation (§7, Figures 9–22). One report binary per figure
//! (`cargo run -p wisedb-bench --release --bin figNN`), plus Criterion
//! benches for the timing-centric figures, plus the `streaming` binary and
//! bench that sweep the online runtime's arrival rate to saturation.
//!
//! Scale is controlled by the `WISEDB_SCALE` environment variable:
//!
//! * `quick` — minutes-scale smoke run (small training sets, few repeats);
//! * `std` *(default)* — the calibration used for EXPERIMENTS.md;
//! * `paper` — the paper's full N = 3000 × m = 18 training configuration.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::io::Write as _;

use wisedb_advisor::{ModelConfig, ModelGenerator};
use wisedb_core::{GoalKind, Money, PerformanceGoal, WorkloadSpec};

pub mod multitenant;
pub mod regress;
pub mod scaling;
pub mod serve_load;
pub mod table;
pub mod trace_check;

pub use table::Table;

/// Benchmark scale, from `WISEDB_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale.
    Quick,
    /// Default calibration.
    Std,
    /// The paper's configuration.
    Paper,
}

impl Scale {
    /// Reads `WISEDB_SCALE` (default [`Scale::Std`]).
    pub fn from_env() -> Scale {
        match std::env::var("WISEDB_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("paper") => Scale::Paper,
            _ => Scale::Std,
        }
    }

    /// Training configuration at this scale.
    pub fn training(self) -> ModelConfig {
        match self {
            Scale::Quick => ModelConfig {
                num_samples: 150,
                sample_size: 9,
                seed: 0xBE7C4,
                ..ModelConfig::fast()
            },
            Scale::Std => ModelConfig {
                num_samples: 800,
                sample_size: 12,
                seed: 0xBE7C4,
                ..ModelConfig::fast()
            },
            Scale::Paper => ModelConfig {
                seed: 0xBE7C4,
                ..ModelConfig::paper()
            },
        }
    }

    /// Workloads averaged per measured point (the paper uses 5).
    pub fn repeats(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Std | Scale::Paper => 5,
        }
    }
}

/// Trains one model per goal kind on `spec`, reporting progress.
pub fn train_all_goals(
    spec: &WorkloadSpec,
    scale: Scale,
) -> Vec<(GoalKind, PerformanceGoal, wisedb_advisor::DecisionModel)> {
    GoalKind::ALL
        .iter()
        .map(|&kind| {
            let goal = PerformanceGoal::paper_default(kind, spec)
                .expect("catalog specs always admit defaults");
            eprint!("  training {} model... ", kind.name());
            std::io::stderr().flush().ok();
            let model = ModelGenerator::new(spec.clone(), goal.clone(), scale.training())
                .train()
                .expect("training on catalog specs succeeds");
            eprintln!("{:.2}s", model.stats().training_secs);
            (kind, goal, model)
        })
        .collect()
}

/// `(x / reference − 1)` as a percentage; the "% above optimal" metric.
pub fn pct_above(x: Money, reference: Money) -> f64 {
    if reference.as_dollars() <= 0.0 {
        return 0.0;
    }
    (x.as_dollars() / reference.as_dollars() - 1.0) * 100.0
}

/// The search strategy requested for this bench run, if any: the
/// `--strategy` CLI flag wins, then the `WISEDB_STRATEGY` environment
/// variable (`exact` | `beam[:width]` | `anytime[:weight[:decay]]`).
/// Invalid values abort with the parse error — a nightly sweep must not
/// silently fall back to the default solver.
pub fn strategy_override() -> Option<wisedb_search::SearchStrategy> {
    let args: Vec<String> = std::env::args().collect();
    let from_cli = args
        .iter()
        .position(|a| a == "--strategy")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("--strategy requires a value"))
                .clone()
        })
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--strategy=").map(str::to_string))
        });
    let raw = from_cli.or_else(|| std::env::var("WISEDB_STRATEGY").ok())?;
    Some(raw.parse().unwrap_or_else(|e| panic!("{e}")))
}

/// The Chrome-trace output path requested for this bench run, if any:
/// `--trace <path>` or `--trace=<path>` (mirrors [`strategy_override`]'s
/// CLI conventions). An absent value aborts — a CI smoke must not
/// silently run untraced.
pub fn trace_path_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--trace")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("--trace requires a path"))
                .clone()
        })
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--trace=").map(str::to_string))
        })
        .map(std::path::PathBuf::from)
}

/// If `--trace` was passed, installs a full-span `wisedb-obs` collector
/// and returns it with the output path. Call [`finish_trace`] when the
/// measured section is over.
pub fn trace_collector_from_args() -> Option<(wisedb_obs::Collector, std::path::PathBuf)> {
    let path = trace_path_from_args()?;
    Some((wisedb_obs::install(wisedb_obs::Level::Spans), path))
}

/// Finishes a collector started by [`trace_collector_from_args`], writes
/// the Chrome trace to its path, and reports the span totals to stderr.
pub fn finish_trace(collector: wisedb_obs::Collector, path: &std::path::Path) {
    let trace = collector.finish();
    let chrome = trace.to_chrome();
    std::fs::write(path, &chrome).unwrap_or_else(|e| panic!("writing {path:?} failed: {e}"));
    eprintln!(
        "trace: {} events -> {} ({} bytes)",
        trace.events.len(),
        path.display(),
        chrome.len()
    );
}

/// The expansion-budget override, if any: `WISEDB_NODE_LIMIT` (all
/// strategies honor it — see
/// [`SearchConfig::node_limit`](wisedb_search::SearchConfig::node_limit)).
pub fn node_limit_override() -> Option<usize> {
    let raw = std::env::var("WISEDB_NODE_LIMIT").ok()?;
    Some(
        raw.parse()
            .unwrap_or_else(|_| panic!("invalid WISEDB_NODE_LIMIT {raw:?}")),
    )
}

/// The oracle's solver configuration: exact A* with a 2 M-expansion budget
/// by default; `WISEDB_ORACLE_LIMIT` (legacy) or `WISEDB_NODE_LIMIT` set
/// the budget, and [`strategy_override`] selects the strategy — so nightly
/// can sweep `exact`/`beam`/`anytime` oracles without recompiling.
pub fn oracle_config() -> wisedb_search::SearchConfig {
    let mut config = wisedb_search::SearchConfig {
        node_limit: std::env::var("WISEDB_ORACLE_LIMIT")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(2_000_000usize),
        ..wisedb_search::SearchConfig::default()
    };
    if let Some(limit) = node_limit_override() {
        config.node_limit = limit;
    }
    if let Some(strategy) = strategy_override() {
        config.strategy = strategy;
    }
    config
}

/// Applies the `--strategy`/`WISEDB_STRATEGY` and `WISEDB_NODE_LIMIT`
/// overrides to an existing solver configuration, leaving other tunables
/// (e.g. a bench's own default budget) untouched.
pub fn apply_search_overrides(config: &mut wisedb_search::SearchConfig) {
    if let Some(limit) = node_limit_override() {
        config.node_limit = limit;
    }
    if let Some(strategy) = strategy_override() {
        config.strategy = strategy;
    }
}

/// The optimal-schedule oracle used by the "vs Optimal" figures: the
/// [`oracle_config`] solver (exact A* with a node budget unless
/// overridden). Returns the cost and whether optimality was *proven*;
/// unproven values are best-found upper bounds and are flagged in the
/// reports.
pub fn oracle_cost(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    workload: &wisedb_core::Workload,
) -> (Money, bool) {
    let (cost, stats) = oracle_cost_detailed(spec, goal, workload);
    (cost, stats.optimal)
}

/// Like [`oracle_cost`], also returning the full search counters (the
/// suboptimality bound, incumbent improvements, prunes).
pub fn oracle_cost_detailed(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    workload: &wisedb_core::Workload,
) -> (Money, wisedb_search::SearchStats) {
    let result = wisedb_search::Solver::new(spec, goal)
        .with_config(oracle_config())
        .solve(workload)
        .expect("oracle search on catalog specs succeeds");
    (result.cost, result.stats)
}

/// Formats an oracle cost, starring unproven (upper-bound) values.
pub fn oracle_note(proven: bool) -> &'static str {
    if proven {
        ""
    } else {
        "*"
    }
}

/// Formats money in the paper's cents.
pub fn cents(m: Money) -> String {
    format!("{:.1}", m.as_cents())
}

/// Formats money in dollars.
pub fn dollars(m: Money) -> String {
    format!("{:.2}", m.as_dollars())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_above_basics() {
        assert_eq!(
            pct_above(Money::from_dollars(1.10), Money::from_dollars(1.0)),
            10.000000000000009
        );
        assert_eq!(pct_above(Money::ZERO, Money::ZERO), 0.0);
    }

    #[test]
    fn scale_configs_are_ordered() {
        assert!(Scale::Quick.training().num_samples < Scale::Std.training().num_samples);
        assert!(Scale::Std.training().num_samples < Scale::Paper.training().num_samples);
        assert_eq!(Scale::Paper.training().num_samples, 3000);
        assert_eq!(Scale::Paper.training().sample_size, 18);
    }
}
