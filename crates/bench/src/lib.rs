//! # wisedb-bench
//!
//! The benchmark harness that regenerates every data-bearing figure of the
//! WiSeDB evaluation (§7, Figures 9–22). One report binary per figure
//! (`cargo run -p wisedb-bench --release --bin figNN`), plus Criterion
//! benches for the timing-centric figures, plus the `streaming` binary and
//! bench that sweep the online runtime's arrival rate to saturation.
//!
//! Scale is controlled by the `WISEDB_SCALE` environment variable:
//!
//! * `quick` — minutes-scale smoke run (small training sets, few repeats);
//! * `std` *(default)* — the calibration used for EXPERIMENTS.md;
//! * `paper` — the paper's full N = 3000 × m = 18 training configuration.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::io::Write as _;

use wisedb_advisor::{ModelConfig, ModelGenerator};
use wisedb_core::{GoalKind, Money, PerformanceGoal, WorkloadSpec};

pub mod multitenant;
pub mod regress;
pub mod table;

pub use table::Table;

/// Benchmark scale, from `WISEDB_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale.
    Quick,
    /// Default calibration.
    Std,
    /// The paper's configuration.
    Paper,
}

impl Scale {
    /// Reads `WISEDB_SCALE` (default [`Scale::Std`]).
    pub fn from_env() -> Scale {
        match std::env::var("WISEDB_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("paper") => Scale::Paper,
            _ => Scale::Std,
        }
    }

    /// Training configuration at this scale.
    pub fn training(self) -> ModelConfig {
        match self {
            Scale::Quick => ModelConfig {
                num_samples: 150,
                sample_size: 9,
                seed: 0xBE7C4,
                ..ModelConfig::fast()
            },
            Scale::Std => ModelConfig {
                num_samples: 800,
                sample_size: 12,
                seed: 0xBE7C4,
                ..ModelConfig::fast()
            },
            Scale::Paper => ModelConfig {
                seed: 0xBE7C4,
                ..ModelConfig::paper()
            },
        }
    }

    /// Workloads averaged per measured point (the paper uses 5).
    pub fn repeats(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Std | Scale::Paper => 5,
        }
    }
}

/// Trains one model per goal kind on `spec`, reporting progress.
pub fn train_all_goals(
    spec: &WorkloadSpec,
    scale: Scale,
) -> Vec<(GoalKind, PerformanceGoal, wisedb_advisor::DecisionModel)> {
    GoalKind::ALL
        .iter()
        .map(|&kind| {
            let goal = PerformanceGoal::paper_default(kind, spec)
                .expect("catalog specs always admit defaults");
            eprint!("  training {} model... ", kind.name());
            std::io::stderr().flush().ok();
            let model = ModelGenerator::new(spec.clone(), goal.clone(), scale.training())
                .train()
                .expect("training on catalog specs succeeds");
            eprintln!("{:.2}s", model.stats().training_secs);
            (kind, goal, model)
        })
        .collect()
}

/// `(x / reference − 1)` as a percentage; the "% above optimal" metric.
pub fn pct_above(x: Money, reference: Money) -> f64 {
    if reference.as_dollars() <= 0.0 {
        return 0.0;
    }
    (x.as_dollars() / reference.as_dollars() - 1.0) * 100.0
}

/// The optimal-schedule oracle used by the "vs Optimal" figures: A* with a
/// node budget (override with `WISEDB_ORACLE_LIMIT`). Returns the cost and
/// whether optimality was *proven* (limit not hit); unproven values are
/// best-found upper bounds and are flagged in the reports.
pub fn oracle_cost(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    workload: &wisedb_core::Workload,
) -> (Money, bool) {
    let limit = std::env::var("WISEDB_ORACLE_LIMIT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000usize);
    let result = wisedb_search::AStarSearcher::new(spec, goal)
        .with_config(wisedb_search::SearchConfig { node_limit: limit })
        .solve(workload)
        .expect("oracle search on catalog specs succeeds");
    (result.cost, result.stats.optimal)
}

/// Formats an oracle cost, starring unproven (upper-bound) values.
pub fn oracle_note(proven: bool) -> &'static str {
    if proven {
        ""
    } else {
        "*"
    }
}

/// Formats money in the paper's cents.
pub fn cents(m: Money) -> String {
    format!("{:.1}", m.as_cents())
}

/// Formats money in dollars.
pub fn dollars(m: Money) -> String {
    format!("{:.2}", m.as_dollars())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_above_basics() {
        assert_eq!(
            pct_above(Money::from_dollars(1.10), Money::from_dollars(1.0)),
            10.000000000000009
        );
        assert_eq!(pct_above(Money::ZERO, Money::ZERO), 0.0);
    }

    #[test]
    fn scale_configs_are_ordered() {
        assert!(Scale::Quick.training().num_samples < Scale::Std.training().num_samples);
        assert!(Scale::Std.training().num_samples < Scale::Paper.training().num_samples);
        assert_eq!(Scale::Paper.training().num_samples, 3000);
        assert_eq!(Scale::Paper.training().sample_size, 18);
    }
}
