//! Warm-retrain bench: cold training vs [`ModelGenerator::retrain_from`].
//!
//! Training cost is dominated by the per-sample A* solves. The solve
//! cache canonicalizes every sample to its template multiset and memoizes
//! the solve, so a retrain whose sample mix overlaps a previous run's —
//! the drift loop's steady state — skips the overlapping searches
//! entirely. This binary measures that end to end, per goal kind:
//!
//! 1. **cold** — a fresh `train_with_artifacts` (empty cache).
//! 2. **warm identical** — `retrain_from` with the same seed: zero A*
//!    solves, bit-identical model (both asserted).
//! 3. **warm reseeded** — `retrain_from` with a different seed: only the
//!    signatures the new draw doesn't share with the cache are solved.
//!
//! ```text
//! WISEDB_SCALE=std cargo run --release -p wisedb-bench --bin train_warm
//! cargo run --release -p wisedb-bench --bin train_warm -- --smoke  # CI gate
//! ```
//!
//! `--smoke` exits non-zero unless every goal kind's identical-seed warm
//! retrain performed **zero** solves and reproduced the cold model bit
//! for bit. Wall-clock speedups are reported but never gated — they
//! regenerate EXPERIMENTS.md's warm-retrain table.

use std::time::Instant;

use wisedb::prelude::*;
use wisedb_bench::{Scale, Table};

fn config(scale: Scale, kind: GoalKind) -> ModelConfig {
    // Larger samples tilt the cold run toward its A* solves (the paper
    // trains at m = 18), which is exactly the cost the warm path removes.
    // Percentile goals run the anytime search, whose per-solve cost is
    // orders of magnitude above the monotone goals', so they train at a
    // smaller workload — the same per-goal sizing the regress A* bench uses.
    let num_samples = match scale {
        Scale::Quick => 150,
        Scale::Std => 600,
        Scale::Paper => 3000,
    };
    let sample_size = match (scale, kind) {
        (Scale::Quick, _) => 9,
        (Scale::Std, GoalKind::Percentile) => 12,
        (Scale::Std, _) => 16,
        (Scale::Paper, GoalKind::Percentile) => 14,
        (Scale::Paper, _) => 18,
    };
    ModelConfig {
        num_samples,
        sample_size,
        seed: 0x7EA1,
        ..ModelConfig::fast()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);

    let mut table = Table::new(
        "warm-path training: cold vs warm retrain",
        &[
            "goal",
            "queries",
            "cold ms",
            "warm ms",
            "speedup",
            "solves",
            "hits",
            "reseed ms",
            "reseed solves",
        ],
    );
    let mut failures = 0usize;

    for kind in GoalKind::ALL {
        let cfg = config(scale, kind);
        eprintln!(
            "train_warm {}: {} samples of {} queries, 10 templates",
            kind.name(),
            cfg.num_samples,
            cfg.sample_size
        );
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let generator = ModelGenerator::new(spec.clone(), goal, cfg.clone());

        let started = Instant::now();
        let (cold, artifacts) = generator.train_with_artifacts().unwrap();
        let cold_ms = started.elapsed().as_secs_f64() * 1e3;
        let warm_start = artifacts.warm_start();

        // Same seed, same mix: every signature is already cached.
        let started = Instant::now();
        let (warm, _) = generator.retrain_from(&warm_start).unwrap();
        let warm_ms = started.elapsed().as_secs_f64() * 1e3;

        if warm.stats().solves != 0 {
            eprintln!(
                "FAIL {}: identical-config warm retrain ran {} A* solves",
                kind.name(),
                warm.stats().solves
            );
            failures += 1;
        }
        if warm.tree() != cold.tree() || warm.stats().num_rows != cold.stats().num_rows {
            eprintln!(
                "FAIL {}: warm retrain diverged from the cold model",
                kind.name()
            );
            failures += 1;
        }

        // A drift loop's realistic step: a fresh sample draw against the
        // populated cache — only unseen signatures are solved.
        let reseeded = ModelGenerator::new(
            spec.clone(),
            PerformanceGoal::paper_default(kind, &spec).unwrap(),
            cfg.clone().with_seed(cfg.seed ^ 0xD1F7),
        );
        let started = Instant::now();
        let (shifted, _) = reseeded.retrain_from(&warm_start).unwrap();
        let reseed_ms = started.elapsed().as_secs_f64() * 1e3;

        table.row(&[
            kind.name().to_string(),
            cfg.sample_size.to_string(),
            format!("{cold_ms:.1}"),
            format!("{warm_ms:.1}"),
            format!("{:.1}x", cold_ms / warm_ms.max(1e-9)),
            cold.stats().solves.to_string(),
            cold.stats().cache_hits.to_string(),
            format!("{reseed_ms:.1}"),
            shifted.stats().solves.to_string(),
        ]);
    }

    println!("{}", table.render());

    if smoke {
        if failures > 0 {
            eprintln!("smoke FAILED: {failures} warm-retrain contract violation(s)");
            std::process::exit(1);
        }
        eprintln!(
            "smoke ok: every goal kind's identical-config warm retrain \
             performed zero A* solves and reproduced the cold model"
        );
    }
}
