//! Figure 9: final cost of WiSeDB vs Optimal for 30-query workloads
//! uniformly distributed over 10 templates, one bar pair per goal kind.
//!
//! The Optimal column honors `--strategy` / `WISEDB_STRATEGY` and
//! `WISEDB_NODE_LIMIT` (see [`wisedb_bench::oracle_config`]), so the
//! oracle can run as exact A*, beam, or anytime without recompiling.

use wisedb::prelude::*;
use wisedb_bench::{
    cents, oracle_cost_detailed, oracle_note, pct_above, train_all_goals, Scale, Table,
};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    eprintln!("fig09: training models ({scale:?})...");
    let models = train_all_goals(&spec, scale);

    let mut table = Table::new(
        "Figure 9: cost of 30-query workloads (cents, mean over repeats)",
        &["goal", "WiSeDB", "Optimal", "% above"],
    );
    let mut worst_bound = 1.0f64;
    for (kind, goal, model) in &models {
        let mut wise = Money::ZERO;
        let mut opt = Money::ZERO;
        let mut all_proven = true;
        for rep in 0..scale.repeats() {
            let w = wisedb::sim::generator::uniform_workload(&spec, 30, 9_000 + rep as u64);
            let s = model.schedule_batch(&w).expect("scheduling succeeds");
            s.validate_complete(&w).expect("schedule is complete");
            wise += total_cost(&spec, goal, &s).expect("cost computes");
            let (o, stats) = oracle_cost_detailed(&spec, goal, &w);
            all_proven &= stats.optimal;
            worst_bound = worst_bound.max(stats.bound);
            opt += o;
        }
        let n = scale.repeats() as f64;
        let wise = wise / n;
        let opt = opt / n;
        table.row(&[
            kind.name().to_string(),
            cents(wise),
            format!("{}{}", cents(opt), oracle_note(all_proven)),
            format!("{:+.1}%", pct_above(wise, opt)),
        ]);
    }
    table.print();
    if worst_bound > 1.0 {
        if worst_bound.is_finite() {
            println!(
                "(*) oracle hit its budget; value is a best-found upper bound \
                 (certified ≤ {:.1}% above optimal)",
                (worst_bound - 1.0) * 100.0
            );
        } else {
            println!("(*) oracle hit its budget; value is an uncertified upper bound");
        }
    }
}
