//! Figure 16: adaptive-modeling overhead — time to re-train a model when
//! the SLA is tightened by p% of the gap to the strictest feasible goal,
//! reusing the original model's per-sample search memos (§5).

use wisedb::advisor::ModelGenerator;
use wisedb::prelude::*;
use wisedb_bench::{Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    let shifts = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0];

    let mut table = Table::new(
        "Figure 16: adaptive retraining time (s) vs SLA shift",
        &["goal", "initial", "10%", "20%", "40%", "60%", "80%", "100%"],
    );
    for kind in GoalKind::ALL {
        eprintln!("fig16: {}...", kind.name());
        let base = PerformanceGoal::paper_default(kind, &spec).expect("defaults exist");
        let generator = ModelGenerator::new(spec.clone(), base.clone(), scale.training());
        let start = std::time::Instant::now();
        let (_, mut artifacts) = generator.train_with_artifacts().expect("training succeeds");
        let initial_secs = start.elapsed().as_secs_f64();

        let mut cells = vec![kind.name().to_string(), format!("{initial_secs:.2}")];
        for &p in &shifts {
            let goal = base.tighten_pct(&spec, p);
            let start = std::time::Instant::now();
            generator
                .retrain_tightened(&goal, &mut artifacts)
                .expect("retraining succeeds");
            cells.push(format!("{:.2}", start.elapsed().as_secs_f64()));
        }
        table.row(&cells);
    }
    table.print();
    println!("Deadline goals reuse search memos (Lemma 5.1); mean/percentile goals re-solve but");
    println!("still skip sampling, so every column should sit well under the initial column.");
}
