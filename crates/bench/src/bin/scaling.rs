//! Scheduler-sharding scaling curve: decisions per second vs shard count.
//!
//! ```text
//! WISEDB_SCALE=quick cargo run --release -p wisedb-bench --bin scaling
//! ```
//!
//! Trains one model per tenant class (once), generates one multi-class
//! trace (10⁶ queries at paper scale), then replays it through
//! identically built [`ShardedService`]s at each swept shard count,
//! printing the throughput curve. Two invariants are *asserted*, not just
//! reported:
//!
//! * every shard count's scrubbed final snapshot and completion
//!   fingerprint are **bit-identical** to the 1-shard run's;
//! * peak RSS stays **flat (±10%)** across shard counts — sharding fans
//!   out planning, it does not replicate state. Skipped when
//!   `/proc/self/status` is unavailable or `WISEDB_SKIP_RSS_GATE=1`
//!   (e.g. under sanitizers, whose shadow memory scales with threads).
//!
//! The curve itself is reported without a monotonicity gate — this bin
//! runs on whatever core count the host has. `--smoke` adds the CI gate:
//! shards=2 must reach ≥ 1.15× the shards=1 throughput, asserted only
//! when the host has more than one CPU (printed as skipped otherwise).
//!
//! [`ShardedService`]: wisedb_runtime::ShardedService

use wisedb_bench::{scaling, Scale, Table};

fn main() {
    // glibc grows one malloc arena per allocating thread and retains its
    // peak forever, so a multi-worker sweep would measure the allocator
    // (+~64 MB per shard worker), not the scheduler. Pin to one arena —
    // identical allocation behaviour for every shard count, honest
    // peak-RSS comparison — by re-execing once with the knob set (it is
    // only read at process start).
    if std::env::var_os("MALLOC_ARENA_MAX").is_none() {
        let exe = std::env::current_exe().expect("own executable path is readable");
        let status = std::process::Command::new(exe)
            .args(std::env::args_os().skip(1))
            .env("MALLOC_ARENA_MAX", "1")
            .status()
            .expect("re-exec with MALLOC_ARENA_MAX=1 succeeds");
        std::process::exit(status.code().unwrap_or(1));
    }

    let scale = Scale::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = scaling::config(scale);
    let spec = wisedb::sim::catalog::tpch_like(10);
    let class_set = scaling::classes(&spec, config.classes);

    eprintln!(
        "scaling: training {} class models (once, shared across the sweep)...",
        class_set.len()
    );
    let trained = scaling::train_models(&spec, &class_set, scale);
    eprintln!(
        "scaling: generating the trace ({} queries, {} classes)...",
        config.queries, config.classes
    );
    let stream = scaling::trace(&config);

    let mut runs: Vec<scaling::ShardRun> = Vec::new();
    for &shards in &config.shard_counts {
        eprintln!(
            "scaling: replaying {} queries in ticks of {} over {} shard{}...",
            stream.len(),
            config.tick_size,
            shards,
            if shards == 1 { "" } else { "s" }
        );
        runs.push(scaling::run_one(
            &class_set,
            &trained,
            &stream,
            config.tick_size,
            shards,
        ));
    }

    let base = &runs[0];
    let mut table = Table::new(
        "scheduler sharding: decisions per second vs shard count",
        &[
            "shards",
            "elapsed_s",
            "decisions",
            "decisions_per_s",
            "speedup",
            "rebalances",
            "peak_rss_mb",
        ],
    );
    for run in &runs {
        table.row(&[
            run.shards.to_string(),
            format!("{:.2}", run.elapsed_secs),
            run.stats.decisions.to_string(),
            format!("{:.0}", run.decisions_per_sec),
            format!("{:.2}x", run.decisions_per_sec / base.decisions_per_sec),
            run.stats.rebalances.to_string(),
            format!("{:.0}", run.peak_rss_kb as f64 / 1024.0),
        ]);
    }
    table.print();
    println!(
        "completions fingerprint: {:016x} ({} completed)",
        base.fingerprint, base.snapshot.completed
    );

    // Bit-identity: the curve is only meaningful if every point did the
    // same work and produced the same schedule.
    for run in &runs[1..] {
        assert_eq!(
            run.snapshot, base.snapshot,
            "{} shards produced a different final snapshot than 1 shard",
            run.shards
        );
        assert_eq!(
            run.fingerprint, base.fingerprint,
            "{} shards produced different completions than 1 shard",
            run.shards
        );
        assert_eq!(run.stats.decisions, base.stats.decisions);
    }
    eprintln!(
        "scaling: bit-identity held across shard counts {:?}",
        config.shard_counts
    );

    // Memory flatness: the epoch snapshot is one small struct per tick,
    // so fanning out planning must not grow the resident set.
    let skip_rss = std::env::var("WISEDB_SKIP_RSS_GATE").as_deref() == Ok("1");
    if base.peak_rss_kb == 0 || skip_rss {
        eprintln!("scaling: RSS gate skipped (no /proc or WISEDB_SKIP_RSS_GATE=1)");
    } else {
        for run in &runs[1..] {
            let ratio = run.peak_rss_kb as f64 / base.peak_rss_kb as f64;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "peak RSS not flat: {} shards used {:.0} MB vs {:.0} MB at 1 shard ({:.2}x)",
                run.shards,
                run.peak_rss_kb as f64 / 1024.0,
                base.peak_rss_kb as f64 / 1024.0,
                ratio
            );
        }
        eprintln!("scaling: peak RSS flat within +/-10% across the sweep");
    }

    if smoke {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let two = runs.iter().find(|r| r.shards == 2);
        match (cores > 1, two) {
            (true, Some(two)) => {
                let speedup = two.decisions_per_sec / base.decisions_per_sec;
                assert!(
                    speedup >= 1.15,
                    "scaling smoke: 2 shards reached only {speedup:.2}x over 1 shard \
                     on a {cores}-core host (need >= 1.15x)"
                );
                eprintln!("scaling: smoke gate passed ({speedup:.2}x at 2 shards, {cores} cores)");
            }
            (false, _) => {
                eprintln!("scaling: smoke gate skipped (single-CPU host; curve is report-only)");
            }
            (_, None) => {
                eprintln!("scaling: smoke gate skipped (no 2-shard point in this sweep)");
            }
        }
    }
}
