//! Hot-path regression harness.
//!
//! Runs the hot-path benches — the A* kernel (one optimal solve per
//! goal kind), the PEA* kernel (same instances, partial-expansion
//! counters exact), the percentile bound-tightness guard (budgeted exact
//! solve, certified bound exact), the percentile-pathology strategy guard
//! (beam + anytime under a tight budget, certified-bound counters
//! compared exactly), batch
//! scheduling throughput, the streaming event loop, the multi-tenant
//! consolidation loop (3 SLA classes, shared vs isolated fleets), the
//! sharded-scheduler loop (2-shard eager-rebalance replay, exact decision
//! / merge / rebalance counters plus the 1-shard identity assert), and the
//! serve layer's wire loop (loopback TCP, exact admit/shed counters plus
//! round-trip percentiles), and the warm-training guard (cold train vs
//! warm retrain through the solve cache: solve/dedup/row/node counters
//! exact, zero-solve warm retrain asserted) — plus the observability
//! guard (the same
//! stream run at every tracing level: identical outcomes asserted, trace
//! shape compared exactly, overhead recorded) — writes
//! `BENCH_current.json`, and diffs it against the committed
//! `crates/bench/BENCH_baseline.json` (see [`wisedb_bench::regress`] for
//! the comparison semantics: counters exact, times informational unless
//! `WISEDB_REGRESS_TIME_TOL` is set).
//!
//! ```text
//! WISEDB_SCALE=quick cargo run --release -p wisedb-bench --bin regress
//! # refresh the committed baseline for the current scale:
//! cargo run --release -p wisedb-bench --bin regress -- --write-baseline
//! ```
//!
//! Environment:
//! * `WISEDB_SCALE` — `quick` / `std` (default) / `paper`.
//! * `WISEDB_REGRESS_TOL` — fractional counter tolerance (default `0`).
//! * `WISEDB_REGRESS_TIME_TOL` — fractional time tolerance; unset means
//!   times are reported but never fail the run.
//! * `WISEDB_BENCH_BASELINE` — baseline path override.

use std::path::PathBuf;
use std::time::Duration;

use wisedb::advisor::{OnlineConfig, OnlineScheduler};
use wisedb::prelude::*;
use wisedb::runtime::generate_stream;
use wisedb_bench::regress::{
    diff, render_diff, BaselineFile, BenchReport, Measurement, MetricKind, Tolerances,
};
use wisedb_bench::Scale;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Per-goal workload sizes for the A* kernel. Percentile goals carry the
/// whole latency distribution in the penalty digest, so their graph is far
/// denser and the size stays smaller.
fn astar_size(scale: Scale, kind: GoalKind) -> usize {
    match (scale, kind) {
        (Scale::Quick, GoalKind::Percentile) => 6,
        (Scale::Quick, _) => 10,
        (_, GoalKind::Percentile) => 9,
        (_, _) => 16,
    }
}

fn samples(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 3,
        _ => 5,
    }
}

fn astar_kernel(scale: Scale, out: &mut Vec<Measurement>) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let workload = wisedb::sim::generator::uniform_workload(&spec, astar_size(scale, kind), 7);
        let bench = format!("astar_kernel/{}", kind.name());
        let mut stats = None;
        let median = criterion::measure(samples(scale), || {
            let result = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
            stats = Some(result.stats);
            result.cost
        });
        let stats = stats.unwrap();
        out.push(Measurement::new(
            &bench,
            "time_ms",
            ms(median),
            MetricKind::Time,
        ));
        out.push(Measurement::new(
            &bench,
            "expanded",
            stats.expanded as f64,
            MetricKind::Counter,
        ));
        out.push(Measurement::new(
            &bench,
            "generated",
            stats.generated as f64,
            MetricKind::Counter,
        ));
        out.push(Measurement::new(
            &bench,
            "interned",
            stats.interned as f64,
            MetricKind::Counter,
        ));
        eprintln!("  {bench}: {median:?} ({} expanded)", stats.expanded);
    }
}

/// Partial-expansion A* on the same instances as [`astar_kernel`]: one
/// optimal solve per goal kind, with the PEA*-specific counters
/// (`reexpansions`, `deferred`) compared exactly. Guards both the
/// strategy's exactness (`bound_pct` must stay 0 wherever the solve
/// completes) and its successor appetite.
fn pea_kernel(scale: Scale, out: &mut Vec<Measurement>) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let workload = wisedb::sim::generator::uniform_workload(&spec, astar_size(scale, kind), 7);
        let bench = format!("pea/{}", kind.name());
        let mut stats = None;
        let median = criterion::measure(samples(scale), || {
            let result = Solver::new(&spec, &goal)
                .with_strategy(SearchStrategy::Pea)
                .solve(&workload)
                .unwrap();
            stats = Some(result.stats);
            result.cost
        });
        let stats = stats.unwrap();
        out.push(Measurement::new(
            &bench,
            "time_ms",
            ms(median),
            MetricKind::Time,
        ));
        for (metric, value) in [
            ("expanded", stats.expanded as f64),
            ("generated", stats.generated as f64),
            ("reexpansions", stats.reexpansions as f64),
            ("deferred", stats.deferred as f64),
            ("bound_pct", (stats.bound - 1.0) * 100.0),
        ] {
            out.push(Measurement::new(&bench, metric, value, MetricKind::Counter));
        }
        eprintln!(
            "  {bench}: {median:?} ({} expanded, {} reexpansions, {} deferred)",
            stats.expanded, stats.reexpansions, stats.deferred
        );
    }
}

/// The queue-wait-aware percentile bound guard: a budgeted exact solve of
/// a percentile instance one notch past the kernel size. If the bound
/// loosens, the search either expands more vertices before finishing or
/// stops certifying `bound_pct = 0` under the budget — either way an
/// exact counter trips.
fn bound_tight(scale: Scale, out: &mut Vec<Measurement>) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::Percentile, &spec).unwrap();
    let queries = astar_size(scale, GoalKind::Percentile) + 2;
    let budget = 30_000usize;
    let workload = wisedb::sim::generator::uniform_workload(&spec, queries, 7);
    let bench = format!("bound_tight/{queries}q");
    let started = std::time::Instant::now();
    let result = Solver::new(&spec, &goal)
        .with_config(SearchConfig {
            node_limit: budget,
            ..SearchConfig::default()
        })
        .solve(&workload)
        .unwrap();
    let elapsed = started.elapsed();
    let stats = result.stats;
    out.push(Measurement::new(
        &bench,
        "time_ms",
        ms(elapsed),
        MetricKind::Time,
    ));
    for (metric, value) in [
        ("expanded", stats.expanded as f64),
        ("generated", stats.generated as f64),
        ("reexpansions", stats.reexpansions as f64),
        ("bound_pct", (stats.bound - 1.0) * 100.0),
    ] {
        out.push(Measurement::new(&bench, metric, value, MetricKind::Counter));
    }
    eprintln!(
        "  {bench}: {elapsed:?} ({} expanded, bound {:.4})",
        stats.expanded, stats.bound
    );
}

fn batch_throughput(scale: Scale, out: &mut Vec<Measurement>) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let model = ModelGenerator::new(
        spec.clone(),
        goal.clone(),
        ModelConfig {
            num_samples: if scale == Scale::Quick { 60 } else { 120 },
            sample_size: 9,
            seed: 0xFACADE,
            ..ModelConfig::fast()
        },
    )
    .train()
    .unwrap();
    let size = if scale == Scale::Quick { 2_000 } else { 10_000 };
    let workload = wisedb::sim::generator::uniform_workload(&spec, size, 99);
    let bench = format!("batch_schedule/{size}");
    let mut vms = 0usize;
    let median = criterion::measure(samples(scale), || {
        let schedule = model.schedule_batch(&workload).unwrap();
        vms = schedule.num_vms();
        vms
    });
    // All time metrics are lower-is-better so one tolerance rule fits;
    // throughput is derivable as size / time_ms.
    out.push(Measurement::new(
        &bench,
        "time_ms",
        ms(median),
        MetricKind::Time,
    ));
    out.push(Measurement::new(
        &bench,
        "vms",
        vms as f64,
        MetricKind::Counter,
    ));
    eprintln!("  {bench}: {median:?} ({vms} VMs)");
}

fn streaming_loop(scale: Scale, out: &mut Vec<Measurement>) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let training = ModelConfig {
        num_samples: 60,
        sample_size: 9,
        seed: 0xC0FFEE,
        ..ModelConfig::fast()
    };
    let (model, artifacts) = ModelGenerator::new(spec.clone(), goal, training.clone())
        .train_with_artifacts()
        .unwrap();
    let n = if scale == Scale::Quick { 80 } else { 200 };
    let mut process = PoissonProcess::per_second(2.0, TemplateMix::uniform(spec.num_templates()));
    let stream = generate_stream(&mut process, n, 42);
    let bench = format!("streaming_loop/{n}");
    let mut last = None;
    let median = criterion::measure_batched(
        samples(scale),
        || {
            let online = OnlineConfig {
                training: training.clone(),
                age_quantum: Millis::from_secs(30),
                ..OnlineConfig::default()
            };
            let scheduler = OnlineScheduler::with_model(model.clone(), artifacts.clone(), online);
            WorkloadService::with_scheduler(scheduler, RuntimeConfig::default())
        },
        |mut svc| {
            let report = svc.run_stream(&stream).unwrap();
            last = Some(report.last);
        },
    );
    let snapshot = last.unwrap();
    out.push(Measurement::new(
        &bench,
        "time_ms",
        ms(median),
        MetricKind::Time,
    ));
    out.push(Measurement::new(
        &bench,
        "us_per_arrival",
        median.as_secs_f64() * 1e6 / n as f64,
        MetricKind::Time,
    ));
    out.push(Measurement::new(
        &bench,
        "completed",
        snapshot.completed as f64,
        MetricKind::Counter,
    ));
    out.push(Measurement::new(
        &bench,
        "vms_provisioned",
        snapshot.vms_provisioned as f64,
        MetricKind::Counter,
    ));
    eprintln!(
        "  {bench}: {median:?} ({} completed, {} VMs)",
        snapshot.completed, snapshot.vms_provisioned
    );
}

/// The percentile-pathology strategy guard: beam and anytime solves of the
/// scenario that motivated the strategy layer, under a tight expansion
/// budget. Fully deterministic, so the certified suboptimality bound and
/// the new strategy counters (incumbent improvements, beam prunes) are
/// compared exactly — a solver change that silently loosens the bound or
/// does more work fails the diff.
fn strategy_pathology(scale: Scale, out: &mut Vec<Measurement>) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::Percentile, &spec).unwrap();
    let (queries, budget) = match scale {
        Scale::Quick => (14usize, 20_000usize),
        _ => (18, 50_000),
    };
    let workload = wisedb::sim::generator::uniform_workload(&spec, queries, 42);
    for strategy in [
        SearchStrategy::Beam { width: 64 },
        SearchStrategy::anytime(),
    ] {
        let bench = format!(
            "strategy_pathology/{}{}q",
            match strategy {
                SearchStrategy::Beam { .. } => "beam",
                _ => "anytime",
            },
            queries
        );
        let config = SearchConfig {
            node_limit: budget,
            strategy,
            ..SearchConfig::default()
        };
        let started = std::time::Instant::now();
        let result = Solver::new(&spec, &goal)
            .with_config(config)
            .solve(&workload)
            .unwrap();
        let elapsed = started.elapsed();
        let stats = result.stats;
        out.push(Measurement::new(
            &bench,
            "time_ms",
            ms(elapsed),
            MetricKind::Time,
        ));
        for (metric, value) in [
            ("expanded", stats.expanded as f64),
            ("interned", stats.interned as f64),
            ("incumbents", stats.incumbents as f64),
            ("pruned", stats.pruned as f64),
            ("bound_pct", (stats.bound - 1.0) * 100.0),
            ("cost_cents", result.cost.as_cents()),
        ] {
            out.push(Measurement::new(&bench, metric, value, MetricKind::Counter));
        }
        eprintln!(
            "  {bench}: {elapsed:?} (cost {}, bound {:.4}, {} expanded)",
            result.cost, stats.bound, stats.expanded
        );
    }
}

fn multitenant_loop(scale: Scale, out: &mut Vec<Measurement>) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let n = wisedb_bench::multitenant::arrivals_per_class(scale);
    let bench = format!("multitenant_loop/{n}x3");
    let started = std::time::Instant::now();
    let outcome = wisedb_bench::multitenant::run(&spec, scale);
    let elapsed = started.elapsed();
    out.push(Measurement::new(
        &bench,
        "time_ms",
        ms(elapsed),
        MetricKind::Time,
    ));
    out.push(Measurement::new(
        &bench,
        "completed",
        outcome.shared.last.completed as f64,
        MetricKind::Counter,
    ));
    out.push(Measurement::new(
        &bench,
        "shared_vms",
        outcome.shared_vms() as f64,
        MetricKind::Counter,
    ));
    out.push(Measurement::new(
        &bench,
        "isolated_vms",
        outcome.isolated_vms() as f64,
        MetricKind::Counter,
    ));
    eprintln!(
        "  {bench}: {elapsed:?} ({} completed, {} vs {} VMs, {:.1}% saving)",
        outcome.shared.last.completed,
        outcome.shared_vms(),
        outcome.isolated_vms(),
        outcome.saving_pct()
    );
}

/// The sharded-scheduler loop: a 3-class trace replayed through a 2-shard
/// [`wisedb_runtime::ShardedService`] under an *eager* rebalance
/// configuration (deterministic batch-size load signal, tight skew
/// threshold), then through a 1-shard service for the identity check.
/// Everything here is virtual-clocked and merge-ordered, so the decision,
/// merge, and rebalance counters — and the final snapshot — are exact on
/// every machine; a change that perturbs shard planning, the merge order,
/// or the rebalancer fails the diff.
fn shard_loop(scale: Scale, out: &mut Vec<Measurement>) {
    use wisedb_bench::scaling;
    use wisedb_runtime::{LoadSignal, ShardConfig};

    let spec = wisedb::sim::catalog::tpch_like(10);
    let cfg = scaling::ScalingConfig {
        classes: 3,
        queries: if scale == Scale::Quick { 300 } else { 600 },
        tick_size: 16,
        shard_counts: vec![1, 2],
    };
    let bench = format!("shard/{}x{}", cfg.queries, cfg.classes);
    let class_set = scaling::classes(&spec, cfg.classes);
    let trained = scaling::train_models(&spec, &class_set, scale);
    let stream = scaling::trace(&cfg);

    let eager = ShardConfig {
        shards: 2,
        rebalance_every: 4,
        skew_threshold: 1.05,
        signal: LoadSignal::BatchSize,
        ..ShardConfig::default()
    };
    let mut sharded = scaling::build_service_with(&class_set, &trained, eager);
    let started = std::time::Instant::now();
    let report = sharded
        .run_ticked(&stream, cfg.tick_size)
        .expect("the generated trace replays cleanly");
    let elapsed = started.elapsed();
    let stats = sharded.stats();
    let snapshot = scaling::scrub(report.last);
    let fingerprint = scaling::fingerprint(&report.completions);

    // The 1-shard replay of the same trace must agree bit for bit — the
    // determinism contract, asserted on every regress run.
    let mut single = scaling::build_service(&class_set, &trained, 1);
    let base = single
        .run_ticked(&stream, cfg.tick_size)
        .expect("the generated trace replays cleanly");
    assert_eq!(
        scaling::scrub(base.last),
        snapshot,
        "2-shard eager-rebalance replay diverged from the 1-shard snapshot"
    );
    assert_eq!(
        scaling::fingerprint(&base.completions),
        fingerprint,
        "2-shard eager-rebalance replay diverged from the 1-shard completions"
    );

    for (metric, value, kind) in [
        ("time_ms", ms(elapsed), MetricKind::Time),
        ("decisions", stats.decisions as f64, MetricKind::Counter),
        (
            "merged_plans",
            stats.merged_plans as f64,
            MetricKind::Counter,
        ),
        ("epochs", stats.epochs as f64, MetricKind::Counter),
        ("rebalances", stats.rebalances as f64, MetricKind::Counter),
        ("completed", snapshot.completed as f64, MetricKind::Counter),
        (
            "vms_provisioned",
            snapshot.vms_provisioned as f64,
            MetricKind::Counter,
        ),
    ] {
        out.push(Measurement::new(&bench, metric, value, kind));
    }
    eprintln!(
        "  {bench}: {elapsed:?} ({} decisions, {} merges, {} rebalances, {} completed)",
        stats.decisions, stats.merged_plans, stats.rebalances, snapshot.completed
    );
}

/// The serve layer over loopback: a seeded hot trace replayed through one
/// wire connection (see [`wisedb_bench::serve_load`]). The sequential
/// replay keeps admission deterministic, so `admitted`/`shed`/`shed_rate`
/// are exact counters; the round-trip percentiles are times, gated
/// against the serve SLO by `--bin loadgen` and compared here only under
/// `WISEDB_REGRESS_TIME_TOL`.
fn serve_loop(scale: Scale, out: &mut Vec<Measurement>) {
    let n = wisedb_bench::serve_load::requests(scale);
    let bench = format!("serve/{n}");
    let service = wisedb_bench::serve_load::build_service(scale);
    let report = wisedb_bench::serve_load::run(service, scale);
    for (metric, value, kind) in [
        ("p50_us", report.p50_us, MetricKind::Time),
        ("p95_us", report.p95_us, MetricKind::Time),
        ("p99_us", report.p99_us, MetricKind::Time),
        ("admitted", report.admitted as f64, MetricKind::Counter),
        ("shed", report.shed as f64, MetricKind::Counter),
        ("shed_rate", report.shed_rate(), MetricKind::Counter),
        (
            "completed",
            report.snapshot.completed as f64,
            MetricKind::Counter,
        ),
    ] {
        out.push(Measurement::new(&bench, metric, value, kind));
    }
    eprintln!(
        "  {bench}: p95 {:.0}us / p99 {:.0}us ({} admitted, {} shed)",
        report.p95_us, report.p99_us, report.admitted, report.shed
    );
}

/// The warm-training guard: one cold train through the solve cache, then
/// a warm [`ModelGenerator::retrain_from`] of the identical configuration.
/// The work counters are exact — distinct A* solves, dedup/cache hits,
/// dataset rows, and flat-tree nodes are all pure functions of the seed —
/// and the warm retrain must perform **zero** solves and reproduce the
/// cold model bit for bit (asserted here on every regress run). The
/// cold/warm wall-clock pair is what EXPERIMENTS.md's warm-retrain table
/// regenerates from.
fn train_warm(scale: Scale, out: &mut Vec<Measurement>) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let config = ModelConfig {
        num_samples: if scale == Scale::Quick { 120 } else { 400 },
        sample_size: 9,
        seed: 0x7EA1,
        ..ModelConfig::fast()
    };
    let bench = format!("train/{}x{}", config.num_samples, config.sample_size);
    let generator = ModelGenerator::new(spec, goal, config);

    let started = std::time::Instant::now();
    let (cold, artifacts) = generator.train_with_artifacts().unwrap();
    let cold_ms = ms(started.elapsed());

    let warm_start = artifacts.warm_start();
    let started = std::time::Instant::now();
    let (warm, _) = generator.retrain_from(&warm_start).unwrap();
    let warm_ms = ms(started.elapsed());

    assert_eq!(
        warm.stats().solves,
        0,
        "warm retrain of an identical config re-ran A* solves"
    );
    assert_eq!(
        warm.tree(),
        cold.tree(),
        "warm retrain diverged from the cold model"
    );
    assert_eq!(warm.stats().num_rows, cold.stats().num_rows);

    for (metric, value, kind) in [
        ("cold_ms", cold_ms, MetricKind::Time),
        ("warm_ms", warm_ms, MetricKind::Time),
        ("solves", cold.stats().solves as f64, MetricKind::Counter),
        (
            "cache_hits",
            cold.stats().cache_hits as f64,
            MetricKind::Counter,
        ),
        (
            "warm_solves",
            warm.stats().solves as f64,
            MetricKind::Counter,
        ),
        (
            "dataset_rows",
            cold.stats().num_rows as f64,
            MetricKind::Counter,
        ),
        (
            "tree_nodes",
            cold.tree().num_nodes() as f64,
            MetricKind::Counter,
        ),
    ] {
        out.push(Measurement::new(&bench, metric, value, kind));
    }
    eprintln!(
        "  {bench}: cold {cold_ms:.1}ms ({} solves, {} dedup hits) → warm {warm_ms:.1}ms (0 solves, {:.1}x)",
        cold.stats().solves,
        cold.stats().cache_hits,
        cold_ms / warm_ms.max(1e-9),
    );
}

/// The observability guard: the same deterministic in-process stream run
/// with tracing **off**, **counters-only**, and with **full spans**.
///
/// * The three runs' metrics snapshots must be identical (after zeroing
///   the wall-clock decision-time fields) — the "instrumentation changes
///   nothing" contract, asserted here on every regress run.
/// * One clean full-span run's event/span counts are **exact counters**:
///   the run is virtual-clocked and single-threaded, so an accidental
///   extra span in a hot loop fails the diff on any machine.
/// * The timing overheads are **times** (machine-dependent), recorded so
///   EXPERIMENTS.md's overhead table regenerates from this binary.
fn obs_overhead(scale: Scale, out: &mut Vec<Measurement>) {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
    let training = ModelConfig {
        num_samples: 60,
        sample_size: 9,
        seed: 0xC0FFEE,
        ..ModelConfig::fast()
    };
    let (model, artifacts) = ModelGenerator::new(spec.clone(), goal, training.clone())
        .train_with_artifacts()
        .unwrap();
    let n = if scale == Scale::Quick { 80 } else { 200 };
    let mut process = PoissonProcess::per_second(2.0, TemplateMix::uniform(spec.num_templates()));
    let stream = generate_stream(&mut process, n, 42);
    let bench = format!("obs/{n}");

    let run_once = || {
        let online = OnlineConfig {
            training: training.clone(),
            age_quantum: Millis::from_secs(30),
            ..OnlineConfig::default()
        };
        let scheduler = OnlineScheduler::with_model(model.clone(), artifacts.clone(), online);
        let mut svc = WorkloadService::with_scheduler(scheduler, RuntimeConfig::default());
        svc.run_stream(&stream).unwrap().last
    };
    // The only non-deterministic snapshot fields are the wall-clock
    // decision times; everything else must be byte-identical across
    // tracing levels.
    let scrub = |mut m: wisedb_core::MetricsSnapshot| {
        m.mean_decision_secs = 0.0;
        m.p95_decision_secs = 0.0;
        m
    };
    // One run is ~half a millisecond, so the regular sample count would
    // leave the overhead deltas at the mercy of scheduler jitter; medians
    // over a larger pool keep the percentages meaningful.
    let obs_samples = samples(scale) * 10;

    wisedb_obs::set_level(wisedb_obs::Level::Off);
    let mut snap_off = None;
    let t_off = criterion::measure(obs_samples, || {
        let s = run_once();
        let c = s.completed;
        snap_off = Some(s);
        c
    });

    wisedb_obs::set_level(wisedb_obs::Level::Counters);
    let mut snap_counters = None;
    let t_counters = criterion::measure(obs_samples, || {
        let s = run_once();
        let c = s.completed;
        snap_counters = Some(s);
        c
    });

    let timing_collector = wisedb_obs::install(wisedb_obs::Level::Spans);
    let mut snap_spans = None;
    let t_spans = criterion::measure(obs_samples, || {
        let s = run_once();
        let c = s.completed;
        snap_spans = Some(s);
        c
    });
    drop(timing_collector.finish());

    let off = scrub(snap_off.unwrap());
    assert_eq!(
        off,
        scrub(snap_counters.unwrap()),
        "counters-only tracing changed the run's outcome"
    );
    assert_eq!(
        off,
        scrub(snap_spans.unwrap()),
        "full-span tracing changed the run's outcome"
    );

    // One clean instrumented run for the deterministic trace shape.
    let collector = wisedb_obs::install(wisedb_obs::Level::Spans);
    run_once();
    let trace = collector.finish();
    let events = trace.events.len();
    let spans = trace
        .events
        .iter()
        .filter(|e| matches!(e.phase, wisedb_obs::Phase::Begin))
        .count();

    let pct = |t: std::time::Duration| (t.as_secs_f64() / t_off.as_secs_f64() - 1.0) * 100.0;
    out.push(Measurement::new(
        &bench,
        "events",
        events as f64,
        MetricKind::Counter,
    ));
    out.push(Measurement::new(
        &bench,
        "spans",
        spans as f64,
        MetricKind::Counter,
    ));
    out.push(Measurement::new(
        &bench,
        "time_ms",
        ms(t_off),
        MetricKind::Time,
    ));
    out.push(Measurement::new(
        &bench,
        "counters_overhead_pct",
        pct(t_counters),
        MetricKind::Time,
    ));
    out.push(Measurement::new(
        &bench,
        "overhead_pct",
        pct(t_spans),
        MetricKind::Time,
    ));
    eprintln!(
        "  {bench}: {events} events / {spans} spans; off {t_off:?}, counters {:+.2}%, spans {:+.2}%",
        pct(t_counters),
        pct(t_spans)
    );
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("WISEDB_BENCH_BASELINE").ok())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_baseline.json"));
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_current.json"));

    let scale = Scale::from_env();
    let scale_name = match scale {
        Scale::Quick => "quick",
        Scale::Std => "std",
        Scale::Paper => "paper",
    };
    eprintln!("regress: running hot-path benches at {scale_name} scale");

    let mut measurements = Vec::new();
    astar_kernel(scale, &mut measurements);
    pea_kernel(scale, &mut measurements);
    bound_tight(scale, &mut measurements);
    strategy_pathology(scale, &mut measurements);
    batch_throughput(scale, &mut measurements);
    streaming_loop(scale, &mut measurements);
    multitenant_loop(scale, &mut measurements);
    shard_loop(scale, &mut measurements);
    serve_loop(scale, &mut measurements);
    train_warm(scale, &mut measurements);
    // Last: it flips the global tracing level, and nothing after it may
    // record under the instrumented levels.
    obs_overhead(scale, &mut measurements);
    let current = BenchReport {
        scale: scale_name.to_string(),
        measurements,
    };

    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&current).expect("report serializes"),
    )
    .expect("write BENCH_current.json");
    eprintln!("regress: wrote {}", out_path.display());

    let mut baseline: BaselineFile = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => serde_json::from_str(&text).expect("baseline parses"),
        Err(_) => BaselineFile::default(),
    };

    if write_baseline {
        baseline.upsert(current);
        std::fs::write(
            &baseline_path,
            serde_json::to_string_pretty(&baseline).expect("baseline serializes"),
        )
        .expect("write baseline");
        eprintln!("regress: baseline updated at {}", baseline_path.display());
        return;
    }

    let Some(base) = baseline.for_scale(scale_name) else {
        eprintln!(
            "regress: no {scale_name}-scale baseline in {} — run with --write-baseline to record one",
            baseline_path.display()
        );
        return;
    };
    let tol = Tolerances {
        counter: env_f64("WISEDB_REGRESS_TOL").unwrap_or(0.0),
        time: env_f64("WISEDB_REGRESS_TIME_TOL"),
    };
    let lines = diff(base, &current, &tol);
    println!("{}", render_diff(&lines));
    let regressions = lines.iter().filter(|l| l.is_regression()).count();
    if regressions > 0 {
        eprintln!("regress: {regressions} regression(s) vs baseline");
        std::process::exit(1);
    }
    eprintln!("regress: no regressions vs baseline");
}
