//! Wire-protocol load generator: replay an arrival trace against a
//! loopback `wisedb-serve` server and gate decision latency on the SLO.
//!
//! ```text
//! WISEDB_SCALE=quick cargo run --release -p wisedb-bench --bin loadgen
//! ```
//!
//! Replays the seeded hot trace of [`wisedb_bench::serve_load`] over one
//! connection, prints the admit/shed counters and round-trip percentiles,
//! and exits non-zero if the serve SLO is violated:
//!
//! > **p95 < 1 ms, p99 < 10 ms** (loopback, quick-scale load).
//!
//! Environment:
//! * `WISEDB_SCALE` — `quick` / `std` (default) / `paper`.
//! * `WISEDB_SLO_P95_US` / `WISEDB_SLO_P99_US` — override the SLO bounds
//!   (microseconds), e.g. for saturated CI runners.
//! * `WISEDB_SKIP_SLO=1` — report only, never fail (the regress harness
//!   gates times separately).
//! * `--clients M` / `WISEDB_CLIENTS` — replay over `M` concurrent
//!   connections (round-robin trace slices). The default `1` is the
//!   classic sequential replay, and only that mode runs the SLO gate and
//!   the per-verdict determinism asserts — concurrency reorders
//!   admission, so only the aggregate counts stay exact.
//! * `--shards N` / `WISEDB_SERVE_SHARDS` — run the server's scheduler
//!   with `N` shards (concurrent mode only; `1` keeps the classic
//!   single-threaded scheduler).
//! * `--trace <path>` — record the replay with full `wisedb-obs` spans,
//!   write a Chrome trace-event JSON to `path`, validate it by parsing
//!   it back (see `wisedb_bench::trace_check`), and require the serve
//!   pipeline spans plus a non-trivial wire `Telemetry` exposition. Note
//!   tracing adds overhead — CI runs the SLO gate untraced.

use wisedb_bench::{serve_load, trace_check, Scale, Table};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// `--<flag> <n>` / `--<flag>=<n>`, then the environment variable, then
/// the default. Invalid values abort — a CI sweep must not silently fall
/// back.
fn usize_arg(flag: &str, env: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    let long = format!("--{flag}");
    let prefixed = format!("--{flag}=");
    let raw = args
        .iter()
        .position(|a| *a == long)
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{long} requires a value"))
                .clone()
        })
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&prefixed).map(str::to_string))
        })
        .or_else(|| std::env::var(env).ok());
    match raw {
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("invalid {long}/{env} value {raw:?}")),
        None => default,
    }
}

/// The `--trace` smoke: the artifact must parse back as well-formed
/// Chrome JSON, contain every serve pipeline stage, and the wire
/// telemetry must have recorded the replay's connections.
fn validate_trace(path: &std::path::Path, report: &serve_load::LoadReport) {
    let text = std::fs::read_to_string(path).expect("trace artifact is readable");
    let check = trace_check::validate_chrome_trace(&text)
        .unwrap_or_else(|e| panic!("trace artifact failed validation: {e}"));
    for span in [
        "serve.decode",
        "serve.dispatch",
        "serve.encode",
        "serve.tick",
        "serve.plan",
        "serve.queue_wait",
    ] {
        assert!(
            check.span(span).count > 0,
            "trace artifact has no {span} spans"
        );
    }
    assert!(
        report.telemetry.contains("wisedb_serve_connections_total"),
        "wire telemetry did not expose the serve counters:\n{}",
        report.telemetry
    );
    // The worker-side pipeline spans (decode → dispatch → encode) are
    // disjoint intervals inside each round trip, so their sum can never
    // exceed the client's summed round-trip time — and must account for
    // a healthy share of it (the rest is socket transit and client
    // syscalls, invisible to server-side spans; ~55–60% covered on an
    // idle machine, floor set low for saturated CI runners).
    let pipeline_us = check.span("serve.decode").total_us
        + check.span("serve.dispatch").total_us
        + check.span("serve.encode").total_us;
    let coverage = pipeline_us as f64 / report.total_us.max(1) as f64;
    assert!(
        pipeline_us <= report.total_us,
        "server-side spans ({pipeline_us}us) exceed the summed round trips ({}us)",
        report.total_us
    );
    assert!(
        coverage >= 0.30,
        "server-side spans cover only {:.0}% of the round trips",
        coverage * 100.0
    );
    eprintln!(
        "loadgen: trace validated ({} events, {} serve.dispatch spans, \
         {:.0}% of round-trip time in server spans, telemetry {} bytes)",
        check.events,
        check.span("serve.dispatch").count,
        coverage * 100.0,
        report.telemetry.len()
    );
}

fn main() {
    let scale = Scale::from_env();
    let clients = usize_arg("clients", "WISEDB_CLIENTS", 1);
    let shards = usize_arg("shards", "WISEDB_SERVE_SHARDS", 1);
    let concurrent = clients > 1 || shards > 1;
    eprintln!(
        "loadgen: training the serve scenario service ({} requests)...",
        serve_load::requests(scale)
    );
    let service = serve_load::build_service(scale);
    // The collector installs after training: a `--trace` artifact covers
    // the serve replay itself, not model construction.
    let tracing = wisedb_bench::trace_collector_from_args();
    let report = if concurrent {
        eprintln!(
            "loadgen: replaying the trace over {clients} loopback connections \
             ({shards} scheduler shard{})...",
            if shards == 1 { "" } else { "s" }
        );
        serve_load::run_concurrent(service, scale, clients, shards)
    } else {
        eprintln!("loadgen: replaying the trace over loopback TCP...");
        serve_load::run(service, scale)
    };
    if let Some((collector, path)) = tracing {
        wisedb_bench::finish_trace(collector, &path);
        validate_trace(&path, &report);
    }

    let mut table = Table::new(
        "serve decision latency over loopback TCP",
        &[
            "requests",
            "admitted",
            "shed",
            "shed_rate",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
    );
    table.row(&[
        report.n.to_string(),
        report.admitted.to_string(),
        report.shed.to_string(),
        format!("{:.3}", report.shed_rate()),
        format!("{:.0}", report.p50_us),
        format!("{:.0}", report.p95_us),
        format!("{:.0}", report.p99_us),
    ]);
    table.print();
    println!(
        "server snapshot: {} admitted, {} rejected, {} completed",
        report.snapshot.admitted, report.snapshot.rejected, report.snapshot.completed
    );

    // The wire and the in-process loop must agree on every verdict —
    // even concurrent replay conserves the totals, since every offer is
    // answered exactly once.
    assert_eq!(
        report.snapshot.admitted, report.admitted,
        "server-side admit count must match the clients'"
    );
    assert_eq!(
        report.snapshot.rejected, report.shed,
        "server-side shed count must match the clients'"
    );

    if concurrent {
        // The SLO is defined for the sequential single-connection replay;
        // concurrent mode measures contention, it does not gate on it.
        eprintln!("loadgen: SLO gate skipped (concurrent mode is report-only)");
        return;
    }
    if std::env::var("WISEDB_SKIP_SLO").as_deref() == Ok("1") {
        eprintln!("loadgen: SLO gate skipped (WISEDB_SKIP_SLO=1)");
        return;
    }
    let p95_bound = env_f64("WISEDB_SLO_P95_US", 1_000.0);
    let p99_bound = env_f64("WISEDB_SLO_P99_US", 10_000.0);
    let mut violated = false;
    if report.p95_us >= p95_bound {
        eprintln!(
            "loadgen: SLO VIOLATION: p95 {:.0}us >= {:.0}us",
            report.p95_us, p95_bound
        );
        violated = true;
    }
    if report.p99_us >= p99_bound {
        eprintln!(
            "loadgen: SLO VIOLATION: p99 {:.0}us >= {:.0}us",
            report.p99_us, p99_bound
        );
        violated = true;
    }
    if violated {
        std::process::exit(1);
    }
    eprintln!(
        "loadgen: SLO met (p95 {:.0}us < {:.0}us, p99 {:.0}us < {:.0}us)",
        report.p95_us, p95_bound, report.p99_us, p99_bound
    );
}
