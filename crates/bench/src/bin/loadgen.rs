//! Wire-protocol load generator: replay an arrival trace against a
//! loopback `wisedb-serve` server and gate decision latency on the SLO.
//!
//! ```text
//! WISEDB_SCALE=quick cargo run --release -p wisedb-bench --bin loadgen
//! ```
//!
//! Replays the seeded hot trace of [`wisedb_bench::serve_load`] over one
//! connection, prints the admit/shed counters and round-trip percentiles,
//! and exits non-zero if the serve SLO is violated:
//!
//! > **p95 < 1 ms, p99 < 10 ms** (loopback, quick-scale load).
//!
//! Environment:
//! * `WISEDB_SCALE` — `quick` / `std` (default) / `paper`.
//! * `WISEDB_SLO_P95_US` / `WISEDB_SLO_P99_US` — override the SLO bounds
//!   (microseconds), e.g. for saturated CI runners.
//! * `WISEDB_SKIP_SLO=1` — report only, never fail (the regress harness
//!   gates times separately).
//! * `--trace <path>` — record the replay with full `wisedb-obs` spans,
//!   write a Chrome trace-event JSON to `path`, validate it by parsing
//!   it back (see `wisedb_bench::trace_check`), and require the serve
//!   pipeline spans plus a non-trivial wire `Telemetry` exposition. Note
//!   tracing adds overhead — CI runs the SLO gate untraced.

use wisedb_bench::{serve_load, trace_check, Scale, Table};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The `--trace` smoke: the artifact must parse back as well-formed
/// Chrome JSON, contain every serve pipeline stage, and the wire
/// telemetry must have recorded the replay's connections.
fn validate_trace(path: &std::path::Path, report: &serve_load::LoadReport) {
    let text = std::fs::read_to_string(path).expect("trace artifact is readable");
    let check = trace_check::validate_chrome_trace(&text)
        .unwrap_or_else(|e| panic!("trace artifact failed validation: {e}"));
    for span in [
        "serve.decode",
        "serve.dispatch",
        "serve.encode",
        "serve.tick",
        "serve.plan",
        "serve.queue_wait",
    ] {
        assert!(
            check.span(span).count > 0,
            "trace artifact has no {span} spans"
        );
    }
    assert!(
        report.telemetry.contains("wisedb_serve_connections_total"),
        "wire telemetry did not expose the serve counters:\n{}",
        report.telemetry
    );
    // The worker-side pipeline spans (decode → dispatch → encode) are
    // disjoint intervals inside each round trip, so their sum can never
    // exceed the client's summed round-trip time — and must account for
    // a healthy share of it (the rest is socket transit and client
    // syscalls, invisible to server-side spans; ~55–60% covered on an
    // idle machine, floor set low for saturated CI runners).
    let pipeline_us = check.span("serve.decode").total_us
        + check.span("serve.dispatch").total_us
        + check.span("serve.encode").total_us;
    let coverage = pipeline_us as f64 / report.total_us.max(1) as f64;
    assert!(
        pipeline_us <= report.total_us,
        "server-side spans ({pipeline_us}us) exceed the summed round trips ({}us)",
        report.total_us
    );
    assert!(
        coverage >= 0.30,
        "server-side spans cover only {:.0}% of the round trips",
        coverage * 100.0
    );
    eprintln!(
        "loadgen: trace validated ({} events, {} serve.dispatch spans, \
         {:.0}% of round-trip time in server spans, telemetry {} bytes)",
        check.events,
        check.span("serve.dispatch").count,
        coverage * 100.0,
        report.telemetry.len()
    );
}

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "loadgen: training the serve scenario service ({} requests)...",
        serve_load::requests(scale)
    );
    let service = serve_load::build_service(scale);
    // The collector installs after training: a `--trace` artifact covers
    // the serve replay itself, not model construction.
    let tracing = wisedb_bench::trace_collector_from_args();
    eprintln!("loadgen: replaying the trace over loopback TCP...");
    let report = serve_load::run(service, scale);
    if let Some((collector, path)) = tracing {
        wisedb_bench::finish_trace(collector, &path);
        validate_trace(&path, &report);
    }

    let mut table = Table::new(
        "serve decision latency over loopback TCP",
        &[
            "requests",
            "admitted",
            "shed",
            "shed_rate",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
    );
    table.row(&[
        report.n.to_string(),
        report.admitted.to_string(),
        report.shed.to_string(),
        format!("{:.3}", report.shed_rate()),
        format!("{:.0}", report.p50_us),
        format!("{:.0}", report.p95_us),
        format!("{:.0}", report.p99_us),
    ]);
    table.print();
    println!(
        "server snapshot: {} admitted, {} rejected, {} completed",
        report.snapshot.admitted, report.snapshot.rejected, report.snapshot.completed
    );

    // The wire and the in-process loop must agree on every verdict.
    assert_eq!(
        report.snapshot.admitted, report.admitted,
        "server-side admit count must match the client's"
    );
    assert_eq!(
        report.snapshot.rejected, report.shed,
        "server-side shed count must match the client's"
    );

    if std::env::var("WISEDB_SKIP_SLO").as_deref() == Ok("1") {
        eprintln!("loadgen: SLO gate skipped (WISEDB_SKIP_SLO=1)");
        return;
    }
    let p95_bound = env_f64("WISEDB_SLO_P95_US", 1_000.0);
    let p99_bound = env_f64("WISEDB_SLO_P99_US", 10_000.0);
    let mut violated = false;
    if report.p95_us >= p95_bound {
        eprintln!(
            "loadgen: SLO VIOLATION: p95 {:.0}us >= {:.0}us",
            report.p95_us, p95_bound
        );
        violated = true;
    }
    if report.p99_us >= p99_bound {
        eprintln!(
            "loadgen: SLO VIOLATION: p99 {:.0}us >= {:.0}us",
            report.p99_us, p99_bound
        );
        violated = true;
    }
    if violated {
        std::process::exit(1);
    }
    eprintln!(
        "loadgen: SLO met (p95 {:.0}us < {:.0}us, p99 {:.0}us < {:.0}us)",
        report.p95_us, p95_bound, report.p99_us, p99_bound
    );
}
