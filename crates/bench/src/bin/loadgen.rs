//! Wire-protocol load generator: replay an arrival trace against a
//! loopback `wisedb-serve` server and gate decision latency on the SLO.
//!
//! ```text
//! WISEDB_SCALE=quick cargo run --release -p wisedb-bench --bin loadgen
//! ```
//!
//! Replays the seeded hot trace of [`wisedb_bench::serve_load`] over one
//! connection, prints the admit/shed counters and round-trip percentiles,
//! and exits non-zero if the serve SLO is violated:
//!
//! > **p95 < 1 ms, p99 < 10 ms** (loopback, quick-scale load).
//!
//! Environment:
//! * `WISEDB_SCALE` — `quick` / `std` (default) / `paper`.
//! * `WISEDB_SLO_P95_US` / `WISEDB_SLO_P99_US` — override the SLO bounds
//!   (microseconds), e.g. for saturated CI runners.
//! * `WISEDB_SKIP_SLO=1` — report only, never fail (the regress harness
//!   gates times separately).

use wisedb_bench::{serve_load, Scale, Table};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "loadgen: training the serve scenario service ({} requests)...",
        serve_load::requests(scale)
    );
    let service = serve_load::build_service(scale);
    eprintln!("loadgen: replaying the trace over loopback TCP...");
    let report = serve_load::run(service, scale);

    let mut table = Table::new(
        "serve decision latency over loopback TCP",
        &[
            "requests",
            "admitted",
            "shed",
            "shed_rate",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
    );
    table.row(&[
        report.n.to_string(),
        report.admitted.to_string(),
        report.shed.to_string(),
        format!("{:.3}", report.shed_rate()),
        format!("{:.0}", report.p50_us),
        format!("{:.0}", report.p95_us),
        format!("{:.0}", report.p99_us),
    ]);
    table.print();
    println!(
        "server snapshot: {} admitted, {} rejected, {} completed",
        report.snapshot.admitted, report.snapshot.rejected, report.snapshot.completed
    );

    // The wire and the in-process loop must agree on every verdict.
    assert_eq!(
        report.snapshot.admitted, report.admitted,
        "server-side admit count must match the client's"
    );
    assert_eq!(
        report.snapshot.rejected, report.shed,
        "server-side shed count must match the client's"
    );

    if std::env::var("WISEDB_SKIP_SLO").as_deref() == Ok("1") {
        eprintln!("loadgen: SLO gate skipped (WISEDB_SKIP_SLO=1)");
        return;
    }
    let p95_bound = env_f64("WISEDB_SLO_P95_US", 1_000.0);
    let p99_bound = env_f64("WISEDB_SLO_P99_US", 10_000.0);
    let mut violated = false;
    if report.p95_us >= p95_bound {
        eprintln!(
            "loadgen: SLO VIOLATION: p95 {:.0}us >= {:.0}us",
            report.p95_us, p95_bound
        );
        violated = true;
    }
    if report.p99_us >= p99_bound {
        eprintln!(
            "loadgen: SLO VIOLATION: p99 {:.0}us >= {:.0}us",
            report.p99_us, p99_bound
        );
        violated = true;
    }
    if violated {
        std::process::exit(1);
    }
    eprintln!(
        "loadgen: SLO met (p95 {:.0}us < {:.0}us, p99 {:.0}us < {:.0}us)",
        report.p95_us, p95_bound, report.p99_us, p99_bound
    );
}
