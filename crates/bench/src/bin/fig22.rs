//! Figure 22: tolerance to latency-prediction error — percent realized
//! cost above optimal vs predictor error σ (as a fraction of true
//! latency). Queries are matched to the nearest-latency template, so large
//! errors mislabel them and the realized (true-latency) execution diverges
//! from the planned one.

use wisedb::prelude::*;
use wisedb::sim::{self, SimOptions};
use wisedb_bench::{oracle_cost, pct_above, train_all_goals, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    eprintln!("fig22: training models ({scale:?})...");
    let models = train_all_goals(&spec, scale);
    let sigmas = [0.05f64, 0.10, 0.20, 0.30, 0.40];

    let mut table = Table::new(
        "Figure 22: % realized cost above optimal vs prediction error",
        &["goal", "5%", "10%", "20%", "30%", "40%"],
    );
    let mut missed = vec![0.0f64; sigmas.len()];
    let mut missed_n = 0usize;
    for (kind, goal, model) in &models {
        let mut cells = vec![kind.name().to_string()];
        for (si, &sigma) in sigmas.iter().enumerate() {
            let mut realized = Money::ZERO;
            let mut opt = Money::ZERO;
            let mut all_proven = true;
            for rep in 0..scale.repeats() {
                let seed = 22_000 + (si * 100 + rep) as u64;
                let w = wisedb::sim::generator::uniform_workload(&spec, 30, seed);
                let perceived = sim::perceive_workload(&spec, &w, sigma, seed);
                missed[si] += perceived.misassignment_rate();
                let s = model
                    .schedule_batch(&perceived.perceived)
                    .expect("scheduling succeeds");
                let trace = sim::execute(
                    &spec,
                    &s,
                    &SimOptions {
                        true_latencies: Some(perceived.true_latencies.clone()),
                        ..SimOptions::default()
                    },
                )
                .expect("execution succeeds");
                realized += trace.total_cost(goal);
                // Optimal with perfect knowledge of the true templates.
                let (o, proven) = oracle_cost(&spec, goal, &w);
                all_proven &= proven;
                opt += o;
            }
            missed_n += scale.repeats();
            cells.push(format!(
                "{:+.1}%{}",
                pct_above(realized, opt),
                if all_proven { "" } else { "*" }
            ));
        }
        table.row(&cells);
    }
    table.print();
    println!(
        "Mean misassignment per σ: {:?}",
        missed
            .iter()
            .map(|m| format!(
                "{:.0}%",
                m / (missed_n as f64 / sigmas.len() as f64) * 100.0
            ))
            .collect::<Vec<_>>()
    );
    println!("Note: our catalog spaces templates evenly ~27s apart, so misassignment (and the");
    println!("cost cliff) begins at lower σ than the paper's clustered TPC-H latencies.");
}
