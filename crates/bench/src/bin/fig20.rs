//! Figure 20: sensitivity to skewed runtime workloads — percent cost above
//! optimal vs the χ² confidence that the batch is not uniform.

use wisedb::prelude::*;
use wisedb::sim::stats;
use wisedb_bench::{oracle_cost, pct_above, train_all_goals, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    eprintln!("fig20: training models ({scale:?})...");
    let models = train_all_goals(&spec, scale);
    let skews = [0.0f64, 0.25, 0.5, 0.75, 1.0];

    let mut table = Table::new(
        "Figure 20: % cost above optimal vs workload skew",
        &["goal", "χ²≈0.0", "χ²≈0.25", "χ²≈0.5", "χ²≈0.75", "χ²≈1.0"],
    );
    let mut mean_conf = vec![0.0f64; skews.len()];
    for (kind, goal, model) in &models {
        let mut cells = vec![kind.name().to_string()];
        for (si, &skew) in skews.iter().enumerate() {
            let mut wise = Money::ZERO;
            let mut opt = Money::ZERO;
            let mut all_proven = true;
            for rep in 0..scale.repeats() {
                let seed = 20_000 + (si * 100 + rep) as u64;
                let w = wisedb::sim::generator::skewed_workload(&spec, 30, skew, seed);
                let counts = w.template_counts(spec.num_templates());
                mean_conf[si] += stats::chi_squared_confidence(
                    stats::chi_squared_stat(&counts),
                    spec.num_templates() - 1,
                );
                let s = model.schedule_batch(&w).expect("scheduling succeeds");
                wise += total_cost(&spec, goal, &s).expect("cost computes");
                let (o, proven) = oracle_cost(&spec, goal, &w);
                all_proven &= proven;
                opt += o;
            }
            cells.push(format!(
                "{:+.1}%{}",
                pct_above(wise, opt),
                if all_proven { "" } else { "*" }
            ));
        }
        table.row(&cells);
    }
    table.print();
    let n = (scale.repeats() * models.len()) as f64;
    println!(
        "Measured χ² confidences at the five skew settings: {:?}",
        mean_conf
            .iter()
            .map(|c| format!("{:.2}", c / n))
            .collect::<Vec<_>>()
    );
}
