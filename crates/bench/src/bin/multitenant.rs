//! Multi-tenant consolidation report: SLA classes multiplexed on one
//! shared fleet vs one isolated fleet per class.
//!
//! Three tenant classes (gold/per-query, silver/max-latency,
//! bronze/average-latency) with distinct Poisson streams run twice over
//! identical traffic and identical base models: once on one shared
//! [`WorkloadService`] (per-class decision models, one fleet), once as
//! three single-class services each renting its own fleet. Reports
//! per-class SLA health under both deployments and the consolidation
//! saving (% of the isolated deployments' cost the shared fleet avoids).
//!
//! `WISEDB_SCALE=quick` runs 50 arrivals per class; `std` (default) 150.

use wisedb::prelude::*;
use wisedb_bench::multitenant::{self, MultiTenantOutcome};
use wisedb_bench::{Scale, Table};

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn secs(m: Millis) -> String {
    format!("{:.0}s", m.as_secs_f64())
}

fn money(m: Money) -> String {
    format!("${:.2}", m.as_dollars())
}

fn class_rows(table: &mut Table, deployment: &str, outcome: &MultiTenantOutcome) {
    for (i, class) in outcome.classes.iter().enumerate() {
        let (row, vms, billed) = match deployment {
            "shared" => {
                let row = &outcome.shared.last.classes[i];
                (row.clone(), outcome.shared.last.vms_provisioned, row.billed)
            }
            _ => {
                let last = &outcome.isolated[i].last;
                (last.classes[0].clone(), last.vms_provisioned, last.billed)
            }
        };
        table.row(&[
            deployment.to_string(),
            class.name.clone(),
            format!("{}", row.completed),
            secs(row.latency.p50),
            secs(row.latency.p95),
            pct(row.violation_rate),
            money(billed),
            money(row.penalty),
            format!("{vms}"),
        ]);
    }
}

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    let outcome = multitenant::run(&spec, scale);

    let mut per_class = Table::new(
        "multi-tenant: per-class SLA health (shared fleet vs isolated fleets)",
        &[
            "deployment",
            "class",
            "completed",
            "p50",
            "p95",
            "viol%",
            "$billed",
            "$penalty",
            "fleet VMs",
        ],
    );
    class_rows(&mut per_class, "shared", &outcome);
    class_rows(&mut per_class, "isolated", &outcome);
    println!("{}", per_class.render());

    let mut totals = Table::new(
        "multi-tenant: consolidation totals",
        &[
            "deployment",
            "completed",
            "VMs rented",
            "$infra",
            "$penalty",
            "$total",
        ],
    );
    let shared = &outcome.shared.last;
    totals.row(&[
        "shared".to_string(),
        format!("{}", shared.completed),
        format!("{}", outcome.shared_vms()),
        money(shared.billed),
        money(shared.penalty),
        money(outcome.shared_total()),
    ]);
    let iso_completed: u64 = outcome.isolated.iter().map(|r| r.last.completed).sum();
    let iso_billed: Money = outcome.isolated.iter().map(|r| r.last.billed).sum();
    let iso_penalty: Money = outcome.isolated.iter().map(|r| r.last.penalty).sum();
    totals.row(&[
        "isolated×3".to_string(),
        format!("{iso_completed}"),
        format!("{}", outcome.isolated_vms()),
        money(iso_billed),
        money(iso_penalty),
        money(outcome.isolated_total()),
    ]);
    println!("{}", totals.render());

    println!(
        "consolidation saving: {:.1}% of the isolated deployments' total cost\n\
         (shared {} vs isolated {}; {} vs {} VM rentals)",
        outcome.saving_pct(),
        money(outcome.shared_total()),
        money(outcome.isolated_total()),
        outcome.shared_vms(),
        outcome.isolated_vms(),
    );
}
