//! Figure 15: model training time vs number of VM types
//! (10 templates; 1/5/10 VM types) for each goal kind.

use wisedb::advisor::ModelGenerator;
use wisedb::prelude::*;
use wisedb_bench::{Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let vm_type_counts = [1usize, 5, 10];

    let mut table = Table::new(
        "Figure 15: training time (s) vs number of VM types",
        &["goal", "1 type", "5 types", "10 types"],
    );
    for kind in GoalKind::ALL {
        eprintln!("fig15: {}...", kind.name());
        let mut cells = vec![kind.name().to_string()];
        for &k in &vm_type_counts {
            let spec = wisedb::sim::catalog::tpch_like_k_types(10, k);
            let goal = PerformanceGoal::paper_default(kind, &spec).expect("defaults exist");
            let model = ModelGenerator::new(spec, goal, scale.training())
                .train()
                .expect("training succeeds");
            cells.push(format!("{:.2}", model.stats().training_secs));
        }
        table.row(&cells);
    }
    table.print();
    println!("More VM types add start-up edges and per-type placement choices to every vertex.");
}
