//! Figure 14: model training time vs number of query templates
//! (5/10/15/20 templates, one VM type) for each goal kind.

use wisedb::advisor::ModelGenerator;
use wisedb::prelude::*;
use wisedb_bench::{Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let template_counts = [5usize, 10, 15, 20];

    let mut table = Table::new(
        "Figure 14: training time (s) vs number of templates",
        &["goal", "5", "10", "15", "20"],
    );
    for kind in GoalKind::ALL {
        eprintln!("fig14: {}...", kind.name());
        let mut cells = vec![kind.name().to_string()];
        for &n in &template_counts {
            let spec = wisedb::sim::catalog::tpch_like(n);
            let goal = PerformanceGoal::paper_default(kind, &spec).expect("defaults exist");
            let model = ModelGenerator::new(spec, goal, scale.training())
                .train()
                .expect("training succeeds");
            cells.push(format!("{:.2}", model.stats().training_secs));
        }
        table.row(&cells);
    }
    table.print();
    println!("Training grows with template count (more edges per search vertex).");
}
