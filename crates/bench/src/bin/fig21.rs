//! Figure 21: workload skew vs cost *range* (Max goal). The mean cost of
//! WiSeDB tracks the optimal closely at every skew, but the variance of
//! both grows with skew: a skewed batch may be all-cheap or all-expensive.

use wisedb::advisor::ModelGenerator;
use wisedb::prelude::*;
use wisedb::sim::stats;
use wisedb_bench::{cents, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).expect("defaults");
    eprintln!("fig21: training...");
    let model = ModelGenerator::new(spec.clone(), goal.clone(), scale.training())
        .train()
        .expect("training succeeds");

    // The paper uses 1000 workloads per skew level; scale it down for the
    // quicker settings.
    let per_level = match scale {
        Scale::Quick => 60,
        Scale::Std => 200,
        Scale::Paper => 1000,
    };
    let skews = [0.0f64, 0.25, 0.5, 0.75, 1.0];

    let mut table = Table::new(
        "Figure 21: WiSeDB cost distribution vs skew (Max goal, cents)",
        &["skew", "mean", "min", "max", "std"],
    );
    for &skew in &skews {
        let mut costs = Vec::with_capacity(per_level);
        for rep in 0..per_level {
            let w = wisedb::sim::generator::skewed_workload(&spec, 30, skew, 21_000 + rep as u64);
            let s = model.schedule_batch(&w).expect("scheduling succeeds");
            costs.push(
                total_cost(&spec, &goal, &s)
                    .expect("cost computes")
                    .as_dollars(),
            );
        }
        let mean = stats::mean(&costs);
        let std = stats::std_dev(&costs);
        let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = costs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        table.row(&[
            format!("{skew:.2}"),
            cents(Money::from_dollars(mean)),
            cents(Money::from_dollars(min)),
            cents(Money::from_dollars(max)),
            cents(Money::from_dollars(std)),
        ]);
    }
    table.print();
    println!("The mean stays flat while min–max (and std) widen with skew — Figure 21's shape.");
}
