//! Diagnostic: oracle scalability on the paper's 30-query / 10-template
//! workloads, per goal kind. Prints cost, proof status, the certified
//! suboptimality bound, and search effort.
//!
//! Honors the shared solver overrides (`--strategy ...` /
//! `WISEDB_STRATEGY`, `WISEDB_NODE_LIMIT`) plus:
//!
//! * `--n QUERIES` — workload size (default 30);
//! * `--kinds a,b` — goal-kind filter by figure name
//!   (`PerQuery,Average,Max,Percent`; default all);
//! * `--require-bound PCT` — exit non-zero unless every probed solve
//!   reports a suboptimality bound ≤ `PCT`% (the CI percentile-pathology
//!   smoke gate).

fn main() {
    use wisedb::prelude::*;
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let n: usize = flag("--n").map(|s| s.parse().expect("--n")).unwrap_or(30);
    let kinds: Vec<GoalKind> = match flag("--kinds") {
        None => GoalKind::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|name| {
                GoalKind::ALL
                    .into_iter()
                    .find(|k| k.name().eq_ignore_ascii_case(name.trim()))
                    .unwrap_or_else(|| panic!("unknown goal kind {name:?}"))
            })
            .collect(),
    };
    let require_bound: Option<f64> = flag("--require-bound").map(|s| s.parse().expect("pct"));

    let spec = wisedb::sim::catalog::tpch_like(10);
    let config = wisedb_bench::oracle_config();
    println!("oracle probe: {n} queries, strategy {}", config.strategy);
    let mut worst_bound: f64 = 1.0;
    for kind in kinds {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let workload = wisedb::sim::generator::uniform_workload(&spec, n, 42);
        let t = std::time::Instant::now();
        let r = Solver::new(&spec, &goal)
            .with_config(config.clone())
            .solve(&workload)
            .unwrap();
        worst_bound = worst_bound.max(r.stats.bound);
        println!(
            "{:<10} cost={} optimal={} bound={:.4} expanded={} reopened={} incumbents={} \
             pruned={} limit_hit={} time={:.2}s",
            kind.name(),
            r.cost,
            r.stats.optimal,
            r.stats.bound,
            r.stats.expanded,
            r.stats.reopened,
            r.stats.incumbents,
            r.stats.pruned,
            r.stats.limit_hit,
            t.elapsed().as_secs_f64()
        );
    }
    if let Some(pct) = require_bound {
        let limit = 1.0 + pct / 100.0;
        if worst_bound > limit {
            eprintln!("oracle probe: worst bound {worst_bound:.4} exceeds required {limit:.4}");
            std::process::exit(1);
        }
        println!("oracle probe: all bounds within {pct}% of optimal");
    }
}
