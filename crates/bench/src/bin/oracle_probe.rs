//! Diagnostic: exact-oracle scalability on the paper's 30-query / 10-template
//! workloads, per goal kind. Prints cost, proof status, and search effort.

fn main() {
    use wisedb::prelude::*;
    let spec = wisedb::sim::catalog::tpch_like(10);
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let workload = wisedb::sim::generator::uniform_workload(&spec, 30, 42);
        let t = std::time::Instant::now();
        let r = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
        println!(
            "{:<10} cost={} optimal={} expanded={} reopened={} time={:.2}s",
            kind.name(),
            r.cost,
            r.stats.optimal,
            r.stats.expanded,
            r.stats.reopened,
            t.elapsed().as_secs_f64()
        );
    }
}
