//! Figure 17: batch scheduling overhead vs batch size (10k/20k/30k
//! queries). The decision tree is parsed once per action, so scheduling is
//! `O(h·n)` and should scale linearly.

use std::time::Instant;

use wisedb::prelude::*;
use wisedb_bench::{Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).expect("defaults");
    eprintln!("fig17: training...");
    let model = wisedb::advisor::ModelGenerator::new(spec.clone(), goal, scale.training())
        .train()
        .expect("training succeeds");

    let sizes = [10_000usize, 20_000, 30_000];
    let mut table = Table::new(
        "Figure 17: scheduling time (s) vs batch size",
        &[
            "batch size",
            "time (s)",
            "per-query (µs)",
            "VMs provisioned",
        ],
    );
    for &size in &sizes {
        let w = wisedb::sim::generator::uniform_workload(&spec, size, 17_000);
        let start = Instant::now();
        let schedule = model.schedule_batch(&w).expect("scheduling succeeds");
        let secs = start.elapsed().as_secs_f64();
        schedule.validate_complete(&w).expect("complete schedule");
        table.row(&[
            format!("{size}"),
            format!("{secs:.3}"),
            format!("{:.1}", secs * 1e6 / size as f64),
            format!("{}", schedule.num_vms()),
        ]);
    }
    table.print();
    println!("Per-query time should stay flat (linear scaling), ~1.5s for 30k in the paper.");
}
