//! Ablation: which of §4.4's features actually carry the strategy?
//!
//! The paper argues its five feature families are individually necessary
//! (wait-time prices the open VM, cost-of-X prices the next action, have-X
//! exposes the remaining mix, proportions summarize the queue, supports-X
//! handles heterogeneous VMs). This study retrains the decision tree with
//! each family *zeroed out* — in both the training set and at prediction
//! time — and measures the cost gap to optimal that results.
//!
//! Run with: `cargo run -p wisedb-bench --release --bin ablation_features`

use wisedb::prelude::*;
use wisedb_bench::{oracle_cost, pct_above, Scale, Table};
use wisedb_learn::{Dataset, DecisionTree, FeatureKind, FeatureSchema};
use wisedb_search::{AStarSearcher, Decision, SearchState};

/// A feature family to suppress.
#[derive(Clone, Copy, PartialEq)]
enum Family {
    None,
    WaitTime,
    Proportions,
    Costs,
    Haves,
}

impl Family {
    fn name(self) -> &'static str {
        match self {
            Family::None => "full feature set",
            Family::WaitTime => "without wait-time",
            Family::Proportions => "without proportion-of-X",
            Family::Costs => "without cost-of-X",
            Family::Haves => "without have-X",
        }
    }

    fn masks(self, schema: &FeatureSchema, column: usize) -> bool {
        match (self, schema.kind(column)) {
            (Family::WaitTime, FeatureKind::WaitTime) => true,
            (Family::Proportions, FeatureKind::ProportionOf(_)) => true,
            (Family::Costs, FeatureKind::CostOf(_)) => true,
            (Family::Haves, FeatureKind::Have(_)) => true,
            _ => false,
        }
    }
}

fn mask_row(schema: &FeatureSchema, family: Family, row: &mut [f64]) {
    for (i, v) in row.iter_mut().enumerate() {
        if family.masks(schema, i) {
            *v = 0.0;
        }
    }
}

/// A minimal tree executor with the same guard semantics as the advisor's,
/// but applying the ablation mask before every prediction.
fn schedule_masked(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    schema: &FeatureSchema,
    tree: &DecisionTree,
    family: Family,
    counts: Vec<u16>,
) -> Money {
    let mut state = SearchState::initial(counts, goal);
    let mut total = Money::ZERO;
    while !state.is_goal() {
        let mut features = schema.extract(spec, goal, &state);
        mask_row(schema, family, &mut features);
        let suggested = Decision::from_label(tree.predict(&features), spec.num_templates());
        let decision = if state.is_valid(spec, suggested) {
            suggested
        } else {
            // Cheapest valid placement, else a new VM of type 0.
            spec.template_ids()
                .filter_map(|t| {
                    state
                        .edge_weight(spec, goal, Decision::Place(t))
                        .map(|w| (Decision::Place(t), w))
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(d, _)| d)
                .unwrap_or(Decision::CreateVm(VmTypeId(0)))
        };
        let (next, w) = state
            .apply(spec, goal, decision)
            .expect("guarded decisions apply");
        total += w;
        state = next;
    }
    total
}

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).expect("defaults");
    let config = scale.training();

    // Shared training paths: the ablation compares *feature sets*, not
    // training corpora.
    eprintln!(
        "ablation: solving {} sample workloads...",
        config.num_samples
    );
    let generator = wisedb::advisor::ModelGenerator::new(spec.clone(), goal.clone(), config);
    let samples = generator.sample_workloads();
    let paths: Vec<_> = samples
        .iter()
        .map(|w| {
            AStarSearcher::new(&spec, &goal)
                .solve(w)
                .expect("training searches succeed")
        })
        .collect();
    let base_dataset = Dataset::from_paths(&spec, &goal, &paths);
    let schema = base_dataset.schema;

    let mut table = Table::new(
        "Feature ablation (Max goal, 30-query batches): % cost above optimal",
        &["feature set", "% above optimal", "tree depth", "leaves"],
    );
    for family in [
        Family::None,
        Family::WaitTime,
        Family::Proportions,
        Family::Costs,
        Family::Haves,
    ] {
        let mut dataset = base_dataset.clone();
        for row in &mut dataset.rows {
            mask_row(&schema, family, row);
        }
        let tree = DecisionTree::train(&dataset, &wisedb_learn::TreeParams::default());

        let mut model_cost = Money::ZERO;
        let mut optimal = Money::ZERO;
        for rep in 0..scale.repeats() {
            let w = wisedb::sim::generator::uniform_workload(&spec, 30, 31_000 + rep as u64);
            let counts: Vec<u16> = w
                .template_counts(spec.num_templates())
                .into_iter()
                .map(|c| c as u16)
                .collect();
            model_cost += schedule_masked(&spec, &goal, &schema, &tree, family, counts);
            let (o, _) = oracle_cost(&spec, &goal, &w);
            optimal += o;
        }
        table.row(&[
            family.name().to_string(),
            format!("{:+.1}%", pct_above(model_cost, optimal)),
            format!("{}", tree.depth()),
            format!("{}", tree.num_leaves()),
        ]);
    }
    table.print();
    println!("cost-of-X and wait-time are the load-bearing features for deadline goals;");
    println!("dropping either forces the tree onto weaker proxies and the gap widens.");
}
