//! Figure 10: percent cost above optimal vs workload size (20/25/30
//! queries) for each goal kind.

use wisedb::prelude::*;
use wisedb_bench::{oracle_cost, pct_above, train_all_goals, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    eprintln!("fig10: training models ({scale:?})...");
    let models = train_all_goals(&spec, scale);

    let sizes = [20usize, 25, 30];
    let mut table = Table::new(
        "Figure 10: % cost above optimal vs workload size",
        &["goal", "20 queries", "25 queries", "30 queries"],
    );
    for (kind, goal, model) in &models {
        let mut cells = vec![kind.name().to_string()];
        for (si, &size) in sizes.iter().enumerate() {
            let mut wise = Money::ZERO;
            let mut opt = Money::ZERO;
            let mut all_proven = true;
            for rep in 0..scale.repeats() {
                let seed = 10_000 + (si * 100 + rep) as u64;
                let w = wisedb::sim::generator::uniform_workload(&spec, size, seed);
                let s = model.schedule_batch(&w).expect("scheduling succeeds");
                wise += total_cost(&spec, goal, &s).expect("cost computes");
                let (o, proven) = oracle_cost(&spec, goal, &w);
                all_proven &= proven;
                opt += o;
            }
            cells.push(format!(
                "{:+.1}%{}",
                pct_above(wise, opt),
                if all_proven { "" } else { "*" }
            ));
        }
        table.row(&cells);
    }
    table.print();
}
