//! Figure 18: online scheduling effectiveness — percent cost above an
//! optimal (A*-per-batch) scheduler vs query arrival delay, 30 queries.
//!
//! The oracle arm honors `--strategy` / `WISEDB_STRATEGY` and
//! `WISEDB_NODE_LIMIT`, so the per-batch replanner can be swept across
//! exact/beam/anytime solvers without recompiling.

use wisedb::advisor::{ArrivingQuery, OnlineConfig, OnlineScheduler, Planner};
use wisedb::prelude::*;
use wisedb_bench::{apply_search_overrides, pct_above, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    let mut oracle_search = OnlineConfig::default().oracle_search;
    apply_search_overrides(&mut oracle_search);
    let delays_s = [0.0f64, 0.25, 0.5, 0.75, 1.0];

    let mut table = Table::new(
        "Figure 18: online % cost above optimal vs arrival delay (s)",
        &["goal", "0", "0.25", "0.5", "0.75", "1.0"],
    );
    for kind in GoalKind::ALL {
        eprintln!("fig18: {}...", kind.name());
        let goal = PerformanceGoal::paper_default(kind, &spec).expect("defaults exist");
        let mut cells = vec![kind.name().to_string()];
        for &delay in &delays_s {
            let workload = wisedb::sim::generator::uniform_workload(
                &spec,
                30,
                18_000 + (delay * 100.0) as u64,
            );
            let stream: Vec<ArrivingQuery> = workload
                .queries()
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    ArrivingQuery::new(q.template, Millis::from_secs_f64(delay * i as f64))
                })
                .collect();

            let mut tree = OnlineScheduler::train(
                spec.clone(),
                goal.clone(),
                OnlineConfig {
                    training: scale.training(),
                    ..OnlineConfig::default()
                },
            )
            .expect("training succeeds");
            let c_tree = tree
                .run(&stream)
                .expect("replay succeeds")
                .total_cost(&spec, &goal)
                .expect("cost computes");

            let mut oracle = OnlineScheduler::train(
                spec.clone(),
                goal.clone(),
                OnlineConfig {
                    planner: Planner::Optimal,
                    training: scale.training(),
                    oracle_search: oracle_search.clone(),
                    ..OnlineConfig::default()
                },
            )
            .expect("training succeeds");
            let c_oracle = oracle
                .run(&stream)
                .expect("replay succeeds")
                .total_cost(&spec, &goal)
                .expect("cost computes");
            cells.push(format!("{:+.1}%", pct_above(c_tree, c_oracle)));
        }
        table.row(&cells);
    }
    table.print();
    println!("Larger delays allow fewer parallel VMs for both planners; the gap stays ≤ ~10%.");
}
