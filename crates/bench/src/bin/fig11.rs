//! Figure 11: percent cost above optimal vs goal strictness
//! (factor −0.4 … +0.4 around the default goals) for each goal kind.

use wisedb::advisor::ModelGenerator;
use wisedb::prelude::*;
use wisedb_bench::{oracle_cost, pct_above, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    let strictness = [-0.4, -0.2, 0.0, 0.2, 0.4];

    let mut table = Table::new(
        "Figure 11: % cost above optimal vs strictness factor",
        &["goal", "-0.4", "-0.2", "0.0", "+0.2", "+0.4"],
    );
    for kind in GoalKind::ALL {
        eprintln!("fig11: {}...", kind.name());
        let base = PerformanceGoal::paper_default(kind, &spec).expect("defaults exist");
        let mut cells = vec![kind.name().to_string()];
        for (si, &s) in strictness.iter().enumerate() {
            let goal = base.tighten_pct(&spec, s);
            let model = ModelGenerator::new(spec.clone(), goal.clone(), scale.training())
                .train()
                .expect("training succeeds");
            let mut wise = Money::ZERO;
            let mut opt = Money::ZERO;
            let mut all_proven = true;
            for rep in 0..scale.repeats() {
                let seed = 11_000 + (si * 100 + rep) as u64;
                let w = wisedb::sim::generator::uniform_workload(&spec, 30, seed);
                let sched = model.schedule_batch(&w).expect("scheduling succeeds");
                wise += total_cost(&spec, &goal, &sched).expect("cost computes");
                let (o, proven) = oracle_cost(&spec, &goal, &w);
                all_proven &= proven;
                opt += o;
            }
            cells.push(format!(
                "{:+.1}%{}",
                pct_above(wise, opt),
                if all_proven { "" } else { "*" }
            ));
        }
        table.row(&cells);
    }
    table.print();
}
