//! Figure 19: average per-query scheduling overhead under the online
//! optimizations (Shift+Reuse / Shift / Reuse / None), arrivals
//! ~ N(250 ms, 125 ms) as in §7.4.
//!
//! `--strategy` / `WISEDB_STRATEGY` selects the solver for the in-loop
//! retraining solves (the overhead being measured), so the sweep can show
//! what inexact training buys per arrival.

use wisedb::advisor::{ArrivingQuery, OnlineConfig, OnlineScheduler};
use wisedb::prelude::*;
use wisedb::sim::Arrivals;
use wisedb_bench::{apply_search_overrides, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    let n = 30usize;

    let mut table = Table::new(
        "Figure 19: mean online scheduling overhead per query (ms)",
        &["goal", "Shift+Reuse", "Shift", "Reuse", "None"],
    );
    // Retraining inside the online loop uses a reduced budget, as any
    // deployment would: the base model is trained at full scale once.
    let mut retrain_cfg = scale.training();
    retrain_cfg.num_samples = (retrain_cfg.num_samples / 4).max(50);
    apply_search_overrides(&mut retrain_cfg.search);

    for kind in GoalKind::ALL {
        eprintln!("fig19: {}...", kind.name());
        let goal = PerformanceGoal::paper_default(kind, &spec).expect("defaults exist");
        let workload = wisedb::sim::generator::uniform_workload(&spec, n, 19_001);
        let times = Arrivals::Normal {
            mean_secs: 0.25,
            std_secs: 0.125,
        }
        .times(n, 19_002);
        let stream: Vec<ArrivingQuery> = workload
            .queries()
            .iter()
            .zip(times)
            .map(|(q, arrival)| ArrivingQuery::new(q.template, arrival))
            .collect();

        let mut cells = vec![kind.name().to_string()];
        for (reuse, shift) in [(true, true), (false, true), (true, false), (false, false)] {
            let mut scheduler = OnlineScheduler::train(
                spec.clone(),
                goal.clone(),
                OnlineConfig {
                    reuse,
                    shift,
                    training: retrain_cfg.clone(),
                    ..OnlineConfig::default()
                },
            )
            .expect("training succeeds");
            let report = scheduler.run(&stream).expect("replay succeeds");
            cells.push(format!(
                "{:.0} (r{} h{} s{})",
                report.mean_overhead_secs() * 1e3,
                report.retrains,
                report.cache_hits,
                report.shifts
            ));
        }
        table.row(&cells);
    }
    table.print();
    println!("(r = full retrains, h = cache hits, s = shift-derived models)");
    println!("Shift applies only to deadline goals; Average/Percent rely on Reuse alone.");
}
