//! Runs every figure report in sequence (`fig09` … `fig22`). Equivalent to
//! invoking each binary yourself; handy for regenerating EXPERIMENTS.md.

use std::process::Command;

fn main() {
    let figs = [
        "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
        "fig19", "fig20", "fig21", "fig22",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe dir");
    for fig in figs {
        println!("\n########## {fig} ##########");
        let status = Command::new(dir.join(fig))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        if !status.success() {
            eprintln!("{fig} exited with {status}");
        }
    }
}
