//! The strategy shoot-out: exact vs PEA* vs beam vs anytime on the
//! 18-query / 10-template scenario, one table per goal kind. The
//! percentile table is the pathology that drove the solver-strategy
//! layer (the exact search hits its 4 M-expansion budget after ~a
//! minute and 13 M interned states; the inexact strategies solve the
//! same instance in well under a second with a certified gap).
//!
//! ```text
//! cargo run --release -p wisedb-bench --bin strategies            # full tables (incl. exact)
//! cargo run --release -p wisedb-bench --bin strategies -- --smoke # CI gate, no exact arm
//! ```
//!
//! `--smoke` runs only the bounded strategies under a tight expansion
//! budget and exits non-zero unless the percentile anytime solve stays
//! within its budget and certifies a suboptimality bound ≤ 5% — the
//! regression gate for the ROADMAP's "percentile A* pathology" item.

use wisedb::prelude::*;
use wisedb_bench::Table;
use wisedb_search::SearchStats;

/// Queries in the shoot-out scenario (§7.1 scale: the paper's training
/// sample size m = 18).
const PATHOLOGY_QUERIES: usize = 18;
/// Expansion budget for the bounded arms — about 1% of what the exact
/// search burns before giving up.
const SMOKE_BUDGET: usize = 50_000;
/// The smoke gate: certified bound must stay within 5% of optimal
/// (tightened from 10% by the queue-wait-aware percentile bound).
const SMOKE_MAX_BOUND: f64 = 1.05;

struct Arm {
    label: &'static str,
    config: SearchConfig,
}

fn arms(smoke: bool) -> Vec<Arm> {
    let budget = |strategy: SearchStrategy, node_limit: usize| SearchConfig {
        node_limit,
        strategy,
        ..SearchConfig::default()
    };
    let mut arms = Vec::new();
    if !smoke {
        arms.push(Arm {
            label: "exact (4M budget)",
            config: SearchConfig::default(),
        });
    }
    arms.push(Arm {
        label: "pea @50k",
        config: budget(SearchStrategy::Pea, SMOKE_BUDGET),
    });
    arms.push(Arm {
        label: "beam:64",
        config: budget(SearchStrategy::Beam { width: 64 }, SMOKE_BUDGET),
    });
    arms.push(Arm {
        label: "beam:512",
        config: budget(SearchStrategy::Beam { width: 512 }, SMOKE_BUDGET),
    });
    arms.push(Arm {
        label: "anytime @50k",
        config: budget(SearchStrategy::anytime(), SMOKE_BUDGET),
    });
    if !smoke {
        arms.push(Arm {
            label: "anytime @500k",
            config: budget(SearchStrategy::anytime(), 10 * SMOKE_BUDGET),
        });
    }
    arms
}

/// Certified gap above optimal, in percent (`bound` is cost/optimal).
fn bound_gap_pct(stats: &SearchStats) -> String {
    if stats.bound.is_finite() {
        format!("{:.2}", (stats.bound - 1.0) * 100.0)
    } else {
        "∞".to_string()
    }
}

fn main() {
    // `--trace <path>`: record every arm's solve with full spans (one
    // `search.solve` span per arm, strategy and counters attached) and
    // write a Chrome trace-event JSON.
    let tracing = wisedb_bench::trace_collector_from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spec = wisedb::sim::catalog::tpch_like(10);

    let mut percentile_anytime: Option<SearchStats> = None;
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
        let workload = wisedb::sim::generator::uniform_workload(&spec, PATHOLOGY_QUERIES, 42);

        let mut table = Table::new(
            &format!(
                "Search strategies, {} goal, {PATHOLOGY_QUERIES}q / 10 templates",
                kind.name()
            ),
            &[
                "strategy",
                "cost ¢",
                "bound",
                "bound_gap_pct",
                "optimal",
                "expanded",
                "interned",
                "incumb",
                "pruned",
                "time s",
            ],
        );
        for arm in arms(smoke) {
            eprintln!("strategies: {} / {}...", kind.name(), arm.label);
            let t = std::time::Instant::now();
            let result = Solver::new(&spec, &goal)
                .with_config(arm.config)
                .solve(&workload)
                .expect("catalog solves succeed");
            let secs = t.elapsed().as_secs_f64();
            let s = result.stats;
            table.row(&[
                arm.label.to_string(),
                format!("{:.2}", result.cost.as_cents()),
                if s.bound.is_finite() {
                    format!("{:.4}", s.bound)
                } else {
                    "∞".to_string()
                },
                bound_gap_pct(&s),
                s.optimal.to_string(),
                s.expanded.to_string(),
                s.interned.to_string(),
                s.incumbents.to_string(),
                s.pruned.to_string(),
                format!("{secs:.2}"),
            ]);
            if kind == GoalKind::Percentile && arm.label.starts_with("anytime @50k") {
                percentile_anytime = Some(s);
            }
        }
        table.print();
    }
    println!(
        "bound = certified cost/optimal ratio (bound_gap_pct = (bound−1)·100); \
         exact's 4M-budget run reports its own bound"
    );

    if let Some((collector, path)) = tracing {
        wisedb_bench::finish_trace(collector, &path);
    }

    let s = percentile_anytime.expect("percentile anytime arm always runs");
    let within_budget = s.expanded <= SMOKE_BUDGET as u64;
    let bounded = s.bound <= SMOKE_MAX_BOUND;
    if smoke {
        if !within_budget || !bounded {
            eprintln!(
                "strategies: SMOKE FAILURE — anytime expanded {} (budget {SMOKE_BUDGET}), \
                 bound {:.4} (max {SMOKE_MAX_BOUND})",
                s.expanded, s.bound
            );
            std::process::exit(1);
        }
        println!(
            "smoke ok: percentile anytime stayed within {SMOKE_BUDGET} expansions \
             with bound {:.4}",
            s.bound
        );
    }
}
