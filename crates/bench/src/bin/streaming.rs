//! Streaming-runtime benchmark: the online §6.3 loop under sustained
//! arrival streams instead of fixed 30-query replays.
//!
//! Two reports:
//!
//! * **Arrival-process grid** — end-to-end metrics (p50/p95/p99 SLA
//!   latency, violation rate, $/hour, fleet size, scheduler decision
//!   latency) for each arrival family at a common mean rate.
//! * **Saturation sweep** — Poisson arrival rate swept per goal kind. The
//!   cluster scales out, so the binding resource is the *scheduler*: a rate
//!   is sustainable while the mean wall-clock decision time stays below the
//!   mean inter-arrival gap. The reported saturation point is
//!   `1 / mean decision time` at the heaviest swept rate.
//!
//! `WISEDB_SCALE=quick` runs 500-query streams over two arrival processes;
//! `std` (default) covers all four at 1000 queries. `--trace <path>`
//! records the whole run (training included) with full `wisedb-obs`
//! spans and writes a Chrome trace-event JSON to `path`.

use wisedb::advisor::{ModelGenerator, OnlineConfig, OnlineScheduler, TrainingArtifacts};
use wisedb::prelude::*;
use wisedb_bench::{Scale, Table};
use wisedb_runtime::generate_stream;

/// Online (in-loop) retraining budget: deliberately lighter than the base
/// model's offline budget at every scale, because aged-batch retrains run
/// inside the arrival gap and bound the scheduler's decision latency.
fn retrain_config() -> ModelConfig {
    ModelConfig {
        num_samples: 150,
        sample_size: 9,
        seed: 0xBE7C4,
        ..ModelConfig::fast()
    }
}

fn online_config() -> OnlineConfig {
    OnlineConfig {
        training: retrain_config(),
        // Coarser age quantization than the 250 ms default: minutes-scale
        // queries mean minutes-scale waits, and a coarse quantum keeps the
        // Reuse cache small under heavy arrival rates.
        age_quantum: Millis::from_secs(30),
        ..OnlineConfig::default()
    }
}

fn service(model: &DecisionModel, artifacts: &TrainingArtifacts) -> WorkloadService {
    let scheduler = OnlineScheduler::with_model(model.clone(), artifacts.clone(), online_config());
    WorkloadService::with_scheduler(scheduler, RuntimeConfig::default())
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn secs(m: Millis) -> String {
    format!("{:.0}s", m.as_secs_f64())
}

fn main() {
    let tracing = wisedb_bench::trace_collector_from_args();
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    let n_queries = match scale {
        Scale::Quick => 500,
        Scale::Std => 1000,
        Scale::Paper => 2000,
    };
    let training = scale.training();

    // -- Train one base model per goal kind, artifacts kept for reuse. --
    eprintln!("streaming: training models ({scale:?})...");
    let mut models = Vec::new();
    for kind in GoalKind::ALL {
        let goal = PerformanceGoal::paper_default(kind, &spec).expect("defaults exist");
        // Percentile A* sample solves blow up super-exponentially in the
        // sample size (the penalty digest carries the whole latency
        // distribution) — at the std config (m = 12) one base model takes
        // the better part of an hour on one core. Cap m for that goal so
        // the streaming report stays minutes-scale; the fig binaries
        // measure the full-size Percentile training cost.
        let config = if kind == GoalKind::Percentile {
            ModelConfig {
                sample_size: training.sample_size.min(9),
                ..training.clone()
            }
        } else {
            training.clone()
        };
        let generator = ModelGenerator::new(spec.clone(), goal.clone(), config);
        let (model, artifacts) = generator
            .train_with_artifacts()
            .expect("training on catalog specs succeeds");
        eprintln!("  {}: {:.2}s", kind.name(), model.stats().training_secs);
        models.push((kind, model, artifacts));
    }

    // -- Part A: arrival-process grid (max-latency goal). --
    let mix = TemplateMix::uniform(spec.num_templates());
    let rate = 0.5; // queries per (virtual) second
    let mut processes: Vec<Box<dyn ArrivalProcess>> = vec![
        Box::new(PoissonProcess::per_second(rate, mix.clone())),
        Box::new(OnOffProcess::new(0.25, 24.0, 8, mix.clone())),
    ];
    if scale != Scale::Quick {
        processes.push(Box::new(DiurnalProcess::new(
            rate,
            0.8,
            Millis::from_mins(10),
            mix.clone(),
        )));
        processes.push(Box::new(DriftProcess::new(
            rate,
            TemplateMix::uniform(spec.num_templates()),
            TemplateMix::hot(spec.num_templates(), 0, 0.7),
            Millis::from_secs(n_queries as u64 / 2),
        )));
    }

    let (_, max_model, max_artifacts) = models
        .iter()
        .find(|(k, _, _)| *k == GoalKind::MaxLatency)
        .expect("all goal kinds trained");
    let mut table = Table::new(
        format!("Streaming: {n_queries}-query streams, Max goal, {rate} q/s mean"),
        &[
            "process", "done", "p50", "p95", "p99", "viol", "$/h", "vms", "dec ms",
        ],
    );
    for process in &mut processes {
        eprintln!("streaming: {}...", process.label());
        let mut svc = service(max_model, max_artifacts);
        let report = svc
            .run_process(process.as_mut(), n_queries)
            .expect("streams on catalog specs run");
        let m = &report.last;
        table.row(&[
            process.label(),
            m.completed.to_string(),
            secs(m.latency.p50),
            secs(m.latency.p95),
            secs(m.latency.p99),
            pct(m.violation_rate),
            format!("{:.2}", m.dollars_per_hour),
            m.vms_provisioned.to_string(),
            format!("{:.2}", m.mean_decision_secs * 1e3),
        ]);
    }
    table.print();

    // -- Part B: Poisson saturation sweep per goal kind. --
    let rates: &[f64] = match scale {
        Scale::Quick => &[0.5, 2.0],
        _ => &[0.25, 0.5, 1.0, 2.0, 4.0],
    };
    let sweep_n = n_queries.min(500);
    let mut headers: Vec<String> = vec!["goal".into()];
    for r in rates {
        headers.push(format!("p95@{r}/s"));
        headers.push(format!("dec ms@{r}/s"));
    }
    headers.push("sat q/s".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Streaming saturation: Poisson sweep, {sweep_n} queries"),
        &header_refs,
    );
    for (kind, model, artifacts) in &models {
        eprintln!("streaming: sweeping {}...", kind.name());
        let mut cells = vec![kind.name().to_string()];
        let mut last_decision_secs = f64::INFINITY;
        for &r in rates {
            let mut process = PoissonProcess::per_second(r, mix.clone());
            // Same seeded stream per (goal, rate) — comparable across goals.
            let stream = generate_stream(&mut process, sweep_n, 0x5EED_57 + (r * 8.0) as u64);
            let mut svc = service(model, artifacts);
            let report = svc.run_stream(&stream).expect("streams run");
            let m = &report.last;
            cells.push(secs(m.latency.p95));
            cells.push(format!("{:.2}", m.mean_decision_secs * 1e3));
            last_decision_secs = m.mean_decision_secs;
        }
        // The scheduler sustains arrivals while decision time < gap.
        let saturation = if last_decision_secs > 0.0 {
            1.0 / last_decision_secs
        } else {
            f64::INFINITY
        };
        cells.push(format!("{saturation:.0}"));
        table.row(&cells);
    }
    table.print();

    // -- Part C: overload with and without admission control. --
    let overload_rate = 8.0;
    let mut table = Table::new(
        format!("Streaming overload: Poisson {overload_rate} q/s burst, Max goal"),
        &["admission", "admitted", "shed", "p95", "viol", "$/h", "vms"],
    );
    for (label, admission) in [
        ("AcceptAll", AdmissionPolicy::AcceptAll),
        ("MaxVms(24)", AdmissionPolicy::MaxVms(24)),
    ] {
        let scheduler =
            OnlineScheduler::with_model(max_model.clone(), max_artifacts.clone(), online_config());
        let mut svc = WorkloadService::with_scheduler(
            scheduler,
            RuntimeConfig {
                admission,
                ..RuntimeConfig::default()
            },
        );
        let mut process = PoissonProcess::per_second(overload_rate, mix.clone());
        let report = svc.run_process(&mut process, sweep_n).expect("streams run");
        let m = &report.last;
        table.row(&[
            label.to_string(),
            m.admitted.to_string(),
            m.rejected.to_string(),
            secs(m.latency.p95),
            pct(m.violation_rate),
            format!("{:.2}", m.dollars_per_hour),
            m.vms_provisioned.to_string(),
        ]);
    }
    table.print();

    if let Some((collector, path)) = tracing {
        wisedb_bench::finish_trace(collector, &path);
    }
}
