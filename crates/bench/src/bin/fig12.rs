//! Figure 12: cost with one vs two VM types, WiSeDB vs Optimal
//! (30-query workloads; t2.medium alone, then t2.medium + t2.small).

use wisedb::advisor::ModelGenerator;
use wisedb::prelude::*;
use wisedb_bench::{cents, oracle_cost, oracle_note, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec_1t = wisedb::sim::catalog::tpch_like(10);
    let spec_2t = wisedb::sim::catalog::tpch_like_two_types(10);

    let mut table = Table::new(
        "Figure 12: cost with 1 vs 2 VM types (cents, 30-query workloads)",
        &["goal", "WiSeDB 1T", "Optimal 1T", "WiSeDB 2T", "Optimal 2T"],
    );
    for kind in GoalKind::ALL {
        eprintln!("fig12: {}...", kind.name());
        let mut cells = vec![kind.name().to_string()];
        for spec in [&spec_1t, &spec_2t] {
            let goal = PerformanceGoal::paper_default(kind, spec).expect("defaults exist");
            let model = ModelGenerator::new(spec.clone(), goal.clone(), scale.training())
                .train()
                .expect("training succeeds");
            let mut wise = Money::ZERO;
            let mut opt = Money::ZERO;
            let mut all_proven = true;
            for rep in 0..scale.repeats() {
                let w = wisedb::sim::generator::uniform_workload(spec, 30, 12_000 + rep as u64);
                let s = model.schedule_batch(&w).expect("scheduling succeeds");
                wise += total_cost(spec, &goal, &s).expect("cost computes");
                let (o, proven) = oracle_cost(spec, &goal, &w);
                all_proven &= proven;
                opt += o;
            }
            let n = scale.repeats() as f64;
            cells.push(cents(wise / n));
            cells.push(format!("{}{}", cents(opt / n), oracle_note(all_proven)));
        }
        table.row(&cells);
    }
    table.print();
    println!("Two VM types should never cost more than one: extra choice only helps.");
}
