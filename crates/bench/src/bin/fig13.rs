//! Figure 13: WiSeDB vs the metric-specific heuristics (FFD / FFI / Pack9)
//! on 5000-query workloads, one group per goal kind. Dollar scale.

use wisedb::prelude::*;
use wisedb_bench::{dollars, train_all_goals, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    let spec = wisedb::sim::catalog::tpch_like(10);
    eprintln!("fig13: training models ({scale:?})...");
    let models = train_all_goals(&spec, scale);

    let mut table = Table::new(
        "Figure 13: 5000-query workload cost (dollars)",
        &["goal", "FFD", "FFI", "Pack9", "WiSeDB"],
    );
    for (kind, goal, model) in &models {
        eprintln!("fig13: scheduling under {}...", kind.name());
        let mut sums = [Money::ZERO; 4];
        for rep in 0..scale.repeats() {
            let w = wisedb::sim::generator::uniform_workload(&spec, 5000, 13_000 + rep as u64);
            for (i, h) in Heuristic::ALL.iter().enumerate() {
                let s = h.schedule(&spec, goal, &w).expect("baseline schedules");
                sums[i] += total_cost(&spec, goal, &s).expect("cost computes");
            }
            let s = model.schedule_batch(&w).expect("model schedules");
            sums[3] += total_cost(&spec, goal, &s).expect("cost computes");
        }
        let n = scale.repeats() as f64;
        table.row(&[
            kind.name().to_string(),
            dollars(sums[0] / n),
            dollars(sums[1] / n),
            dollars(sums[2] / n),
            dollars(sums[3] / n),
        ]);
    }
    table.print();
    println!(
        "No single heuristic wins everywhere; WiSeDB should be at or near the best in every row."
    );
}
