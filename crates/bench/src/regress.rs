//! Bench-regression bookkeeping for `wisedb-bench --bin regress`.
//!
//! The regress binary measures the four hot paths (A* kernel, batch
//! scheduling throughput, streaming event loop, multi-tenant consolidation
//! loop), writes the results to `BENCH_current.json`, and diffs them
//! against the committed `BENCH_baseline.json`. Two metric kinds get
//! different treatment:
//!
//! * [`MetricKind::Counter`] — deterministic work counters (A* expansions,
//!   interned states, VMs rented, retrains). Identical on every machine
//!   for a fixed scale and seed, so the default tolerance is **zero**: a
//!   hot-path PR that silently does more work fails the diff.
//! * [`MetricKind::Time`] — wall-clock medians. Machine-dependent, so they
//!   are compared only when a tolerance is explicitly configured
//!   (`WISEDB_REGRESS_TIME_TOL`); otherwise they are reported but not
//!   enforced. CI therefore enforces counters and archives times.

use serde::{Deserialize, Serialize};

/// How a measurement is compared across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Wall-clock duration (milliseconds); machine-dependent.
    Time,
    /// Deterministic work counter; machine-independent at fixed scale.
    Counter,
}

/// One recorded metric of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name, e.g. `astar_kernel/Max`.
    pub bench: String,
    /// Metric name, e.g. `time_ms` or `expanded`.
    pub metric: String,
    /// The measured value. [`f64::INFINITY`] means "unset" (e.g. a
    /// suboptimality bound a strategy could not establish) and round-trips
    /// through JSON as `null`.
    pub value: f64,
    /// How the value is compared across runs.
    pub kind: MetricKind,
}

// Hand-written serde: JSON cannot represent non-finite floats, and an
// unset bound (`f64::INFINITY`) is a legitimate measurement value — it
// serializes as `null` and reads back as infinity, so reports with an
// unbounded strategy still produce (and re-load from) valid JSON.
impl Serialize for Measurement {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("bench".to_string(), self.bench.to_value()),
            ("metric".to_string(), self.metric.to_value()),
            (
                "value".to_string(),
                if self.value.is_finite() {
                    self.value.to_value()
                } else {
                    serde::Value::Null
                },
            ),
            ("kind".to_string(), self.kind.to_value()),
        ])
    }
}

impl Deserialize for Measurement {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected a measurement object"))?;
        let field = |name: &str| -> Result<&serde::Value, serde::Error> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| serde::Error::custom(format!("missing measurement field `{name}`")))
        };
        let value = match field("value")? {
            serde::Value::Null => f64::INFINITY,
            other => f64::from_value(other)?,
        };
        Ok(Measurement {
            bench: String::from_value(field("bench")?)?,
            metric: String::from_value(field("metric")?)?,
            value,
            kind: MetricKind::from_value(field("kind")?)?,
        })
    }
}

impl Measurement {
    /// Convenience constructor.
    pub fn new(bench: &str, metric: &str, value: f64, kind: MetricKind) -> Self {
        Measurement {
            bench: bench.to_string(),
            metric: metric.to_string(),
            value,
            kind,
        }
    }

    fn key(&self) -> (String, String) {
        (self.bench.clone(), self.metric.clone())
    }
}

/// Everything one regress run records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// The `WISEDB_SCALE` the run used (`quick` / `std` / `paper`).
    pub scale: String,
    /// All measurements, in recording order.
    pub measurements: Vec<Measurement>,
}

/// The committed baseline: one report per scale that has been recorded.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BaselineFile {
    /// Reports keyed by their `scale` field (at most one per scale).
    pub reports: Vec<BenchReport>,
}

impl BaselineFile {
    /// The baseline report for `scale`, if one was recorded.
    pub fn for_scale(&self, scale: &str) -> Option<&BenchReport> {
        self.reports.iter().find(|r| r.scale == scale)
    }

    /// Inserts or replaces the report for its scale.
    pub fn upsert(&mut self, report: BenchReport) {
        match self.reports.iter_mut().find(|r| r.scale == report.scale) {
            Some(slot) => *slot = report,
            None => self.reports.push(report),
        }
    }
}

/// Relative tolerances for the diff, per metric kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Allowed fractional increase for counters (default 0.0: exact).
    pub counter: f64,
    /// Allowed fractional increase for times; `None` disables time
    /// enforcement (they are still reported).
    pub time: Option<f64>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            counter: 0.0,
            time: None,
        }
    }
}

/// One line of the diff between a baseline and a current report.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffLine {
    /// Current value exceeds baseline beyond the tolerance.
    Regression {
        /// `bench/metric`.
        what: String,
        /// Baseline value.
        baseline: f64,
        /// Current value.
        current: f64,
        /// Fractional change (`current/baseline - 1`).
        change: f64,
    },
    /// Current value within tolerance (reported for the table).
    Ok {
        /// `bench/metric`.
        what: String,
        /// Baseline value.
        baseline: f64,
        /// Current value.
        current: f64,
        /// Fractional change (`current/baseline - 1`).
        change: f64,
        /// Whether the change was enforced (counters / time with tol).
        enforced: bool,
    },
    /// Metric exists only in the current report (new bench or metric).
    New {
        /// `bench/metric`.
        what: String,
        /// Current value.
        current: f64,
    },
    /// Metric exists only in the baseline (bench removed or renamed).
    Missing {
        /// `bench/metric`.
        what: String,
    },
}

impl DiffLine {
    /// Whether this line should fail the run.
    pub fn is_regression(&self) -> bool {
        matches!(self, DiffLine::Regression { .. })
    }
}

/// Diffs `current` against `baseline` under `tol`. Lines come out in
/// current-report order, then baseline-only leftovers.
pub fn diff(baseline: &BenchReport, current: &BenchReport, tol: &Tolerances) -> Vec<DiffLine> {
    let mut out = Vec::new();
    let mut seen: Vec<(String, String)> = Vec::new();
    for m in &current.measurements {
        seen.push(m.key());
        let base = baseline
            .measurements
            .iter()
            .find(|b| b.bench == m.bench && b.metric == m.metric);
        let what = format!("{}/{}", m.bench, m.metric);
        match base {
            None => out.push(DiffLine::New {
                what,
                current: m.value,
            }),
            Some(b) => {
                let change = if b.value.abs() < f64::EPSILON {
                    if m.value.abs() < f64::EPSILON {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    m.value / b.value - 1.0
                };
                let limit = match m.kind {
                    MetricKind::Counter => Some(tol.counter),
                    MetricKind::Time => tol.time,
                };
                match limit {
                    // A sliver of absolute slack keeps exact-match counter
                    // diffs immune to float formatting round-trips.
                    Some(limit) if change > limit + 1e-9 => out.push(DiffLine::Regression {
                        what,
                        baseline: b.value,
                        current: m.value,
                        change,
                    }),
                    enforced => out.push(DiffLine::Ok {
                        what,
                        baseline: b.value,
                        current: m.value,
                        change,
                        enforced: enforced.is_some(),
                    }),
                }
            }
        }
    }
    for b in &baseline.measurements {
        if !seen.contains(&b.key()) {
            out.push(DiffLine::Missing {
                what: format!("{}/{}", b.bench, b.metric),
            });
        }
    }
    out
}

/// Renders diff lines as a fixed-width report table.
pub fn render_diff(lines: &[DiffLine]) -> String {
    let mut table = crate::Table::new(
        "regress: current vs baseline",
        &["bench/metric", "baseline", "current", "Δ%", "status"],
    );
    for line in lines {
        match line {
            DiffLine::Regression {
                what,
                baseline,
                current,
                change,
            } => table.row(&[
                what.clone(),
                format!("{baseline:.3}"),
                format!("{current:.3}"),
                format!("{:+.1}", change * 100.0),
                "REGRESSION".to_string(),
            ]),
            DiffLine::Ok {
                what,
                baseline,
                current,
                change,
                enforced,
            } => table.row(&[
                what.clone(),
                format!("{baseline:.3}"),
                format!("{current:.3}"),
                format!("{:+.1}", change * 100.0),
                if *enforced { "ok" } else { "info" }.to_string(),
            ]),
            DiffLine::New { what, current } => table.row(&[
                what.clone(),
                "-".to_string(),
                format!("{current:.3}"),
                "-".to_string(),
                "new".to_string(),
            ]),
            DiffLine::Missing { what } => table.row(&[
                what.clone(),
                "?".to_string(),
                "-".to_string(),
                "-".to_string(),
                "missing".to_string(),
            ]),
        }
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scale: &str, ms: &[(&str, &str, f64, MetricKind)]) -> BenchReport {
        BenchReport {
            scale: scale.to_string(),
            measurements: ms
                .iter()
                .map(|&(b, m, v, k)| Measurement::new(b, m, v, k))
                .collect(),
        }
    }

    #[test]
    fn counters_are_exact_by_default() {
        let base = report(
            "quick",
            &[("astar/Max", "expanded", 100.0, MetricKind::Counter)],
        );
        let same = report(
            "quick",
            &[("astar/Max", "expanded", 100.0, MetricKind::Counter)],
        );
        let worse = report(
            "quick",
            &[("astar/Max", "expanded", 101.0, MetricKind::Counter)],
        );
        let better = report(
            "quick",
            &[("astar/Max", "expanded", 90.0, MetricKind::Counter)],
        );
        let tol = Tolerances::default();
        assert!(!diff(&base, &same, &tol).iter().any(DiffLine::is_regression));
        assert!(diff(&base, &worse, &tol)
            .iter()
            .any(DiffLine::is_regression));
        assert!(!diff(&base, &better, &tol)
            .iter()
            .any(DiffLine::is_regression));
    }

    #[test]
    fn counter_tolerance_is_configurable() {
        let base = report("quick", &[("b", "expanded", 100.0, MetricKind::Counter)]);
        let worse = report("quick", &[("b", "expanded", 104.0, MetricKind::Counter)]);
        let tol = Tolerances {
            counter: 0.05,
            time: None,
        };
        assert!(!diff(&base, &worse, &tol)
            .iter()
            .any(DiffLine::is_regression));
    }

    #[test]
    fn times_are_informational_unless_tolerance_set() {
        let base = report("quick", &[("b", "time_ms", 10.0, MetricKind::Time)]);
        let slower = report("quick", &[("b", "time_ms", 30.0, MetricKind::Time)]);
        assert!(!diff(&base, &slower, &Tolerances::default())
            .iter()
            .any(DiffLine::is_regression));
        let tol = Tolerances {
            counter: 0.0,
            time: Some(0.5),
        };
        assert!(diff(&base, &slower, &tol)
            .iter()
            .any(DiffLine::is_regression));
        // Within the 50% envelope: fine.
        let ok = report("quick", &[("b", "time_ms", 14.0, MetricKind::Time)]);
        assert!(!diff(&base, &ok, &tol).iter().any(DiffLine::is_regression));
    }

    #[test]
    fn new_and_missing_metrics_do_not_fail() {
        let base = report("quick", &[("old", "expanded", 1.0, MetricKind::Counter)]);
        let cur = report("quick", &[("new", "expanded", 2.0, MetricKind::Counter)]);
        let lines = diff(&base, &cur, &Tolerances::default());
        assert!(lines.iter().any(|l| matches!(l, DiffLine::New { .. })));
        assert!(lines.iter().any(|l| matches!(l, DiffLine::Missing { .. })));
        assert!(!lines.iter().any(DiffLine::is_regression));
    }

    #[test]
    fn baseline_file_round_trips_through_json() {
        let mut file = BaselineFile::default();
        file.upsert(report(
            "quick",
            &[("astar/Max", "expanded", 123.0, MetricKind::Counter)],
        ));
        file.upsert(report(
            "std",
            &[("astar/Max", "time_ms", 4.5, MetricKind::Time)],
        ));
        let json = serde_json::to_string_pretty(&file).unwrap();
        let back: BaselineFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, file);
        assert!(back.for_scale("quick").is_some());
        assert!(back.for_scale("paper").is_none());
        // Upsert replaces in place.
        file.upsert(report(
            "quick",
            &[("astar/Max", "expanded", 99.0, MetricKind::Counter)],
        ));
        assert_eq!(file.reports.len(), 2);
        assert_eq!(file.for_scale("quick").unwrap().measurements[0].value, 99.0);
    }

    #[test]
    fn infinite_bound_serializes_as_null_and_round_trips() {
        // An unset suboptimality bound is f64::INFINITY; JSON cannot
        // express that, so it must become `null` (valid JSON!) and read
        // back as infinity instead of erroring out of report export.
        let report = report(
            "quick",
            &[(
                "strategies/exact",
                "bound_pct",
                f64::INFINITY,
                MetricKind::Counter,
            )],
        );
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"value\":null"), "got {json}");
        assert!(!json.contains("inf"), "got {json}");
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.measurements[0].value, f64::INFINITY);
        assert_eq!(back, report);
        // Finite values are untouched by the hand-written impls.
        let finite = report_for_scale_finite();
        let json = serde_json::to_string(&finite).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, finite);
    }

    fn report_for_scale_finite() -> BenchReport {
        report(
            "quick",
            &[("strategies/anytime", "bound_pct", 3.51, MetricKind::Counter)],
        )
    }

    #[test]
    fn render_diff_flags_regressions() {
        let base = report("quick", &[("b", "expanded", 100.0, MetricKind::Counter)]);
        let cur = report("quick", &[("b", "expanded", 120.0, MetricKind::Counter)]);
        let text = render_diff(&diff(&base, &cur, &Tolerances::default()));
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("+20.0"));
    }
}
