//! The scheduler-sharding scaling scenario: decisions per second vs
//! shard count over one large generated multi-class trace.
//!
//! K tenant SLA classes (goal kinds cycled, priorities staggered) drive
//! one [`ShardedService`] through `run_ticked` — each tick coalesces up
//! to `tick_size` arrivals into per-class groups that plan in parallel on
//! the shard workers. The measured number is **decisions per wall-clock
//! second** (plan calls; the admissions-per-second figure rides along),
//! swept over shard counts on *identically trained* services: the base
//! models are trained once and cloned into every run, so the sweep
//! isolates the sharded planning fan-out, not model variance.
//!
//! Two properties are checked while the curve is produced:
//!
//! * **Bit-identity** — every shard count must produce the same scrubbed
//!   final snapshot and the same completion fingerprint as the 1-shard
//!   run (wall-clock decision-latency fields are the only scrub). This is
//!   the sharding determinism guarantee measured end to end at scale.
//! * **Memory flatness** — peak resident set is sampled during each run;
//!   sharding must not grow memory materially (the epoch snapshot is one
//!   small struct per tick, the fleet and books stay singular).
//!
//! Used by `--bin scaling` (the curve + CI smoke) and `--bin regress`
//! (the `shard/*` counters).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wisedb::prelude::*;
use wisedb_advisor::{MultiScheduler, TrainingArtifacts};
use wisedb_core::ArrivingQuery;
use wisedb_runtime::{LoadSignal, ShardConfig, ShardStats, ShardedService};

use crate::Scale;

/// The scenario's shape at one scale.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Tenant SLA classes sharing the fleet.
    pub classes: usize,
    /// Total queries in the generated trace.
    pub queries: usize,
    /// Arrivals coalesced per scheduling tick.
    pub tick_size: usize,
    /// Shard counts swept, ascending, starting at 1.
    pub shard_counts: Vec<usize>,
}

/// The sweep configuration at each scale. Paper scale is the issue's
/// 10⁶-query trace; quick is CI-smoke sized.
pub fn config(scale: Scale) -> ScalingConfig {
    match scale {
        Scale::Quick => ScalingConfig {
            classes: 4,
            queries: 2_000,
            tick_size: 32,
            shard_counts: vec![1, 2],
        },
        Scale::Std => ScalingConfig {
            classes: 4,
            queries: 20_000,
            tick_size: 64,
            shard_counts: vec![1, 2, 4],
        },
        Scale::Paper => ScalingConfig {
            classes: 8,
            queries: 1_000_000,
            tick_size: 256,
            shard_counts: vec![1, 2, 4, 8],
        },
    }
}

/// `classes` SLA classes over `spec`, cycling the cheap-to-train goal
/// kinds (percentile models train orders of magnitude slower and add
/// nothing to a *throughput* sweep) with staggered priorities.
pub fn classes(spec: &WorkloadSpec, classes: usize) -> Vec<SlaClass> {
    let kinds = [
        GoalKind::MaxLatency,
        GoalKind::PerQuery,
        GoalKind::AverageLatency,
    ];
    (0..classes)
        .map(|i| {
            let kind = kinds[i % kinds.len()];
            SlaClass::new(
                format!("tenant-{i}"),
                PerformanceGoal::paper_default(kind, spec).expect("defaults exist"),
            )
            .with_priority((classes - 1 - i) as u8)
        })
        .collect()
}

/// Online configuration for every class. The age quantum is deliberately
/// *coarse* (one hour, against ≤ 6-minute queries): a tick coalesces
/// arrivals spanning many virtual minutes, and a fine quantum would give
/// nearly every tick a fresh ageing pattern — a synchronous aged-model
/// retrain per tick per class, which turns the sweep into a training
/// bench. Coarse buckets collapse the patterns into reuse-cache hits, so
/// the measured loop is what sharding parallelizes: model inference and
/// placement.
pub fn online_config() -> OnlineConfig {
    OnlineConfig {
        training: ModelConfig {
            num_samples: 150,
            sample_size: 9,
            seed: 0xBE7C4,
            ..ModelConfig::fast()
        },
        age_quantum: Millis::from_secs(3600),
        ..OnlineConfig::default()
    }
}

/// Trains one base model per class — once; every swept shard count gets
/// clones, so the services are identical by construction.
pub fn train_models(
    spec: &WorkloadSpec,
    class_set: &[SlaClass],
    scale: Scale,
) -> Vec<(DecisionModel, TrainingArtifacts)> {
    class_set
        .iter()
        .map(|class| {
            let generator = wisedb_advisor::ModelGenerator::new(
                spec.clone(),
                class.goal.clone(),
                scale.training().with_seed(0x5CA1E),
            );
            let (model, artifacts) = generator
                .train_with_artifacts()
                .expect("training on catalog specs succeeds");
            eprintln!("  {}: {:.2}s", class.name, model.stats().training_secs);
            (model, artifacts)
        })
        .collect()
}

/// One sharded service over clones of the trained models. Rebalancing
/// runs on the deterministic batch-size signal so the whole sweep —
/// including the `shard/rebalances` counter — is exactly reproducible.
pub fn build_service(
    class_set: &[SlaClass],
    trained: &[(DecisionModel, TrainingArtifacts)],
    shards: usize,
) -> ShardedService {
    build_service_with(
        class_set,
        trained,
        ShardConfig {
            shards,
            signal: LoadSignal::BatchSize,
            ..ShardConfig::default()
        },
    )
}

/// [`build_service`] with full control over the shard configuration —
/// the regress harness uses an eager-rebalance variant so the
/// `shard/rebalances` counter exercises (and exactly pins) the
/// rebalancer's deterministic batch-size path.
pub fn build_service_with(
    class_set: &[SlaClass],
    trained: &[(DecisionModel, TrainingArtifacts)],
    config: ShardConfig,
) -> ShardedService {
    let online = online_config();
    let schedulers: Vec<OnlineScheduler> = trained
        .iter()
        .map(|(m, a)| OnlineScheduler::with_model(m.clone(), a.clone(), online.clone()))
        .collect();
    let multi = MultiScheduler::with_schedulers(class_set.to_vec(), schedulers, online.clone())
        .expect("class schedulers share the spec");
    wisedb_runtime::WorkloadService::with_multi(
        multi,
        RuntimeConfig {
            online,
            ..RuntimeConfig::default()
        },
    )
    .into_sharded(config)
}

/// The merged multi-class trace: one sparse Poisson sub-stream per class
/// (multitenant-style rates — queries run minutes, gaps keep recall
/// batches bounded), merged by arrival time.
pub fn trace(config: &ScalingConfig) -> Vec<ArrivingQuery> {
    let per_class = config.queries / config.classes;
    let streams = (0..config.classes)
        .map(|c| {
            let mut process = PoissonProcess::per_second(
                1.0 / (250.0 + 25.0 * c as f64),
                TemplateMix::uniform(10),
            );
            wisedb_runtime::generate_class_stream(
                &mut process,
                per_class,
                0x5EED + c as u64,
                TenantId(c as u32),
            )
        })
        .collect();
    wisedb_runtime::merge_streams(streams)
}

/// What one swept shard count produces.
pub struct ShardRun {
    /// Shard count of this run.
    pub shards: usize,
    /// Wall-clock seconds spent in `run_ticked` (training excluded).
    pub elapsed_secs: f64,
    /// Plan calls per wall-clock second — the scaling curve's y axis.
    pub decisions_per_sec: f64,
    /// Queries admitted+planned per wall-clock second.
    pub queries_per_sec: f64,
    /// Peak resident set sampled during the run, in kilobytes (0 when
    /// `/proc/self/status` is unavailable).
    pub peak_rss_kb: u64,
    /// The run's shard counters (decisions, merges, rebalances — exact).
    pub stats: ShardStats,
    /// Scrubbed final snapshot (decision-latency fields zeroed).
    pub snapshot: MetricsSnapshot,
    /// Order-sensitive hash of every completion — the bit-identity
    /// witness that avoids holding 10⁶ completions per run.
    pub fingerprint: u64,
}

/// Replays `stream` through a fresh `shards`-way service and measures.
pub fn run_one(
    class_set: &[SlaClass],
    trained: &[(DecisionModel, TrainingArtifacts)],
    stream: &[ArrivingQuery],
    tick_size: usize,
    shards: usize,
) -> ShardRun {
    let mut service = build_service(class_set, trained, shards);
    let sampler = RssSampler::start();
    let started = Instant::now();
    let report = service
        .run_ticked(stream, tick_size)
        .expect("the generated trace replays cleanly");
    let elapsed = started.elapsed().as_secs_f64();
    let peak_rss_kb = sampler.finish();
    let stats = service.stats();
    ShardRun {
        shards,
        elapsed_secs: elapsed,
        decisions_per_sec: stats.decisions as f64 / elapsed.max(1e-9),
        queries_per_sec: stream.len() as f64 / elapsed.max(1e-9),
        peak_rss_kb,
        stats,
        snapshot: scrub(report.last),
        fingerprint: fingerprint(&report.completions),
    }
}

/// Zeroes the wall-clock decision-latency fields — the only snapshot
/// fields that legitimately differ between identical runs.
pub fn scrub(mut snapshot: MetricsSnapshot) -> MetricsSnapshot {
    snapshot.mean_decision_secs = 0.0;
    snapshot.p95_decision_secs = 0.0;
    snapshot
}

/// Order-sensitive fingerprint of a completion sequence.
pub fn fingerprint(completions: &[wisedb::sim::Completion]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    for c in completions {
        c.query.index().hash(&mut hasher);
        c.template.index().hash(&mut hasher);
        c.class.index().hash(&mut hasher);
        c.vm_index.hash(&mut hasher);
        c.start.as_millis().hash(&mut hasher);
        c.finish.as_millis().hash(&mut hasher);
    }
    hasher.finish()
}

/// Samples this process's `VmRSS` on a background thread (10 ms cadence)
/// and keeps the peak. Linux-only by nature; elsewhere the peak reads 0
/// and callers skip the flatness check.
pub struct RssSampler {
    stop: Arc<AtomicBool>,
    peak: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RssSampler {
    /// Starts sampling (one immediate sample, then every 10 ms).
    pub fn start() -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let peak = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let peak = Arc::clone(&peak);
            std::thread::Builder::new()
                .name("wisedb-rss-sampler".to_string())
                .spawn(move || loop {
                    if let Some(kb) = rss_kb() {
                        peak.fetch_max(kb, Ordering::Relaxed);
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                })
                .ok()
        };
        RssSampler { stop, peak, handle }
    }

    /// Stops the sampler (after one final sample) and returns the peak
    /// observed `VmRSS`, in kilobytes.
    pub fn finish(self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle {
            let _ = handle.join();
        }
        self.peak.load(Ordering::Relaxed)
    }
}

/// Current `VmRSS` in kilobytes, from `/proc/self/status`.
pub fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_scale_up_and_start_at_one_shard() {
        for scale in [Scale::Quick, Scale::Std, Scale::Paper] {
            let c = config(scale);
            assert_eq!(c.shard_counts[0], 1, "the sweep baseline is unsharded");
            assert!(c.queries / c.classes > 0);
            assert!(c.shard_counts.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(config(Scale::Paper).queries, 1_000_000);
    }

    #[test]
    fn traces_are_seeded_and_class_tagged() {
        let cfg = ScalingConfig {
            classes: 3,
            queries: 90,
            tick_size: 8,
            shard_counts: vec![1],
        };
        let (a, b) = (trace(&cfg), trace(&cfg));
        assert_eq!(a, b, "the trace is deterministic under its seeds");
        assert_eq!(a.len(), 90);
        for c in 0..3u32 {
            assert!(a.iter().any(|q| q.class == TenantId(c)));
        }
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn fingerprint_distinguishes_order_and_content() {
        use wisedb::sim::Completion;
        use wisedb_core::QueryId;
        let c = |q: u32, vm: usize| Completion {
            query: QueryId(q),
            template: TemplateId(0),
            class: TenantId(0),
            vm_index: vm,
            start: Millis::from_secs(1),
            finish: Millis::from_secs(2),
        };
        assert_eq!(
            fingerprint(&[c(0, 0), c(1, 1)]),
            fingerprint(&[c(0, 0), c(1, 1)])
        );
        assert_ne!(
            fingerprint(&[c(0, 0), c(1, 1)]),
            fingerprint(&[c(1, 1), c(0, 0)])
        );
        assert_ne!(fingerprint(&[c(0, 0)]), fingerprint(&[c(0, 1)]));
    }

    #[test]
    fn rss_sampler_reads_something_on_linux() {
        let sampler = RssSampler::start();
        let ballast = vec![0u8; 1 << 20];
        std::hint::black_box(&ballast);
        let peak = sampler.finish();
        if rss_kb().is_some() {
            assert!(peak > 0, "the sampler saw at least one VmRSS reading");
        }
    }
}
