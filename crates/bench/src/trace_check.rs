//! Chrome-trace validation: parse a trace produced by `wisedb-obs`'s
//! exporter back through the vendored JSON parser and check the
//! structural invariants a real viewer (Perfetto, `chrome://tracing`)
//! relies on. Used by the `--trace` CI smoke and the obs e2e tests, so a
//! malformed export fails a gate instead of silently rendering wrong.
//!
//! Checked invariants:
//!
//! * the document parses and is `{"traceEvents": [...]}`;
//! * every event has `ph` ∈ {`B`,`E`,`X`,`i`}, a `name`, and numeric
//!   `ts`/`pid`/`tid`;
//! * per thread, `B`/`E` events are properly nested (every `E` closes the
//!   innermost open `B` of the same name) and their timestamps are
//!   non-decreasing — `X` events are exempt, since they carry
//!   retroactive start stamps (e.g. `serve.queue_wait`);
//! * every `X` event carries a `dur`;
//! * every span opened is closed (no dangling `B` at end of trace).

use std::collections::BTreeMap;

use serde::Value;
use serde_json::from_str_value;

/// Per-span-name totals recovered from a validated trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Closed `B`/`E` pairs plus `X` events with this name.
    pub count: u64,
    /// Summed duration across them, in microseconds.
    pub total_us: u64,
}

/// What [`validate_chrome_trace`] recovered from a well-formed trace.
#[derive(Debug, Clone, Default)]
pub struct TraceCheck {
    /// Events in the `traceEvents` array.
    pub events: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Per-name span statistics (`B`/`E` pairs and `X` events).
    pub spans: BTreeMap<String, SpanStat>,
}

impl TraceCheck {
    /// Total span duration (µs) across every name matching `prefix`.
    pub fn total_us_with_prefix(&self, prefix: &str) -> u64 {
        self.spans
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, s)| s.total_us)
            .sum()
    }

    /// The statistics for one span name (zero if absent).
    pub fn span(&self, name: &str) -> SpanStat {
        self.spans.get(name).copied().unwrap_or_default()
    }
}

/// Validates a Chrome trace-event JSON document; `Err` carries the first
/// violated invariant, human-readable.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let root = from_str_value(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("trace has no traceEvents array")?;

    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    // Per-tid stack of open (name, ts) spans, plus the last B/E timestamp
    // seen on that thread for the monotonicity check.
    let mut stacks: BTreeMap<u64, Vec<(String, u64)>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();

    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no ph"))?;
        let name = event
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no name"))?;
        let ts = event
            .get("ts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i} ({name}) has no numeric ts"))?;
        let tid = event
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i} ({name}) has no numeric tid"))?;
        event
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i} ({name}) has no numeric pid"))?;

        match ph {
            "B" | "E" => {
                let last = last_ts.entry(tid).or_insert(ts);
                if ts < *last {
                    return Err(format!(
                        "event {i} ({name}): ts {ts} goes backwards on tid {tid} (last {last})"
                    ));
                }
                *last = ts;
                let stack = stacks.entry(tid).or_default();
                if ph == "B" {
                    stack.push((name.to_string(), ts));
                } else {
                    let Some((open_name, open_ts)) = stack.pop() else {
                        return Err(format!(
                            "event {i}: E {name} on tid {tid} with no open span"
                        ));
                    };
                    if open_name != name {
                        return Err(format!(
                            "event {i}: E {name} closes B {open_name} on tid {tid}"
                        ));
                    }
                    let stat = check.spans.entry(open_name).or_default();
                    stat.count += 1;
                    stat.total_us += ts - open_ts;
                }
            }
            "X" => {
                let dur = event
                    .get("dur")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i} ({name}): X without numeric dur"))?;
                let stat = check.spans.entry(name.to_string()).or_default();
                stat.count += 1;
                stat.total_us += dur;
            }
            "i" => check.instants += 1,
            other => return Err(format!("event {i} ({name}): unknown ph {other:?}")),
        }
    }

    for (tid, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("span {name} on tid {tid} never closed"));
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ph: &str, name: &str, ts: u64, tid: u64, dur: Option<u64>) -> String {
        let dur = dur.map(|d| format!(",\"dur\":{d}")).unwrap_or_default();
        format!("{{\"ph\":\"{ph}\",\"name\":\"{name}\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}{dur}}}")
    }

    fn doc(events: &[String]) -> String {
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    #[test]
    fn well_formed_traces_validate_and_total() {
        let text = doc(&[
            event("B", "outer", 10, 1, None),
            event("B", "inner", 20, 1, None),
            event("E", "inner", 30, 1, None),
            event("E", "outer", 50, 1, None),
            event("X", "wait", 5, 2, Some(7)),
            event("i", "mark", 60, 1, None),
        ]);
        let check = validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(check.events, 6);
        assert_eq!(check.instants, 1);
        assert_eq!(
            check.span("outer"),
            SpanStat {
                count: 1,
                total_us: 40
            }
        );
        assert_eq!(
            check.span("inner"),
            SpanStat {
                count: 1,
                total_us: 10
            }
        );
        assert_eq!(
            check.span("wait"),
            SpanStat {
                count: 1,
                total_us: 7
            }
        );
        assert_eq!(check.total_us_with_prefix("in"), 10);
    }

    #[test]
    fn violations_are_rejected() {
        // Mismatched close.
        let text = doc(&[event("B", "a", 10, 1, None), event("E", "b", 20, 1, None)]);
        assert!(validate_chrome_trace(&text).is_err());
        // Dangling open.
        let text = doc(&[event("B", "a", 10, 1, None)]);
        assert!(validate_chrome_trace(&text).is_err());
        // Backwards clock on one thread.
        let text = doc(&[event("B", "a", 10, 1, None), event("E", "a", 5, 1, None)]);
        assert!(validate_chrome_trace(&text).is_err());
        // X without dur.
        let text = doc(&[event("X", "a", 10, 1, None)]);
        assert!(validate_chrome_trace(&text).is_err());
        // Not JSON / wrong shape.
        assert!(validate_chrome_trace("{").is_err());
        assert!(validate_chrome_trace("{\"events\":[]}").is_err());
    }

    #[test]
    fn x_events_may_carry_retroactive_timestamps() {
        // The queue-wait pattern: an X stamped before the thread's
        // current B/E clock must not trip the monotonicity check.
        let text = doc(&[
            event("B", "tick", 100, 1, None),
            event("X", "queue_wait", 40, 1, Some(55)),
            event("E", "tick", 200, 1, None),
        ]);
        let check = validate_chrome_trace(&text).expect("retroactive X is legal");
        assert_eq!(check.span("queue_wait").total_us, 55);
    }
}
