//! The serve-layer load scenario: replay an arrival trace over the wire
//! and measure decision latency at the client.
//!
//! One loopback [`Server`] fronts a freshly trained single-class service;
//! one [`Client`] connection replays a seeded Poisson trace *sequentially*
//! (offer, await verdict, next), timing each round trip wall-clock. The
//! sequential replay keeps every admission decision deterministic — same
//! trace, same virtual times, same shed set — so `admitted`/`shed` are
//! exact regress **counters**, while the round-trip percentiles are
//! machine-dependent **times** gated against the SLO adopted for the
//! serve layer:
//!
//! > **SLO (quick-scale loopback): p95 < 1 ms, p99 < 10 ms.**
//!
//! The trace runs hot (Poisson at 2 q/s against 2–6-minute queries) with
//! a `MaxInFlight` admission cap sized at 60% of the trace, so a fixed
//! tail of it is shed — exercising the graceful-degradation path (`Shed`
//! frames, never dropped connections) under measurement.
//!
//! Used by `--bin loadgen` (the report + SLO gate) and `--bin regress`
//! (the `serve/*` counters and times).

use std::time::Instant;

use wisedb::prelude::*;
use wisedb_core::{ArrivingQuery, LatencyHistogram};
use wisedb_serve::{Client, ServeConfig, Server};

use crate::Scale;

/// Requests per scale.
pub fn requests(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 80,
        Scale::Std => 200,
        Scale::Paper => 400,
    }
}

/// What one load run produces.
pub struct LoadReport {
    /// Requests sent (== offers answered).
    pub n: usize,
    /// Offers answered `Admitted`.
    pub admitted: u64,
    /// Offers answered `Shed` (graceful degradation, counted exactly).
    pub shed: u64,
    /// Round-trip decision latency percentiles, in microseconds.
    pub p50_us: f64,
    /// 95th percentile round trip, in microseconds.
    pub p95_us: f64,
    /// 99th percentile round trip, in microseconds.
    pub p99_us: f64,
    /// Summed round-trip time across all requests, in microseconds —
    /// what the trace's server-side span totals are compared against.
    pub total_us: u64,
    /// The server's final metrics snapshot, fetched over the wire.
    pub snapshot: MetricsSnapshot,
    /// The server's observability exposition, fetched over the wire via
    /// [`Request::Telemetry`](wisedb_serve::Request::Telemetry) right
    /// before shutdown. With tracing off this is just the header.
    pub telemetry: String,
}

impl LoadReport {
    /// Fraction of requests shed — deterministic under the seed, so the
    /// regress harness compares it exactly.
    pub fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.n as f64
    }
}

/// In-flight cap at each scale: 60% of the trace fits, the rest sheds.
/// Queries run minutes while the whole trace arrives in under a virtual
/// minute, so in-flight only grows during the replay — the first
/// `admission_cap` arrivals are admitted and every later one sheds,
/// independent of planner placement choices.
pub fn admission_cap(scale: Scale) -> u64 {
    (requests(scale) * 3 / 5) as u64
}

/// Builds the scenario's service: the catalog spec under a max-latency
/// SLA, trained small (the serve layer's cost is framing + planning, not
/// model quality). The admission valve is [`admission_cap`]; the age
/// quantum is one hour so the hot sub-minute trace never triggers a
/// synchronous retrain — decision latency measures the serve + planning
/// path, with retraining covered by its own benches.
pub fn build_service(scale: Scale) -> WorkloadService {
    let spec = wisedb::sim::catalog::tpch_like(10);
    let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec)
        .expect("catalog specs admit defaults");
    let training = ModelConfig {
        num_samples: if scale == Scale::Quick { 60 } else { 120 },
        sample_size: 9,
        seed: 0x5E12E,
        ..ModelConfig::fast()
    };
    let config = RuntimeConfig {
        online: OnlineConfig {
            training,
            age_quantum: Millis::HOUR,
            ..OnlineConfig::default()
        },
        admission: AdmissionPolicy::MaxInFlight(admission_cap(scale)),
        ..RuntimeConfig::default()
    };
    WorkloadService::train(spec, goal, config).expect("training on the catalog spec succeeds")
}

/// The seeded hot trace the client replays.
pub fn trace(scale: Scale) -> Vec<ArrivingQuery> {
    let mut process = PoissonProcess::per_second(2.0, TemplateMix::uniform(10));
    wisedb::runtime::generate_stream(&mut process, requests(scale), 0x10AD)
}

/// Spawns a loopback server around `service`, replays the trace over one
/// connection, and reports counters + round-trip percentiles.
pub fn run(service: WorkloadService, scale: Scale) -> LoadReport {
    let handle = Server::spawn(service, ServeConfig::default()).expect("loopback bind succeeds");
    let mut client = Client::connect(handle.addr()).expect("loopback connect succeeds");

    let stream = trace(scale);
    // Round trips land in a `LatencyHistogram` whose ticks are
    // *microseconds* (the `wisedb-obs` registry convention), replacing a
    // raw sorted Vec — same nearest-rank contract as `percentile_sorted`,
    // quantized to 1 µs.
    let mut latencies = LatencyHistogram::new();
    let (mut admitted, mut shed) = (0u64, 0u64);
    for arrival in &stream {
        let started = Instant::now();
        let outcome = client
            .offer(arrival.class, arrival.template, arrival.arrival)
            .expect("offers over loopback succeed");
        latencies.push(Millis::from_millis(started.elapsed().as_micros() as u64));
        match outcome {
            wisedb_runtime::OfferOutcome::Admitted => admitted += 1,
            wisedb_runtime::OfferOutcome::Shed => shed += 1,
        }
    }
    let snapshot = client.metrics().expect("metrics over loopback succeed");
    let telemetry = client
        .telemetry()
        .expect("telemetry over loopback succeeds");
    client.shutdown().expect("shutdown over loopback succeeds");
    handle.join();

    LoadReport {
        n: stream.len(),
        admitted,
        shed,
        p50_us: latencies.percentile(50.0).as_millis() as f64,
        p95_us: latencies.percentile(95.0).as_millis() as f64,
        p99_us: latencies.percentile(99.0).as_millis() as f64,
        total_us: latencies.sum().as_millis(),
        snapshot,
        telemetry,
    }
}

/// Replays the trace over `clients` concurrent connections against a
/// server with `shards` scheduler shards. The trace is dealt round-robin,
/// so each client's slice keeps non-decreasing virtual arrival times; the
/// live cluster clamps stale instants (`advance_to` never rewinds), so
/// cross-client interleaving is safe — but it *does* change the admission
/// order, so per-verdict counts are only deterministic in aggregate:
/// every offer gets exactly one verdict, hence the server's
/// `admitted`/`rejected` totals still equal the clients' sums exactly.
/// Each client runs lockstep (offer, await, next), so at most `clients`
/// offers ever wait on the scheduler — far inside the default
/// `queue_depth`, meaning no queue sheds pollute the counters.
pub fn run_concurrent(
    service: WorkloadService,
    scale: Scale,
    clients: usize,
    shards: usize,
) -> LoadReport {
    let clients = clients.max(1);
    let config = ServeConfig {
        shards,
        ..ServeConfig::default()
    };
    let handle = Server::spawn(service, config).expect("loopback bind succeeds");
    let addr = handle.addr();

    let stream = trace(scale);
    let slices: Vec<Vec<ArrivingQuery>> = (0..clients)
        .map(|c| stream.iter().skip(c).step_by(clients).cloned().collect())
        .collect();
    let outcomes: Vec<(u64, u64, Vec<u64>)> = std::thread::scope(|scope| {
        slices
            .into_iter()
            .map(|slice| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("loopback connect succeeds");
                    let (mut admitted, mut shed) = (0u64, 0u64);
                    let mut micros = Vec::with_capacity(slice.len());
                    for arrival in &slice {
                        let started = Instant::now();
                        let outcome = client
                            .offer(arrival.class, arrival.template, arrival.arrival)
                            .expect("offers over loopback succeed");
                        micros.push(started.elapsed().as_micros() as u64);
                        match outcome {
                            wisedb_runtime::OfferOutcome::Admitted => admitted += 1,
                            wisedb_runtime::OfferOutcome::Shed => shed += 1,
                        }
                    }
                    (admitted, shed, micros)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client threads do not panic"))
            .collect()
    });

    let mut latencies = LatencyHistogram::new();
    let (mut admitted, mut shed) = (0u64, 0u64);
    for (a, s, micros) in outcomes {
        admitted += a;
        shed += s;
        for us in micros {
            latencies.push(Millis::from_millis(us));
        }
    }

    let mut control = Client::connect(addr).expect("loopback connect succeeds");
    let snapshot = control.metrics().expect("metrics over loopback succeed");
    let telemetry = control
        .telemetry()
        .expect("telemetry over loopback succeeds");
    control.shutdown().expect("shutdown over loopback succeeds");
    handle.join();

    LoadReport {
        n: stream.len(),
        admitted,
        shed,
        p50_us: latencies.percentile(50.0).as_millis() as f64,
        p95_us: latencies.percentile(95.0).as_millis() as f64,
        p99_us: latencies.percentile(99.0).as_millis() as f64,
        total_us: latencies.sum().as_millis(),
        snapshot,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_match_nearest_rank_microseconds() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 3, 4] {
            h.push(Millis::from_millis(us));
        }
        assert_eq!(h.percentile(50.0).as_millis(), 2);
        assert_eq!(h.percentile(95.0).as_millis(), 4);
        assert_eq!(h.percentile(100.0).as_millis(), 4);
        assert_eq!(LatencyHistogram::new().percentile(95.0), Millis::ZERO);
    }

    #[test]
    fn traces_are_seeded_and_scale_sized() {
        let a = trace(Scale::Quick);
        let b = trace(Scale::Quick);
        assert_eq!(a, b);
        assert_eq!(a.len(), requests(Scale::Quick));
        assert!(requests(Scale::Std) > requests(Scale::Quick));
    }
}
