//! # wisedb-core
//!
//! Domain model for **WiSeDB** (Marcus & Papaemmanouil, VLDB 2016), a
//! learning-based workload management advisor for cloud databases.
//!
//! This crate defines the vocabulary every other WiSeDB crate speaks:
//!
//! * [`Millis`] and [`Money`] — exact durations and dollar amounts.
//! * [`QueryTemplate`] / [`TemplateId`] — parameterized queries whose
//!   instances share latency characteristics (§2).
//! * [`VmType`] / [`VmTypeId`] — rentable VM configurations with start-up
//!   fees and hourly rates (§3).
//! * [`WorkloadSpec`] — the application's workload specification: templates
//!   plus VM types.
//! * [`SpecHandle`] / [`GoalHandle`] — cheap `Arc`-backed shared views of a
//!   spec/goal, what the advisor and runtime layers pass around.
//! * [`Workload`] / [`Query`] — batches of template instances.
//! * [`Schedule`] — provisioned VMs with ordered query queues; the object
//!   WiSeDB ultimately produces.
//! * [`PerformanceGoal`] — the four SLA classes (per-query, max, average,
//!   percentile) with violation-period penalty semantics (§3).
//! * [`cost::total_cost`] — Equation 1, the quantity everything minimizes.
//! * [`ArrivingQuery`] / [`MetricsSnapshot`] — online arrivals (§6.3) and
//!   the live health metrics of the streaming runtime.
//! * [`TenantId`] / [`SlaClass`] / [`ClassMetrics`] — tenant SLA classes:
//!   multiple performance goals multiplexed on one shared fleet, with
//!   per-class metrics and dollar attribution.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod error;
pub mod goal;
pub mod handle;
pub mod money;
pub mod schedule;
pub mod spec;
pub mod stream;
pub mod template;
pub mod tenant;
pub mod time;
pub mod vm;
pub mod workload;

pub use cost::{cost_breakdown, total_cost, CostBreakdown};
pub use error::{CoreError, CoreResult};
pub use goal::{GoalKind, PenaltyDigest, PenaltyTracker, PercentileDigest, PerformanceGoal};
pub use handle::{GoalHandle, SpecHandle};
pub use money::{Money, PenaltyRate};
pub use schedule::{Placement, QueryLatency, Schedule, VmInstance};
pub use spec::WorkloadSpec;
pub use stream::{
    percentile_sorted, ArrivingQuery, LatencyHistogram, LatencySummary, MetricsSnapshot, OpenVmView,
};
pub use template::{QueryTemplate, TemplateId};
pub use tenant::{validate_classes, ClassMetrics, SlaClass, TenantId};
pub use time::Millis;
pub use vm::{VmType, VmTypeId};
pub use workload::{Query, QueryId, Workload};
