//! Millisecond-resolution durations.
//!
//! All latencies, deadlines, wait times, and violation periods in WiSeDB are
//! expressed as [`Millis`]. Milliseconds are fine-grained enough for the
//! minutes-scale analytical queries the paper studies while keeping every
//! duration an exactly-representable integer, which makes A* search costs and
//! penalty computations reproducible across runs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A non-negative duration with millisecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Millis(u64);

impl Millis {
    /// The zero duration.
    pub const ZERO: Millis = Millis(0);

    /// One second.
    pub const SECOND: Millis = Millis(1_000);

    /// One minute.
    pub const MINUTE: Millis = Millis(60_000);

    /// One hour.
    pub const HOUR: Millis = Millis(3_600_000);

    /// Creates a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Millis(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Millis(secs * 1_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        Millis(mins * 60_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Millis::ZERO;
        }
        Millis((secs * 1_000.0).round() as u64)
    }

    /// Raw millisecond count.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// `true` iff this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero; the natural operation for violation
    /// periods (`completion - deadline` is zero when the deadline is met).
    pub fn saturating_sub(self, rhs: Millis) -> Millis {
        Millis(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a non-negative factor, rounding to the nearest
    /// millisecond. Used by goal tightening/loosening.
    pub fn mul_f64(self, factor: f64) -> Millis {
        Millis::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The larger of two durations.
    pub fn max(self, rhs: Millis) -> Millis {
        Millis(self.0.max(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, rhs: Millis) -> Millis {
        Millis(self.0.min(rhs.0))
    }
}

impl Add for Millis {
    type Output = Millis;
    fn add(self, rhs: Millis) -> Millis {
        Millis(self.0 + rhs.0)
    }
}

impl AddAssign for Millis {
    fn add_assign(&mut self, rhs: Millis) {
        self.0 += rhs.0;
    }
}

impl Sub for Millis {
    type Output = Millis;
    /// Panics on underflow in debug builds, matching integer semantics.
    fn sub(self, rhs: Millis) -> Millis {
        Millis(self.0 - rhs.0)
    }
}

impl SubAssign for Millis {
    fn sub_assign(&mut self, rhs: Millis) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Millis {
    type Output = Millis;
    fn mul(self, rhs: u64) -> Millis {
        Millis(self.0 * rhs)
    }
}

impl Div<u64> for Millis {
    type Output = Millis;
    fn div(self, rhs: u64) -> Millis {
        Millis(self.0 / rhs)
    }
}

impl Sum for Millis {
    fn sum<I: Iterator<Item = Millis>>(iter: I) -> Millis {
        Millis(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Millis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0;
        let mins = total_ms / 60_000;
        let secs = (total_ms % 60_000) / 1_000;
        let ms = total_ms % 1_000;
        if mins > 0 {
            if ms == 0 {
                write!(f, "{mins}m{secs:02}s")
            } else {
                write!(f, "{mins}m{secs:02}.{ms:03}s")
            }
        } else if ms == 0 {
            write!(f, "{secs}s")
        } else {
            write!(f, "{secs}.{ms:03}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Millis::from_secs(2).as_millis(), 2_000);
        assert_eq!(Millis::from_mins(3), Millis::from_secs(180));
        assert_eq!(Millis::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(Millis::from_secs_f64(-4.0), Millis::ZERO);
        assert_eq!(Millis::from_secs_f64(f64::NAN), Millis::ZERO);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Millis::from_secs(5);
        let b = Millis::from_secs(9);
        assert_eq!(b.saturating_sub(a), Millis::from_secs(4));
        assert_eq!(a.saturating_sub(b), Millis::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Millis::from_secs(90);
        assert_eq!(a * 2, Millis::from_secs(180));
        assert_eq!(a / 3, Millis::from_secs(30));
        assert_eq!(a + a, Millis::from_mins(3));
        let total: Millis = [a, a, a].into_iter().sum();
        assert_eq!(total, Millis::from_secs(270));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Millis::from_secs(10).mul_f64(1.5), Millis::from_secs(15));
        assert_eq!(Millis::from_secs(10).mul_f64(0.0), Millis::ZERO);
        // 2.5x the 6-minute longest TPC-H template = the paper's 15m default.
        assert_eq!(Millis::from_mins(6).mul_f64(2.5), Millis::from_mins(15));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Millis::from_secs(150).to_string(), "2m30s");
        assert_eq!(Millis::from_millis(1_250).to_string(), "1.250s");
        assert_eq!(Millis::from_millis(61_250).to_string(), "1m01.250s");
        assert_eq!(Millis::ZERO.to_string(), "0s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Millis::from_secs(1) < Millis::from_secs(2));
        assert_eq!(
            Millis::from_secs(7).max(Millis::from_secs(3)),
            Millis::from_secs(7)
        );
        assert_eq!(
            Millis::from_secs(7).min(Millis::from_secs(3)),
            Millis::from_secs(3)
        );
    }

    #[test]
    fn serde_round_trip() {
        let m = Millis::from_millis(12_345);
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(json, "12345");
        let back: Millis = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
