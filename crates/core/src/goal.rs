//! Performance goals (SLAs) and their penalty semantics.
//!
//! WiSeDB supports four latency-oriented goal classes (§2):
//!
//! 1. **Per-query deadline** — each template has its own latency upper bound.
//! 2. **Max latency** — one upper bound on every query's latency.
//! 3. **Average latency** — an upper bound on the workload's mean latency.
//! 4. **Percentile** — at least `p`% of queries must finish within a bound.
//!
//! Penalties follow the violation-period model of §3: a fixed rate is charged
//! per unit of time during which the goal was not met. Each goal also knows
//! whether it is *monotonically increasing* (adding a query never lowers the
//! penalty — enables the admissible A* heuristic of Eq. 3) and whether it is
//! *linearly shiftable* (delaying all queries by `n` equals tightening the
//! goal by `n` — enables the online Shift optimization of §6.3.1).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::money::{Money, PenaltyRate};
use crate::schedule::QueryLatency;
use crate::spec::WorkloadSpec;
use crate::template::TemplateId;
use crate::time::Millis;

/// Which of the four goal classes a goal belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GoalKind {
    /// Per-template deadlines.
    PerQuery,
    /// One deadline for every query.
    MaxLatency,
    /// Bound on the workload's mean latency.
    AverageLatency,
    /// `percent`% of queries within a deadline.
    Percentile,
}

impl GoalKind {
    /// All four kinds, in the order the paper's figures list them.
    pub const ALL: [GoalKind; 4] = [
        GoalKind::PerQuery,
        GoalKind::AverageLatency,
        GoalKind::MaxLatency,
        GoalKind::Percentile,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            GoalKind::PerQuery => "PerQuery",
            GoalKind::MaxLatency => "Max",
            GoalKind::AverageLatency => "Average",
            GoalKind::Percentile => "Percent",
        }
    }
}

/// An application-defined performance goal with its penalty rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PerformanceGoal {
    /// Queries of template `i` must finish within `deadlines[i]`.
    PerQuery {
        /// Deadline per template, indexed by [`TemplateId`].
        deadlines: Vec<Millis>,
        /// Charge per unit of violation time.
        rate: PenaltyRate,
    },
    /// No query may exceed `deadline`.
    MaxLatency {
        /// Workload-wide latency bound.
        deadline: Millis,
        /// Charge per unit of violation time.
        rate: PenaltyRate,
    },
    /// The workload's mean latency must not exceed `target`.
    AverageLatency {
        /// Mean-latency bound.
        target: Millis,
        /// Charge per unit the mean exceeds the bound.
        rate: PenaltyRate,
    },
    /// At least `percent`% of queries must finish within `deadline`.
    Percentile {
        /// Required fraction, in (0, 100].
        percent: f64,
        /// Latency bound for that fraction.
        deadline: Millis,
        /// Charge per unit of violation time.
        rate: PenaltyRate,
    },
}

impl PerformanceGoal {
    /// The goal's class.
    pub fn kind(&self) -> GoalKind {
        match self {
            PerformanceGoal::PerQuery { .. } => GoalKind::PerQuery,
            PerformanceGoal::MaxLatency { .. } => GoalKind::MaxLatency,
            PerformanceGoal::AverageLatency { .. } => GoalKind::AverageLatency,
            PerformanceGoal::Percentile { .. } => GoalKind::Percentile,
        }
    }

    /// Builds the paper's default goal of the given kind for `spec` (§7.1):
    /// per-query deadlines of 3x the template latency; max/average/percentile
    /// deadlines of 2.5x the longest/mean template latency; 90th percentile;
    /// one cent per second of violation.
    pub fn paper_default(kind: GoalKind, spec: &WorkloadSpec) -> CoreResult<Self> {
        let rate = PenaltyRate::CENT_PER_SECOND;
        let expected: Vec<Millis> = spec
            .templates()
            .iter()
            .map(|t| {
                t.latencies
                    .first()
                    .copied()
                    .flatten()
                    .or_else(|| t.min_latency())
                    .unwrap_or(Millis::ZERO)
            })
            .collect();
        if expected.is_empty() {
            return Err(CoreError::NoTemplates);
        }
        let longest = expected.iter().copied().max().unwrap_or(Millis::ZERO);
        let mean = expected.iter().copied().sum::<Millis>() / expected.len() as u64;
        Ok(match kind {
            GoalKind::PerQuery => PerformanceGoal::PerQuery {
                deadlines: expected.iter().map(|l| l.mul_f64(3.0)).collect(),
                rate,
            },
            GoalKind::MaxLatency => PerformanceGoal::MaxLatency {
                deadline: longest.mul_f64(2.5),
                rate,
            },
            GoalKind::AverageLatency => PerformanceGoal::AverageLatency {
                target: mean.mul_f64(2.5),
                rate,
            },
            GoalKind::Percentile => PerformanceGoal::Percentile {
                percent: 90.0,
                deadline: mean.mul_f64(2.5),
                rate,
            },
        })
    }

    /// Validates the goal against a specification.
    pub fn validate_against(&self, spec: &WorkloadSpec) -> CoreResult<()> {
        match self {
            PerformanceGoal::PerQuery { deadlines, .. } => {
                if deadlines.len() != spec.num_templates() {
                    return Err(CoreError::DeadlineArityMismatch {
                        got: deadlines.len(),
                        expected: spec.num_templates(),
                    });
                }
            }
            PerformanceGoal::Percentile { percent, .. } => {
                if !(*percent > 0.0 && *percent <= 100.0) {
                    return Err(CoreError::InvalidPercentile { percent: *percent });
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// `true` iff the penalty never decreases when a query is appended to
    /// the most recent VM (§4.3). Holds for per-query and max-latency goals;
    /// fails for averages (a short query can lower the mean) and percentiles
    /// (an on-time query can push the percentile below the deadline).
    pub fn is_monotone(&self) -> bool {
        matches!(
            self,
            PerformanceGoal::PerQuery { .. } | PerformanceGoal::MaxLatency { .. }
        )
    }

    /// `true` iff scheduling after a delay of `n` equals scheduling
    /// immediately under the goal tightened by `n` (§6.3.1). Deadline-style
    /// goals qualify; mean-based goals do not tighten uniformly per query.
    pub fn is_linearly_shiftable(&self) -> bool {
        matches!(
            self,
            PerformanceGoal::PerQuery { .. } | PerformanceGoal::MaxLatency { .. }
        )
    }

    /// The penalty rate in force.
    pub fn rate(&self) -> PenaltyRate {
        match self {
            PerformanceGoal::PerQuery { rate, .. }
            | PerformanceGoal::MaxLatency { rate, .. }
            | PerformanceGoal::AverageLatency { rate, .. }
            | PerformanceGoal::Percentile { rate, .. } => *rate,
        }
    }

    /// The penalty `p(R, S)` of a (partial or complete) set of realized
    /// query latencies.
    pub fn penalty(&self, latencies: &[QueryLatency]) -> Money {
        let mut tracker = self.new_tracker();
        for l in latencies {
            tracker.push(self, l.template, l.latency);
        }
        tracker.penalty(self)
    }

    /// Starts an incremental penalty computation (used by the scheduling
    /// graph, where each placement edge carries `p(R, v_s) - p(R, u_s)`).
    pub fn new_tracker(&self) -> PenaltyTracker {
        match self {
            PerformanceGoal::PerQuery { .. } | PerformanceGoal::MaxLatency { .. } => {
                PenaltyTracker::Incremental { total: Money::ZERO }
            }
            PerformanceGoal::AverageLatency { .. } => PenaltyTracker::Average {
                sum_ms: 0,
                count: 0,
            },
            PerformanceGoal::Percentile { .. } => PenaltyTracker::Percentile {
                sorted_ms: Arc::new(Vec::new()),
            },
        }
    }

    /// Tightens (p > 0) or loosens (p < 0) the goal by fraction `p` of the
    /// gap between the current constraint and the strictest feasible one,
    /// following §7.3: `new = t + (g - t) * (1 - p)` where `t` is the floor
    /// and `g` the current value. `p = 1` lands exactly on the floor; values
    /// beyond 1 clamp to it.
    pub fn tighten_pct(&self, spec: &WorkloadSpec, p: f64) -> Self {
        fn interpolate(current: Millis, floor: Millis, p: f64) -> Millis {
            if p >= 1.0 {
                return floor;
            }
            let g = current.as_secs_f64();
            let t = floor.as_secs_f64();
            let new = t + (g - t) * (1.0 - p);
            Millis::from_secs_f64(new.max(t))
        }
        match self {
            PerformanceGoal::PerQuery { deadlines, rate } => {
                let floors: Vec<Millis> = spec
                    .templates()
                    .iter()
                    .map(|t| t.min_latency().unwrap_or(Millis::ZERO))
                    .collect();
                PerformanceGoal::PerQuery {
                    deadlines: deadlines
                        .iter()
                        .zip(floors)
                        .map(|(&d, f)| interpolate(d, f, p))
                        .collect(),
                    rate: *rate,
                }
            }
            PerformanceGoal::MaxLatency { deadline, rate } => PerformanceGoal::MaxLatency {
                deadline: interpolate(*deadline, spec.strictest_feasible_deadline(), p),
                rate: *rate,
            },
            PerformanceGoal::AverageLatency { target, rate } => PerformanceGoal::AverageLatency {
                target: interpolate(*target, spec.mean_min_latency(), p),
                rate: *rate,
            },
            PerformanceGoal::Percentile {
                percent,
                deadline,
                rate,
            } => PerformanceGoal::Percentile {
                percent: *percent,
                deadline: interpolate(*deadline, spec.mean_min_latency(), p),
                rate: *rate,
            },
        }
    }

    /// For linearly shiftable goals: the goal as seen by a query that has
    /// already waited `elapsed` before scheduling began. Returns `None` for
    /// goals that are not linearly shiftable.
    pub fn shift(&self, elapsed: Millis) -> Option<Self> {
        match self {
            PerformanceGoal::PerQuery { deadlines, rate } => Some(PerformanceGoal::PerQuery {
                deadlines: deadlines
                    .iter()
                    .map(|d| d.saturating_sub(elapsed))
                    .collect(),
                rate: *rate,
            }),
            PerformanceGoal::MaxLatency { deadline, rate } => Some(PerformanceGoal::MaxLatency {
                deadline: deadline.saturating_sub(elapsed),
                rate: *rate,
            }),
            _ => None,
        }
    }

    /// For goals with per-template deadlines, extends the deadline vector to
    /// cover extra (e.g. "aged") templates appended to the spec.
    pub fn with_extra_deadline(&self, deadline: Millis) -> Self {
        match self {
            PerformanceGoal::PerQuery { deadlines, rate } => {
                let mut deadlines = deadlines.clone();
                deadlines.push(deadline);
                PerformanceGoal::PerQuery {
                    deadlines,
                    rate: *rate,
                }
            }
            other => other.clone(),
        }
    }
}

/// Incremental penalty state. Pushing a completion returns the penalty
/// *delta*, so graph edges get `p(R, v_s) - p(R, u_s)` directly.
#[derive(Debug, Clone, PartialEq)]
pub enum PenaltyTracker {
    /// Per-query and max-latency goals: each placement's violation is final
    /// when it happens, so a running total suffices.
    Incremental {
        /// Penalty accumulated so far.
        total: Money,
    },
    /// Average-latency goals need the latency sum and count.
    Average {
        /// Sum of completion latencies, in milliseconds.
        sum_ms: u128,
        /// Number of completions.
        count: u64,
    },
    /// Percentile goals need the whole latency distribution. The vector is
    /// behind an [`Arc`] with copy-on-write pushes, so cloning a tracker —
    /// which A* does for every partial-schedule vertex — shares the
    /// distribution instead of copying it.
    Percentile {
        /// Completion latencies in ascending order, in milliseconds.
        sorted_ms: Arc<Vec<u64>>,
    },
}

impl PenaltyTracker {
    /// Records a completion and returns the resulting penalty delta
    /// (which may be negative for non-monotone goals).
    pub fn push(
        &mut self,
        goal: &PerformanceGoal,
        template: TemplateId,
        completion: Millis,
    ) -> Money {
        let before = self.penalty(goal);
        match (self, goal) {
            (
                PenaltyTracker::Incremental { total },
                PerformanceGoal::PerQuery { deadlines, rate },
            ) => {
                let deadline = deadlines
                    .get(template.index())
                    .copied()
                    .unwrap_or(Millis::ZERO);
                let violation = completion.saturating_sub(deadline);
                let delta = rate.for_violation(violation);
                *total += delta;
                delta
            }
            (
                PenaltyTracker::Incremental { total },
                PerformanceGoal::MaxLatency { deadline, rate },
            ) => {
                let violation = completion.saturating_sub(*deadline);
                let delta = rate.for_violation(violation);
                *total += delta;
                delta
            }
            (this @ PenaltyTracker::Average { .. }, PerformanceGoal::AverageLatency { .. }) => {
                if let PenaltyTracker::Average { sum_ms, count } = this {
                    *sum_ms += completion.as_millis() as u128;
                    *count += 1;
                }
                this.penalty(goal) - before
            }
            (this @ PenaltyTracker::Percentile { .. }, PerformanceGoal::Percentile { .. }) => {
                if let PenaltyTracker::Percentile { sorted_ms } = this {
                    let ms = completion.as_millis();
                    // Copy-on-write: only materializes a copy when the
                    // distribution is shared with another tracker.
                    let sorted = Arc::make_mut(sorted_ms);
                    let pos = sorted.partition_point(|&x| x <= ms);
                    sorted.insert(pos, ms);
                }
                this.penalty(goal) - before
            }
            _ => panic!("penalty tracker used with a goal of a different kind"),
        }
    }

    /// The penalty of everything pushed so far.
    pub fn penalty(&self, goal: &PerformanceGoal) -> Money {
        match (self, goal) {
            (PenaltyTracker::Incremental { total }, _) => *total,
            (
                PenaltyTracker::Average { sum_ms, count },
                PerformanceGoal::AverageLatency { target, rate },
            ) => {
                if *count == 0 {
                    return Money::ZERO;
                }
                let mean = Millis::from_millis((*sum_ms / *count as u128) as u64);
                rate.for_violation(mean.saturating_sub(*target))
            }
            (
                PenaltyTracker::Percentile { sorted_ms },
                PerformanceGoal::Percentile {
                    percent,
                    deadline,
                    rate,
                },
            ) => {
                if sorted_ms.is_empty() {
                    return Money::ZERO;
                }
                // Nearest-rank percentile: the k-th smallest latency with
                // k = ceil(percent/100 * n) is the latency within which
                // `percent`% of queries finished.
                let n = sorted_ms.len();
                let k = ((percent / 100.0) * n as f64).ceil() as usize;
                let k = k.clamp(1, n);
                let at_percentile = Millis::from_millis(sorted_ms[k - 1]);
                rate.for_violation(at_percentile.saturating_sub(*deadline))
            }
            _ => panic!("penalty tracker used with a goal of a different kind"),
        }
    }

    /// A hashable digest of exactly the state that can influence *future*
    /// penalty deltas. A* uses it to deduplicate partial schedules: two
    /// vertices whose digests (and remaining work) match are interchangeable
    /// cost-wise.
    pub fn digest(&self) -> PenaltyDigest {
        match self {
            // Per-query/max penalties are already folded into path cost and
            // future deltas depend only on future completions.
            PenaltyTracker::Incremental { .. } => PenaltyDigest::None,
            PenaltyTracker::Average { sum_ms, count } => PenaltyDigest::Average {
                sum_ms: *sum_ms,
                count: *count,
            },
            // An Arc bump, not a copy of the distribution: keying a search
            // vertex is O(1) even for percentile goals.
            PenaltyTracker::Percentile { sorted_ms } => {
                PenaltyDigest::Percentile(Arc::clone(sorted_ms))
            }
        }
    }
}

/// Hashable summary of penalty-relevant state; see
/// [`PenaltyTracker::digest`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PenaltyDigest {
    /// Future penalties do not depend on past completions.
    None,
    /// Mean-tracking state.
    Average {
        /// Sum of completion latencies (ms).
        sum_ms: u128,
        /// Number of completions.
        count: u64,
    },
    /// Full latency distribution (ms, ascending), shared with the tracker
    /// that produced it. `Hash`/`Eq` go through the contents.
    Percentile(Arc<Vec<u64>>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmType;
    use crate::workload::QueryId;

    fn lat(q: u32, t: u32, mins: u64) -> QueryLatency {
        QueryLatency {
            query: QueryId(q),
            template: TemplateId(t),
            latency: Millis::from_mins(mins),
        }
    }

    fn fig3_spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    /// Figure 3, scenario 2: deadlines T1=3m, T2=1m; schedule latencies
    /// q1(T1)=2m, q2(T2)=3m, q3(T2)=1m, q4(T2)=2m. Violations: q2 by 2m,
    /// q4 by 1m => 180s of violation => $1.80 at 1 cent/s.
    #[test]
    fn per_query_penalty_matches_figure_three() {
        let goal = PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let lats = [lat(0, 0, 2), lat(1, 1, 3), lat(2, 1, 1), lat(3, 1, 2)];
        let p = goal.penalty(&lats);
        assert!(p.approx_eq(Money::from_dollars(1.80), 1e-9));

        // Scenario 1 has no violations.
        let lats = [lat(1, 1, 1), lat(0, 0, 3), lat(2, 1, 1), lat(3, 1, 1)];
        assert_eq!(goal.penalty(&lats), Money::ZERO);
    }

    #[test]
    fn max_latency_penalty_sums_per_query_excess() {
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // 3m and 4m completions exceed by 1m and 2m => 180s => $1.80.
        let lats = [lat(0, 0, 3), lat(1, 0, 4), lat(2, 1, 1)];
        assert!(goal
            .penalty(&lats)
            .approx_eq(Money::from_dollars(1.80), 1e-9));
    }

    #[test]
    fn average_penalty_uses_mean_excess() {
        let goal = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // Mean of 1m and 5m = 3m: one minute over => $0.60.
        let lats = [lat(0, 0, 1), lat(1, 0, 5)];
        assert!(goal
            .penalty(&lats)
            .approx_eq(Money::from_dollars(0.60), 1e-9));
        // Mean exactly at target: no penalty.
        let lats = [lat(0, 0, 1), lat(1, 0, 3)];
        assert_eq!(goal.penalty(&lats), Money::ZERO);
    }

    #[test]
    fn average_penalty_can_decrease() {
        let goal = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let mut tracker = goal.new_tracker();
        let d1 = tracker.push(&goal, TemplateId(0), Millis::from_mins(4));
        assert!(d1 > Money::ZERO);
        // A fast query pulls the mean down: negative delta.
        let d2 = tracker.push(&goal, TemplateId(0), Millis::from_mins(1));
        assert!(d2 < Money::ZERO);
        assert!(!goal.is_monotone());
    }

    #[test]
    fn percentile_penalty_uses_nearest_rank() {
        let goal = PerformanceGoal::Percentile {
            percent: 90.0,
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // 10 queries, exactly one slow one: the 90th percentile (k=9) is
        // on time, so the slow query rides in the allowed 10%.
        let mut lats: Vec<QueryLatency> = (0..9).map(|i| lat(i, 0, 1)).collect();
        lats.push(lat(9, 0, 60));
        assert_eq!(goal.penalty(&lats), Money::ZERO);

        // Two slow queries: the 90th percentile lands on a slow one.
        lats[8] = lat(8, 0, 12);
        let p = goal.penalty(&lats);
        // k = ceil(0.9 * 10) = 9 => 9th smallest = 12m => 10m over => $6.
        assert!(p.approx_eq(Money::from_dollars(6.0), 1e-9));
    }

    #[test]
    fn percentile_single_query() {
        let goal = PerformanceGoal::Percentile {
            percent: 90.0,
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // One query: k = ceil(0.9) = 1, so the query itself must meet it.
        assert_eq!(goal.penalty(&[lat(0, 0, 2)]), Money::ZERO);
        assert!(goal.penalty(&[lat(0, 0, 3)]) > Money::ZERO);
    }

    #[test]
    fn monotonicity_and_shiftability_flags() {
        let spec = fig3_spec();
        for kind in GoalKind::ALL {
            let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
            let expected = matches!(kind, GoalKind::PerQuery | GoalKind::MaxLatency);
            assert_eq!(goal.is_monotone(), expected, "{kind:?}");
            assert_eq!(goal.is_linearly_shiftable(), expected, "{kind:?}");
        }
    }

    #[test]
    fn paper_defaults_match_section_seven() {
        let spec = fig3_spec();
        match PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap() {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                assert_eq!(deadline, Millis::from_mins(5)); // 2.5 * 2m
            }
            _ => unreachable!(),
        }
        match PerformanceGoal::paper_default(GoalKind::PerQuery, &spec).unwrap() {
            PerformanceGoal::PerQuery { deadlines, .. } => {
                assert_eq!(deadlines, vec![Millis::from_mins(6), Millis::from_mins(3)]);
            }
            _ => unreachable!(),
        }
        match PerformanceGoal::paper_default(GoalKind::AverageLatency, &spec).unwrap() {
            PerformanceGoal::AverageLatency { target, .. } => {
                // Mean latency 1.5m * 2.5 = 3.75m.
                assert_eq!(target, Millis::from_secs(225));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn tighten_interpolates_toward_floor() {
        let spec = fig3_spec();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(5),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // Floor is the slowest template: 2 minutes. Gap = 3 minutes.
        match goal.tighten_pct(&spec, 1.0 / 3.0) {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                assert_eq!(deadline, Millis::from_mins(4));
            }
            _ => unreachable!(),
        }
        // p = 1 hits the floor; beyond clamps.
        match goal.tighten_pct(&spec, 2.0) {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                assert_eq!(deadline, Millis::from_mins(2));
            }
            _ => unreachable!(),
        }
        // Negative p loosens.
        match goal.tighten_pct(&spec, -1.0) {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                assert_eq!(deadline, Millis::from_mins(8));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn shift_subtracts_elapsed_for_deadline_goals() {
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(3),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        match goal.shift(Millis::from_mins(1)).unwrap() {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                assert_eq!(deadline, Millis::from_mins(2));
            }
            _ => unreachable!(),
        }
        let avg = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(3),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        assert!(avg.shift(Millis::SECOND).is_none());
    }

    #[test]
    fn validate_against_checks_arity_and_percent() {
        let spec = fig3_spec();
        let bad = PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        assert!(matches!(
            bad.validate_against(&spec),
            Err(CoreError::DeadlineArityMismatch { .. })
        ));
        let bad = PerformanceGoal::Percentile {
            percent: 0.0,
            deadline: Millis::from_mins(1),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        assert!(matches!(
            bad.validate_against(&spec),
            Err(CoreError::InvalidPercentile { .. })
        ));
    }

    #[test]
    fn tracker_digest_distinguishes_penalty_relevant_state() {
        let avg = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let mut t1 = avg.new_tracker();
        let mut t2 = avg.new_tracker();
        t1.push(&avg, TemplateId(0), Millis::from_mins(1));
        t2.push(&avg, TemplateId(0), Millis::from_mins(3));
        assert_ne!(t1.digest(), t2.digest());

        let maxg = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let mut t1 = maxg.new_tracker();
        let mut t2 = maxg.new_tracker();
        t1.push(&maxg, TemplateId(0), Millis::from_mins(1));
        t2.push(&maxg, TemplateId(0), Millis::from_mins(50));
        // Past completions never change future max-latency deltas.
        assert_eq!(t1.digest(), t2.digest());
    }

    #[test]
    fn with_extra_deadline_extends_per_query_goals() {
        let goal = PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3)],
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        match goal.with_extra_deadline(Millis::from_mins(2)) {
            PerformanceGoal::PerQuery { deadlines, .. } => {
                assert_eq!(deadlines.len(), 2);
                assert_eq!(deadlines[1], Millis::from_mins(2));
            }
            _ => unreachable!(),
        }
    }
}
