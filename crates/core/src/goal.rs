//! Performance goals (SLAs) and their penalty semantics.
//!
//! WiSeDB supports four latency-oriented goal classes (§2):
//!
//! 1. **Per-query deadline** — each template has its own latency upper bound.
//! 2. **Max latency** — one upper bound on every query's latency.
//! 3. **Average latency** — an upper bound on the workload's mean latency.
//! 4. **Percentile** — at least `p`% of queries must finish within a bound.
//!
//! Penalties follow the violation-period model of §3: a fixed rate is charged
//! per unit of time during which the goal was not met. Each goal also knows
//! whether it is *monotonically increasing* (adding a query never lowers the
//! penalty — enables the admissible A* heuristic of Eq. 3) and whether it is
//! *linearly shiftable* (delaying all queries by `n` equals tightening the
//! goal by `n` — enables the online Shift optimization of §6.3.1).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::money::{Money, PenaltyRate};
use crate::schedule::QueryLatency;
use crate::spec::WorkloadSpec;
use crate::template::TemplateId;
use crate::time::Millis;

/// Which of the four goal classes a goal belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GoalKind {
    /// Per-template deadlines.
    PerQuery,
    /// One deadline for every query.
    MaxLatency,
    /// Bound on the workload's mean latency.
    AverageLatency,
    /// `percent`% of queries within a deadline.
    Percentile,
}

impl GoalKind {
    /// All four kinds, in the order the paper's figures list them.
    pub const ALL: [GoalKind; 4] = [
        GoalKind::PerQuery,
        GoalKind::AverageLatency,
        GoalKind::MaxLatency,
        GoalKind::Percentile,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            GoalKind::PerQuery => "PerQuery",
            GoalKind::MaxLatency => "Max",
            GoalKind::AverageLatency => "Average",
            GoalKind::Percentile => "Percent",
        }
    }
}

/// An application-defined performance goal with its penalty rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PerformanceGoal {
    /// Queries of template `i` must finish within `deadlines[i]`.
    PerQuery {
        /// Deadline per template, indexed by [`TemplateId`].
        deadlines: Vec<Millis>,
        /// Charge per unit of violation time.
        rate: PenaltyRate,
    },
    /// No query may exceed `deadline`.
    MaxLatency {
        /// Workload-wide latency bound.
        deadline: Millis,
        /// Charge per unit of violation time.
        rate: PenaltyRate,
    },
    /// The workload's mean latency must not exceed `target`.
    AverageLatency {
        /// Mean-latency bound.
        target: Millis,
        /// Charge per unit the mean exceeds the bound.
        rate: PenaltyRate,
    },
    /// At least `percent`% of queries must finish within `deadline`.
    Percentile {
        /// Required fraction, in (0, 100].
        percent: f64,
        /// Latency bound for that fraction.
        deadline: Millis,
        /// Charge per unit of violation time.
        rate: PenaltyRate,
    },
}

impl PerformanceGoal {
    /// The goal's class.
    pub fn kind(&self) -> GoalKind {
        match self {
            PerformanceGoal::PerQuery { .. } => GoalKind::PerQuery,
            PerformanceGoal::MaxLatency { .. } => GoalKind::MaxLatency,
            PerformanceGoal::AverageLatency { .. } => GoalKind::AverageLatency,
            PerformanceGoal::Percentile { .. } => GoalKind::Percentile,
        }
    }

    /// Builds the paper's default goal of the given kind for `spec` (§7.1):
    /// per-query deadlines of 3x the template latency; max/average/percentile
    /// deadlines of 2.5x the longest/mean template latency; 90th percentile;
    /// one cent per second of violation.
    pub fn paper_default(kind: GoalKind, spec: &WorkloadSpec) -> CoreResult<Self> {
        let rate = PenaltyRate::CENT_PER_SECOND;
        let expected: Vec<Millis> = spec
            .templates()
            .iter()
            .map(|t| {
                t.latencies
                    .first()
                    .copied()
                    .flatten()
                    .or_else(|| t.min_latency())
                    .unwrap_or(Millis::ZERO)
            })
            .collect();
        if expected.is_empty() {
            return Err(CoreError::NoTemplates);
        }
        let longest = expected.iter().copied().max().unwrap_or(Millis::ZERO);
        let mean = expected.iter().copied().sum::<Millis>() / expected.len() as u64;
        Ok(match kind {
            GoalKind::PerQuery => PerformanceGoal::PerQuery {
                deadlines: expected.iter().map(|l| l.mul_f64(3.0)).collect(),
                rate,
            },
            GoalKind::MaxLatency => PerformanceGoal::MaxLatency {
                deadline: longest.mul_f64(2.5),
                rate,
            },
            GoalKind::AverageLatency => PerformanceGoal::AverageLatency {
                target: mean.mul_f64(2.5),
                rate,
            },
            GoalKind::Percentile => PerformanceGoal::Percentile {
                percent: 90.0,
                deadline: mean.mul_f64(2.5),
                rate,
            },
        })
    }

    /// Validates the goal against a specification.
    pub fn validate_against(&self, spec: &WorkloadSpec) -> CoreResult<()> {
        match self {
            PerformanceGoal::PerQuery { deadlines, .. } => {
                if deadlines.len() != spec.num_templates() {
                    return Err(CoreError::DeadlineArityMismatch {
                        got: deadlines.len(),
                        expected: spec.num_templates(),
                    });
                }
            }
            PerformanceGoal::Percentile { percent, .. } => {
                if !(*percent > 0.0 && *percent <= 100.0) {
                    return Err(CoreError::InvalidPercentile { percent: *percent });
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// `true` iff the penalty never decreases when a query is appended to
    /// the most recent VM (§4.3). Holds for per-query and max-latency goals;
    /// fails for averages (a short query can lower the mean) and percentiles
    /// (an on-time query can push the percentile below the deadline).
    pub fn is_monotone(&self) -> bool {
        matches!(
            self,
            PerformanceGoal::PerQuery { .. } | PerformanceGoal::MaxLatency { .. }
        )
    }

    /// `true` iff scheduling after a delay of `n` equals scheduling
    /// immediately under the goal tightened by `n` (§6.3.1). Deadline-style
    /// goals qualify; mean-based goals do not tighten uniformly per query.
    pub fn is_linearly_shiftable(&self) -> bool {
        matches!(
            self,
            PerformanceGoal::PerQuery { .. } | PerformanceGoal::MaxLatency { .. }
        )
    }

    /// The penalty rate in force.
    pub fn rate(&self) -> PenaltyRate {
        match self {
            PerformanceGoal::PerQuery { rate, .. }
            | PerformanceGoal::MaxLatency { rate, .. }
            | PerformanceGoal::AverageLatency { rate, .. }
            | PerformanceGoal::Percentile { rate, .. } => *rate,
        }
    }

    /// The penalty `p(R, S)` of a (partial or complete) set of realized
    /// query latencies.
    pub fn penalty(&self, latencies: &[QueryLatency]) -> Money {
        let mut tracker = self.new_tracker();
        for l in latencies {
            tracker.push(self, l.template, l.latency);
        }
        tracker.penalty(self)
    }

    /// Starts an incremental penalty computation (used by the scheduling
    /// graph, where each placement edge carries `p(R, v_s) - p(R, u_s)`).
    pub fn new_tracker(&self) -> PenaltyTracker {
        match self {
            PerformanceGoal::PerQuery { .. } | PerformanceGoal::MaxLatency { .. } => {
                PenaltyTracker::Incremental { total: Money::ZERO }
            }
            PerformanceGoal::AverageLatency { .. } => PenaltyTracker::Average {
                sum_ms: 0,
                count: 0,
            },
            PerformanceGoal::Percentile { .. } => PenaltyTracker::Percentile {
                dist: PercentileDigest::new(),
            },
        }
    }

    /// Tightens (p > 0) or loosens (p < 0) the goal by fraction `p` of the
    /// gap between the current constraint and the strictest feasible one,
    /// following §7.3: `new = t + (g - t) * (1 - p)` where `t` is the floor
    /// and `g` the current value. `p = 1` lands exactly on the floor; values
    /// beyond 1 clamp to it.
    pub fn tighten_pct(&self, spec: &WorkloadSpec, p: f64) -> Self {
        fn interpolate(current: Millis, floor: Millis, p: f64) -> Millis {
            if p >= 1.0 {
                return floor;
            }
            let g = current.as_secs_f64();
            let t = floor.as_secs_f64();
            let new = t + (g - t) * (1.0 - p);
            Millis::from_secs_f64(new.max(t))
        }
        match self {
            PerformanceGoal::PerQuery { deadlines, rate } => {
                let floors: Vec<Millis> = spec
                    .templates()
                    .iter()
                    .map(|t| t.min_latency().unwrap_or(Millis::ZERO))
                    .collect();
                PerformanceGoal::PerQuery {
                    deadlines: deadlines
                        .iter()
                        .zip(floors)
                        .map(|(&d, f)| interpolate(d, f, p))
                        .collect(),
                    rate: *rate,
                }
            }
            PerformanceGoal::MaxLatency { deadline, rate } => PerformanceGoal::MaxLatency {
                deadline: interpolate(*deadline, spec.strictest_feasible_deadline(), p),
                rate: *rate,
            },
            PerformanceGoal::AverageLatency { target, rate } => PerformanceGoal::AverageLatency {
                target: interpolate(*target, spec.mean_min_latency(), p),
                rate: *rate,
            },
            PerformanceGoal::Percentile {
                percent,
                deadline,
                rate,
            } => PerformanceGoal::Percentile {
                percent: *percent,
                deadline: interpolate(*deadline, spec.mean_min_latency(), p),
                rate: *rate,
            },
        }
    }

    /// For linearly shiftable goals: the goal as seen by a query that has
    /// already waited `elapsed` before scheduling began. Returns `None` for
    /// goals that are not linearly shiftable.
    pub fn shift(&self, elapsed: Millis) -> Option<Self> {
        match self {
            PerformanceGoal::PerQuery { deadlines, rate } => Some(PerformanceGoal::PerQuery {
                deadlines: deadlines
                    .iter()
                    .map(|d| d.saturating_sub(elapsed))
                    .collect(),
                rate: *rate,
            }),
            PerformanceGoal::MaxLatency { deadline, rate } => Some(PerformanceGoal::MaxLatency {
                deadline: deadline.saturating_sub(elapsed),
                rate: *rate,
            }),
            _ => None,
        }
    }

    /// For goals with per-template deadlines, extends the deadline vector to
    /// cover extra (e.g. "aged") templates appended to the spec.
    pub fn with_extra_deadline(&self, deadline: Millis) -> Self {
        match self {
            PerformanceGoal::PerQuery { deadlines, rate } => {
                let mut deadlines = deadlines.clone();
                deadlines.push(deadline);
                PerformanceGoal::PerQuery {
                    deadlines,
                    rate: *rate,
                }
            }
            other => other.clone(),
        }
    }
}

/// Quantized latency distribution for percentile goals: ascending distinct
/// completion values with their multiplicities, behind a copy-on-write
/// [`Arc`].
///
/// Completion times are sums of template execution times, so schedules at
/// paper scale produce far fewer *distinct* values than completions — the
/// run-length buckets are the "quantized penalty digest" the percentile
/// search keys and prices states with. Cloning is an `Arc` bump; pushing
/// copies only when the buckets are shared. Any order statistic is an
/// `O(buckets)` cumulative-count walk, and the search heuristic can merge
/// the digest with a second bucket list without materializing or sorting
/// the underlying multiset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PercentileDigest {
    /// Packed `(latency_ms << 16) | count` buckets, ascending by latency
    /// (one `u64` per bucket keeps the per-state hashing/equality byte
    /// count no larger than the flat sorted vector it replaced).
    buckets: Arc<Vec<u64>>,
    /// Total completions (sum of all counts).
    total: u64,
}

/// Bits of each packed bucket holding the multiplicity.
const COUNT_BITS: u32 = 16;
/// Mask extracting the multiplicity from a packed bucket.
const COUNT_MASK: u64 = (1 << COUNT_BITS) - 1;

impl PercentileDigest {
    /// An empty distribution.
    pub fn new() -> Self {
        PercentileDigest::default()
    }

    /// Number of completions recorded (with multiplicity).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no completion has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `(latency_ms, count)` buckets, ascending by latency. Buckets of
    /// equal latency may repeat when a multiplicity overflows the packed
    /// count field; cumulative-count walks handle that transparently.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.buckets
            .iter()
            .map(|&b| (b >> COUNT_BITS, (b & COUNT_MASK) as u32))
    }

    /// Records one completion. Copy-on-write: only materializes a copy of
    /// the bucket vector when it is shared with another digest.
    pub fn push(&mut self, ms: u64) {
        debug_assert!(ms < (1 << (64 - COUNT_BITS)), "latency {ms}ms overflows");
        let buckets = Arc::make_mut(&mut self.buckets);
        // Packed buckets order by latency first, so the insertion point for
        // `ms` is right after every bucket of a smaller latency.
        let pos = buckets.partition_point(|&b| (b >> COUNT_BITS) < ms);
        match buckets.get_mut(pos) {
            Some(b) if (*b >> COUNT_BITS) == ms && (*b & COUNT_MASK) < COUNT_MASK => *b += 1,
            _ => buckets.insert(pos, (ms << COUNT_BITS) | 1),
        }
        self.total += 1;
    }

    /// The `k`-th smallest recorded latency (1-based, `k <= len()`).
    /// Walks the cumulative counts from whichever end is nearer to `k`, so
    /// the high percentiles SLAs ask about (and the tracker prices on
    /// every placement edge) touch only the top few buckets.
    pub fn value_at_rank(&self, k: u64) -> u64 {
        debug_assert!(k >= 1 && k <= self.total, "rank {k} of {}", self.total);
        if k > self.total / 2 {
            // Rank from the top: the k-th smallest has `total - k` values
            // strictly above it.
            let mut above = 0u64;
            for &b in self.buckets.iter().rev() {
                above += b & COUNT_MASK;
                if above > self.total - k {
                    return b >> COUNT_BITS;
                }
            }
        } else {
            let mut seen = 0u64;
            for &b in self.buckets.iter() {
                seen += b & COUNT_MASK;
                if seen >= k {
                    return b >> COUNT_BITS;
                }
            }
        }
        self.buckets.last().map(|&b| b >> COUNT_BITS).unwrap_or(0)
    }

    /// The `k`-th smallest of this distribution merged with a second
    /// ascending bucket list — the percentile heuristic's order-statistic
    /// lower bound, computed in `O(buckets + extra.len())` without
    /// materializing the union.
    pub fn value_at_rank_merged(&self, k: u64, extra: &[(u64, u32)]) -> u64 {
        debug_assert!(extra.windows(2).all(|w| w[0].0 < w[1].0));
        let a = &self.buckets;
        let (mut i, mut j) = (0usize, 0usize);
        let mut seen = 0u64;
        let mut last = 0u64;
        while i < a.len() || j < extra.len() {
            let (v, count) =
                if j >= extra.len() || (i < a.len() && (a[i] >> COUNT_BITS) <= extra[j].0) {
                    let b = a[i];
                    i += 1;
                    (b >> COUNT_BITS, b & COUNT_MASK)
                } else {
                    let x = extra[j];
                    j += 1;
                    (x.0, x.1 as u64)
                };
            seen += count;
            last = v;
            if seen >= k {
                return v;
            }
        }
        debug_assert!(false, "rank {k} exceeds merged size {seen}");
        last
    }

    /// Nearest-rank percentile index: `k = ⌈percent/100 · n⌉` clamped to
    /// `1..=n` — the rank whose value is the latency within which
    /// `percent`% of `n` completions finished. Shared by the penalty
    /// tracker and the search heuristics so the two can never disagree on
    /// which order statistic an SLA prices.
    pub fn nearest_rank(percent: f64, n: u64) -> u64 {
        (((percent / 100.0) * n as f64).ceil() as u64).clamp(1, n)
    }
}

/// Incremental penalty state. Pushing a completion returns the penalty
/// *delta*, so graph edges get `p(R, v_s) - p(R, u_s)` directly.
#[derive(Debug, Clone, PartialEq)]
pub enum PenaltyTracker {
    /// Per-query and max-latency goals: each placement's violation is final
    /// when it happens, so a running total suffices.
    Incremental {
        /// Penalty accumulated so far.
        total: Money,
    },
    /// Average-latency goals need the latency sum and count.
    Average {
        /// Sum of completion latencies, in milliseconds.
        sum_ms: u128,
        /// Number of completions.
        count: u64,
    },
    /// Percentile goals need the whole latency distribution, kept as the
    /// quantized [`PercentileDigest`]: run-length buckets behind a
    /// copy-on-write [`Arc`], so cloning a tracker — which A* does for
    /// every partial-schedule vertex — shares the distribution instead of
    /// copying it, and order statistics never re-sort.
    Percentile {
        /// The bucketed completion-latency distribution.
        dist: PercentileDigest,
    },
}

impl PenaltyTracker {
    /// Records a completion and returns the resulting penalty delta
    /// (which may be negative for non-monotone goals).
    pub fn push(
        &mut self,
        goal: &PerformanceGoal,
        template: TemplateId,
        completion: Millis,
    ) -> Money {
        let before = self.penalty(goal);
        match (self, goal) {
            (
                PenaltyTracker::Incremental { total },
                PerformanceGoal::PerQuery { deadlines, rate },
            ) => {
                let deadline = deadlines
                    .get(template.index())
                    .copied()
                    .unwrap_or(Millis::ZERO);
                let violation = completion.saturating_sub(deadline);
                let delta = rate.for_violation(violation);
                *total += delta;
                delta
            }
            (
                PenaltyTracker::Incremental { total },
                PerformanceGoal::MaxLatency { deadline, rate },
            ) => {
                let violation = completion.saturating_sub(*deadline);
                let delta = rate.for_violation(violation);
                *total += delta;
                delta
            }
            (this @ PenaltyTracker::Average { .. }, PerformanceGoal::AverageLatency { .. }) => {
                if let PenaltyTracker::Average { sum_ms, count } = this {
                    *sum_ms += completion.as_millis() as u128;
                    *count += 1;
                }
                this.penalty(goal) - before
            }
            (this @ PenaltyTracker::Percentile { .. }, PerformanceGoal::Percentile { .. }) => {
                if let PenaltyTracker::Percentile { dist } = this {
                    // Copy-on-write inside the digest: only materializes a
                    // copy when the buckets are shared with another tracker.
                    dist.push(completion.as_millis());
                }
                this.penalty(goal) - before
            }
            _ => panic!("penalty tracker used with a goal of a different kind"),
        }
    }

    /// The penalty of everything pushed so far.
    pub fn penalty(&self, goal: &PerformanceGoal) -> Money {
        match (self, goal) {
            (PenaltyTracker::Incremental { total }, _) => *total,
            (
                PenaltyTracker::Average { sum_ms, count },
                PerformanceGoal::AverageLatency { target, rate },
            ) => {
                if *count == 0 {
                    return Money::ZERO;
                }
                let mean = Millis::from_millis((*sum_ms / *count as u128) as u64);
                rate.for_violation(mean.saturating_sub(*target))
            }
            (
                PenaltyTracker::Percentile { dist },
                PerformanceGoal::Percentile {
                    percent,
                    deadline,
                    rate,
                },
            ) => {
                if dist.is_empty() {
                    return Money::ZERO;
                }
                // Nearest-rank percentile: the k-th smallest latency with
                // k = ceil(percent/100 * n) is the latency within which
                // `percent`% of queries finished.
                let n = dist.len();
                let k = PercentileDigest::nearest_rank(*percent, n);
                let at_percentile = Millis::from_millis(dist.value_at_rank(k));
                rate.for_violation(at_percentile.saturating_sub(*deadline))
            }
            _ => panic!("penalty tracker used with a goal of a different kind"),
        }
    }

    /// A hashable digest of exactly the state that can influence *future*
    /// penalty deltas. A* uses it to deduplicate partial schedules: two
    /// vertices whose digests (and remaining work) match are interchangeable
    /// cost-wise.
    pub fn digest(&self) -> PenaltyDigest {
        match self {
            // Per-query/max penalties are already folded into path cost and
            // future deltas depend only on future completions.
            PenaltyTracker::Incremental { .. } => PenaltyDigest::None,
            PenaltyTracker::Average { sum_ms, count } => PenaltyDigest::Average {
                sum_ms: *sum_ms,
                count: *count,
            },
            // An Arc bump, not a copy of the distribution: keying a search
            // vertex is O(1) even for percentile goals.
            PenaltyTracker::Percentile { dist } => PenaltyDigest::Percentile(dist.clone()),
        }
    }
}

/// Hashable summary of penalty-relevant state; see
/// [`PenaltyTracker::digest`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PenaltyDigest {
    /// Future penalties do not depend on past completions.
    None,
    /// Mean-tracking state.
    Average {
        /// Sum of completion latencies (ms).
        sum_ms: u128,
        /// Number of completions.
        count: u64,
    },
    /// Full latency distribution as quantized run-length buckets, shared
    /// with the tracker that produced it. `Hash`/`Eq` go through the
    /// bucket contents — two digests match iff the underlying multisets do.
    Percentile(PercentileDigest),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmType;
    use crate::workload::QueryId;

    fn lat(q: u32, t: u32, mins: u64) -> QueryLatency {
        QueryLatency {
            query: QueryId(q),
            template: TemplateId(t),
            latency: Millis::from_mins(mins),
        }
    }

    fn fig3_spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    /// Figure 3, scenario 2: deadlines T1=3m, T2=1m; schedule latencies
    /// q1(T1)=2m, q2(T2)=3m, q3(T2)=1m, q4(T2)=2m. Violations: q2 by 2m,
    /// q4 by 1m => 180s of violation => $1.80 at 1 cent/s.
    #[test]
    fn per_query_penalty_matches_figure_three() {
        let goal = PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let lats = [lat(0, 0, 2), lat(1, 1, 3), lat(2, 1, 1), lat(3, 1, 2)];
        let p = goal.penalty(&lats);
        assert!(p.approx_eq(Money::from_dollars(1.80), 1e-9));

        // Scenario 1 has no violations.
        let lats = [lat(1, 1, 1), lat(0, 0, 3), lat(2, 1, 1), lat(3, 1, 1)];
        assert_eq!(goal.penalty(&lats), Money::ZERO);
    }

    #[test]
    fn max_latency_penalty_sums_per_query_excess() {
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // 3m and 4m completions exceed by 1m and 2m => 180s => $1.80.
        let lats = [lat(0, 0, 3), lat(1, 0, 4), lat(2, 1, 1)];
        assert!(goal
            .penalty(&lats)
            .approx_eq(Money::from_dollars(1.80), 1e-9));
    }

    #[test]
    fn average_penalty_uses_mean_excess() {
        let goal = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // Mean of 1m and 5m = 3m: one minute over => $0.60.
        let lats = [lat(0, 0, 1), lat(1, 0, 5)];
        assert!(goal
            .penalty(&lats)
            .approx_eq(Money::from_dollars(0.60), 1e-9));
        // Mean exactly at target: no penalty.
        let lats = [lat(0, 0, 1), lat(1, 0, 3)];
        assert_eq!(goal.penalty(&lats), Money::ZERO);
    }

    #[test]
    fn average_penalty_can_decrease() {
        let goal = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let mut tracker = goal.new_tracker();
        let d1 = tracker.push(&goal, TemplateId(0), Millis::from_mins(4));
        assert!(d1 > Money::ZERO);
        // A fast query pulls the mean down: negative delta.
        let d2 = tracker.push(&goal, TemplateId(0), Millis::from_mins(1));
        assert!(d2 < Money::ZERO);
        assert!(!goal.is_monotone());
    }

    #[test]
    fn percentile_penalty_uses_nearest_rank() {
        let goal = PerformanceGoal::Percentile {
            percent: 90.0,
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // 10 queries, exactly one slow one: the 90th percentile (k=9) is
        // on time, so the slow query rides in the allowed 10%.
        let mut lats: Vec<QueryLatency> = (0..9).map(|i| lat(i, 0, 1)).collect();
        lats.push(lat(9, 0, 60));
        assert_eq!(goal.penalty(&lats), Money::ZERO);

        // Two slow queries: the 90th percentile lands on a slow one.
        lats[8] = lat(8, 0, 12);
        let p = goal.penalty(&lats);
        // k = ceil(0.9 * 10) = 9 => 9th smallest = 12m => 10m over => $6.
        assert!(p.approx_eq(Money::from_dollars(6.0), 1e-9));
    }

    #[test]
    fn percentile_single_query() {
        let goal = PerformanceGoal::Percentile {
            percent: 90.0,
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // One query: k = ceil(0.9) = 1, so the query itself must meet it.
        assert_eq!(goal.penalty(&[lat(0, 0, 2)]), Money::ZERO);
        assert!(goal.penalty(&[lat(0, 0, 3)]) > Money::ZERO);
    }

    #[test]
    fn monotonicity_and_shiftability_flags() {
        let spec = fig3_spec();
        for kind in GoalKind::ALL {
            let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
            let expected = matches!(kind, GoalKind::PerQuery | GoalKind::MaxLatency);
            assert_eq!(goal.is_monotone(), expected, "{kind:?}");
            assert_eq!(goal.is_linearly_shiftable(), expected, "{kind:?}");
        }
    }

    #[test]
    fn paper_defaults_match_section_seven() {
        let spec = fig3_spec();
        match PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap() {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                assert_eq!(deadline, Millis::from_mins(5)); // 2.5 * 2m
            }
            _ => unreachable!(),
        }
        match PerformanceGoal::paper_default(GoalKind::PerQuery, &spec).unwrap() {
            PerformanceGoal::PerQuery { deadlines, .. } => {
                assert_eq!(deadlines, vec![Millis::from_mins(6), Millis::from_mins(3)]);
            }
            _ => unreachable!(),
        }
        match PerformanceGoal::paper_default(GoalKind::AverageLatency, &spec).unwrap() {
            PerformanceGoal::AverageLatency { target, .. } => {
                // Mean latency 1.5m * 2.5 = 3.75m.
                assert_eq!(target, Millis::from_secs(225));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn tighten_interpolates_toward_floor() {
        let spec = fig3_spec();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(5),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // Floor is the slowest template: 2 minutes. Gap = 3 minutes.
        match goal.tighten_pct(&spec, 1.0 / 3.0) {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                assert_eq!(deadline, Millis::from_mins(4));
            }
            _ => unreachable!(),
        }
        // p = 1 hits the floor; beyond clamps.
        match goal.tighten_pct(&spec, 2.0) {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                assert_eq!(deadline, Millis::from_mins(2));
            }
            _ => unreachable!(),
        }
        // Negative p loosens.
        match goal.tighten_pct(&spec, -1.0) {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                assert_eq!(deadline, Millis::from_mins(8));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn shift_subtracts_elapsed_for_deadline_goals() {
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(3),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        match goal.shift(Millis::from_mins(1)).unwrap() {
            PerformanceGoal::MaxLatency { deadline, .. } => {
                assert_eq!(deadline, Millis::from_mins(2));
            }
            _ => unreachable!(),
        }
        let avg = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(3),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        assert!(avg.shift(Millis::SECOND).is_none());
    }

    #[test]
    fn validate_against_checks_arity_and_percent() {
        let spec = fig3_spec();
        let bad = PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        assert!(matches!(
            bad.validate_against(&spec),
            Err(CoreError::DeadlineArityMismatch { .. })
        ));
        let bad = PerformanceGoal::Percentile {
            percent: 0.0,
            deadline: Millis::from_mins(1),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        assert!(matches!(
            bad.validate_against(&spec),
            Err(CoreError::InvalidPercentile { .. })
        ));
    }

    /// The quantized digest is an exact representation: every order
    /// statistic matches the naive sorted vector, pushed in any order.
    #[test]
    fn percentile_digest_matches_naive_sort() {
        let values = [120u64, 60, 180, 60, 240, 60, 120, 300, 180, 60];
        let mut digest = PercentileDigest::new();
        let mut naive: Vec<u64> = Vec::new();
        for &v in &values {
            digest.push(v);
            naive.push(v);
        }
        naive.sort_unstable();
        assert_eq!(digest.len(), naive.len() as u64);
        for k in 1..=naive.len() {
            assert_eq!(
                digest.value_at_rank(k as u64),
                naive[k - 1],
                "rank {k} of {naive:?}"
            );
        }
        // Buckets are run-length encoded and ascending.
        let buckets: Vec<(u64, u32)> = digest.buckets().collect();
        assert_eq!(
            buckets,
            vec![(60, 4), (120, 2), (180, 2), (240, 1), (300, 1)]
        );
    }

    /// Merged order statistics (digest ∪ extra buckets) match sorting the
    /// materialized union — the contract the search heuristic relies on.
    #[test]
    fn percentile_digest_merged_rank_matches_naive_merge() {
        let mut digest = PercentileDigest::new();
        for v in [90u64, 150, 150, 210, 400] {
            digest.push(v);
        }
        let extra: &[(u64, u32)] = &[(60, 2), (150, 1), (399, 3)];
        let mut naive: Vec<u64> = vec![90, 150, 150, 210, 400, 60, 60, 150, 399, 399, 399];
        naive.sort_unstable();
        for k in 1..=naive.len() {
            assert_eq!(
                digest.value_at_rank_merged(k as u64, extra),
                naive[k - 1],
                "merged rank {k}"
            );
        }
    }

    /// Pushing past the packed 16-bit multiplicity spills into a second
    /// bucket of the same value without corrupting any rank.
    #[test]
    fn percentile_digest_count_overflow_spills() {
        let mut digest = PercentileDigest::new();
        let n = (1u64 << 16) + 10; // 65546 identical completions
        for _ in 0..n {
            digest.push(42);
        }
        digest.push(7);
        assert_eq!(digest.len(), n + 1);
        assert_eq!(digest.value_at_rank(1), 7);
        assert_eq!(digest.value_at_rank(2), 42);
        assert_eq!(digest.value_at_rank(n + 1), 42);
        assert!(digest.buckets().count() >= 3, "overflow spilled a bucket");
    }

    /// Copy-on-write: cloning shares the buckets; pushing into the clone
    /// leaves the original untouched.
    #[test]
    fn percentile_digest_clone_is_cow() {
        let mut a = PercentileDigest::new();
        a.push(100);
        let mut b = a.clone();
        b.push(50);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(a.value_at_rank(1), 100);
        assert_eq!(b.value_at_rank(1), 50);
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }

    #[test]
    fn tracker_digest_distinguishes_penalty_relevant_state() {
        let avg = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let mut t1 = avg.new_tracker();
        let mut t2 = avg.new_tracker();
        t1.push(&avg, TemplateId(0), Millis::from_mins(1));
        t2.push(&avg, TemplateId(0), Millis::from_mins(3));
        assert_ne!(t1.digest(), t2.digest());

        let maxg = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(2),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let mut t1 = maxg.new_tracker();
        let mut t2 = maxg.new_tracker();
        t1.push(&maxg, TemplateId(0), Millis::from_mins(1));
        t2.push(&maxg, TemplateId(0), Millis::from_mins(50));
        // Past completions never change future max-latency deltas.
        assert_eq!(t1.digest(), t2.digest());
    }

    #[test]
    fn with_extra_deadline_extends_per_query_goals() {
        let goal = PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3)],
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        match goal.with_extra_deadline(Millis::from_mins(2)) {
            PerformanceGoal::PerQuery { deadlines, .. } => {
                assert_eq!(deadlines.len(), 2);
                assert_eq!(deadlines[1], Millis::from_mins(2));
            }
            _ => unreachable!(),
        }
    }
}
