//! The workload specification: templates + VM types.
//!
//! Applications begin their interaction with WiSeDB by submitting a
//! [`WorkloadSpec`] (§2). Everything downstream — graph search, feature
//! extraction, model training, runtime scheduling — is parameterized by it.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::money::Money;
use crate::template::{QueryTemplate, TemplateId};
use crate::time::Millis;
use crate::vm::{VmType, VmTypeId};

/// The templates a workload may draw queries from and the VM types the IaaS
/// provider offers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    templates: Vec<QueryTemplate>,
    vm_types: Vec<VmType>,
}

impl WorkloadSpec {
    /// Builds and validates a specification.
    pub fn new(templates: Vec<QueryTemplate>, vm_types: Vec<VmType>) -> CoreResult<Self> {
        let spec = WorkloadSpec {
            templates,
            vm_types,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Convenience constructor for single-VM-type specifications, the
    /// default configuration of the paper's experiments.
    pub fn single_vm(
        templates: Vec<(impl Into<String>, Millis)>,
        vm_type: VmType,
    ) -> CoreResult<Self> {
        let templates = templates
            .into_iter()
            .map(|(name, latency)| QueryTemplate::single(name, latency))
            .collect();
        WorkloadSpec::new(templates, vec![vm_type])
    }

    fn validate(&self) -> CoreResult<()> {
        if self.templates.is_empty() {
            return Err(CoreError::NoTemplates);
        }
        if self.vm_types.is_empty() {
            return Err(CoreError::NoVmTypes);
        }
        for (i, t) in self.templates.iter().enumerate() {
            let template = TemplateId(i as u32);
            if t.latencies.len() != self.vm_types.len() {
                return Err(CoreError::LatencyArityMismatch {
                    template,
                    got: t.latencies.len(),
                    expected: self.vm_types.len(),
                });
            }
            if t.latencies.iter().all(Option::is_none) {
                return Err(CoreError::UnschedulableTemplate { template });
            }
            for (v, lat) in t.latencies.iter().enumerate() {
                if *lat == Some(Millis::ZERO) {
                    return Err(CoreError::ZeroLatency {
                        template,
                        vm_type: VmTypeId(v as u32),
                    });
                }
            }
        }
        Ok(())
    }

    /// All templates, indexable by [`TemplateId`].
    pub fn templates(&self) -> &[QueryTemplate] {
        &self.templates
    }

    /// All VM types, indexable by [`VmTypeId`].
    pub fn vm_types(&self) -> &[VmType] {
        &self.vm_types
    }

    /// Number of query templates.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// Number of VM types.
    pub fn num_vm_types(&self) -> usize {
        self.vm_types.len()
    }

    /// Iterator over template ids.
    pub fn template_ids(&self) -> impl Iterator<Item = TemplateId> + '_ {
        (0..self.templates.len() as u32).map(TemplateId)
    }

    /// Iterator over VM type ids.
    pub fn vm_type_ids(&self) -> impl Iterator<Item = VmTypeId> + '_ {
        (0..self.vm_types.len() as u32).map(VmTypeId)
    }

    /// The template with the given id, if it exists.
    pub fn template(&self, id: TemplateId) -> CoreResult<&QueryTemplate> {
        self.templates
            .get(id.index())
            .ok_or(CoreError::UnknownTemplate { template: id })
    }

    /// The VM type with the given id, if it exists.
    pub fn vm_type(&self, id: VmTypeId) -> CoreResult<&VmType> {
        self.vm_types
            .get(id.index())
            .ok_or(CoreError::UnknownVmType { vm_type: id })
    }

    /// Latency `l(q, i)` of template `t` on VM type `v`; `None` if the VM
    /// type cannot process the template.
    pub fn latency(&self, t: TemplateId, v: VmTypeId) -> Option<Millis> {
        self.templates.get(t.index())?.latency_on(v)
    }

    /// Rental cost of processing one instance of `t` on `v`:
    /// `f_r(v) * l(t, v)`.
    pub fn runtime_cost(&self, t: TemplateId, v: VmTypeId) -> Option<Money> {
        let latency = self.latency(t, v)?;
        Some(self.vm_types[v.index()].runtime_cost(latency))
    }

    /// The cheapest possible processing cost of template `t` over all
    /// supporting VM types: `min_i f_r(i) * l(t, i)`. This is the term the
    /// admissible A* heuristic (Eq. 3) sums over unassigned queries.
    pub fn cheapest_runtime_cost(&self, t: TemplateId) -> Option<Money> {
        self.vm_type_ids()
            .filter_map(|v| self.runtime_cost(t, v))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// The largest `min_latency` across templates: the fastest possible
    /// execution of the slowest template. No deadline below this is
    /// achievable, so goal tightening uses it as the strictness floor.
    pub fn strictest_feasible_deadline(&self) -> Millis {
        self.templates
            .iter()
            .filter_map(QueryTemplate::min_latency)
            .max()
            .unwrap_or(Millis::ZERO)
    }

    /// Mean of per-template minimum latencies; floor for average-latency
    /// goals.
    pub fn mean_min_latency(&self) -> Millis {
        if self.templates.is_empty() {
            return Millis::ZERO;
        }
        let total: Millis = self
            .templates
            .iter()
            .filter_map(QueryTemplate::min_latency)
            .sum();
        total / self.templates.len() as u64
    }

    /// Appends a template, revalidating. Used by online scheduling to add
    /// "aged" template variants (§6.3) without rebuilding the spec.
    pub fn with_extra_template(&self, template: QueryTemplate) -> CoreResult<Self> {
        let mut templates = self.templates.clone();
        templates.push(template);
        WorkloadSpec::new(templates, self.vm_types.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_type_spec() -> WorkloadSpec {
        WorkloadSpec::new(
            vec![
                QueryTemplate {
                    name: "short".into(),
                    latencies: vec![Some(Millis::from_mins(1)), Some(Millis::from_mins(2))],
                },
                QueryTemplate {
                    name: "long".into(),
                    latencies: vec![Some(Millis::from_mins(4)), None],
                },
            ],
            vec![VmType::t2_medium(), VmType::t2_small()],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_empty() {
        assert_eq!(
            WorkloadSpec::new(vec![], vec![VmType::t2_medium()]).unwrap_err(),
            CoreError::NoTemplates
        );
        assert_eq!(
            WorkloadSpec::new(vec![QueryTemplate::single("q", Millis::SECOND)], vec![])
                .unwrap_err(),
            CoreError::NoVmTypes
        );
    }

    #[test]
    fn validation_rejects_arity_mismatch() {
        let err = WorkloadSpec::new(
            vec![QueryTemplate::single("q", Millis::SECOND)],
            vec![VmType::t2_medium(), VmType::t2_small()],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::LatencyArityMismatch { .. }));
    }

    #[test]
    fn validation_rejects_unschedulable_and_zero_latency() {
        let err = WorkloadSpec::new(
            vec![QueryTemplate {
                name: "q".into(),
                latencies: vec![None],
            }],
            vec![VmType::t2_medium()],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::UnschedulableTemplate { .. }));

        let err = WorkloadSpec::new(
            vec![QueryTemplate::single("q", Millis::ZERO)],
            vec![VmType::t2_medium()],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::ZeroLatency { .. }));
    }

    #[test]
    fn latency_and_cost_lookups() {
        let spec = two_type_spec();
        assert_eq!(
            spec.latency(TemplateId(0), VmTypeId(1)),
            Some(Millis::from_mins(2))
        );
        assert_eq!(spec.latency(TemplateId(1), VmTypeId(1)), None);

        // Cheapest cost of "short": min(medium 1min, small 2min).
        // medium: 0.052/60, small: 0.026*2/60 — equal here, so take either.
        let cheapest = spec.cheapest_runtime_cost(TemplateId(0)).unwrap();
        assert!(cheapest.approx_eq(Money::from_dollars(0.052 / 60.0), 1e-12));

        // "long" is only supported on medium.
        let long = spec.cheapest_runtime_cost(TemplateId(1)).unwrap();
        assert!(long.approx_eq(Money::from_dollars(0.052 * 4.0 / 60.0), 1e-12));
    }

    #[test]
    fn strictness_floors() {
        let spec = two_type_spec();
        // Slowest template at its fastest: "long" at 4 minutes.
        assert_eq!(spec.strictest_feasible_deadline(), Millis::from_mins(4));
        // Mean of min latencies: (1 + 4) / 2 = 2.5 minutes.
        assert_eq!(spec.mean_min_latency(), Millis::from_secs(150));
    }

    #[test]
    fn with_extra_template_extends() {
        let spec = two_type_spec();
        let aged = QueryTemplate {
            name: "short+wait".into(),
            latencies: vec![Some(Millis::from_mins(2)), Some(Millis::from_mins(3))],
        };
        let bigger = spec.with_extra_template(aged).unwrap();
        assert_eq!(bigger.num_templates(), 3);
        assert_eq!(
            bigger.latency(TemplateId(2), VmTypeId(0)),
            Some(Millis::from_mins(2))
        );
    }

    #[test]
    fn serde_round_trip() {
        let spec = two_type_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
