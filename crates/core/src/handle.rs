//! Cheap shared handles for the two objects every layer passes around.
//!
//! A [`WorkloadSpec`] owns per-template latency tables and a
//! [`PerformanceGoal`] can own a deadline vector; both used to be deep-
//! cloned on every model training run, every aged online batch, and every
//! runtime component hand-off. [`SpecHandle`] and [`GoalHandle`] wrap them
//! in an [`Arc`] so that sharing is a pointer bump: the search, advisor,
//! sim, and runtime layers all hold *views* of one immutable spec/goal.
//!
//! Both types [`Deref`] to their inner value, so `&SpecHandle` coerces to
//! `&WorkloadSpec` at call sites, and both serialize exactly like the
//! wrapped value (the `Arc` is invisible on the wire).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

use crate::goal::PerformanceGoal;
use crate::spec::WorkloadSpec;

macro_rules! handle {
    ($(#[$doc:meta])* $name:ident => $inner:ty) => {
        $(#[$doc])*
        #[derive(Clone)]
        pub struct $name(Arc<$inner>);

        impl $name {
            /// Wraps a value in a shared handle.
            pub fn new(inner: $inner) -> Self {
                $name(Arc::new(inner))
            }

            /// Whether two handles share the same allocation (an O(1)
            /// stand-in for deep equality when both came from one source).
            pub fn ptr_eq(&self, other: &Self) -> bool {
                Arc::ptr_eq(&self.0, &other.0)
            }
        }

        impl Deref for $name {
            type Target = $inner;
            fn deref(&self) -> &$inner {
                &self.0
            }
        }

        impl AsRef<$inner> for $name {
            fn as_ref(&self) -> &$inner {
                &self.0
            }
        }

        impl From<$inner> for $name {
            fn from(inner: $inner) -> Self {
                $name::new(inner)
            }
        }

        impl From<&$name> for $name {
            fn from(handle: &$name) -> Self {
                handle.clone()
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.ptr_eq(other) || *self.0 == *other.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)
            }
        }

        impl Serialize for $name {
            fn to_value(&self) -> Value {
                self.0.to_value()
            }
        }

        impl Deserialize for $name {
            fn from_value(v: &Value) -> Result<Self, SerdeError> {
                <$inner>::from_value(v).map($name::new)
            }
        }
    };
}

handle! {
    /// A shared, immutable [`WorkloadSpec`]: clone freely, it is an `Arc`.
    SpecHandle => WorkloadSpec
}

handle! {
    /// A shared, immutable [`PerformanceGoal`]: clone freely, it is an
    /// `Arc`.
    GoalHandle => PerformanceGoal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::PenaltyRate;
    use crate::time::Millis;
    use crate::vm::VmType;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    #[test]
    fn clones_share_the_allocation() {
        let handle = SpecHandle::new(spec());
        let copy = handle.clone();
        assert!(handle.ptr_eq(&copy));
        assert_eq!(handle, copy);
        // Deref reaches the inner spec.
        assert_eq!(copy.num_templates(), 2);
    }

    #[test]
    fn equality_falls_back_to_contents() {
        let a = SpecHandle::new(spec());
        let b = SpecHandle::new(spec());
        assert!(!a.ptr_eq(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn serializes_transparently() {
        let handle = GoalHandle::new(PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(5),
            rate: PenaltyRate::CENT_PER_SECOND,
        });
        let json = serde_json::to_string(&handle).unwrap();
        // Identical wire format to the bare goal.
        let bare = serde_json::to_string(&*handle).unwrap();
        assert_eq!(json, bare);
        let back: GoalHandle = serde_json::from_str(&json).unwrap();
        assert_eq!(back, handle);
    }

    #[test]
    fn into_conversions() {
        let handle: SpecHandle = spec().into();
        let again: SpecHandle = (&handle).into();
        assert!(handle.ptr_eq(&again));
    }
}
