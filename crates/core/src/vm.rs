//! Virtual machine types offered by the (simulated) IaaS provider.
//!
//! A VM type has a fixed start-up fee `f_s` paid once per provisioned
//! instance and a running cost `f_r` per unit of time (§3, Eq. 1). The
//! start-up *delay* is not part of the analytic cost model — the paper folds
//! provisioning time into the start-up fee — but the execution simulator can
//! model it, so it lives here alongside the prices.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::money::Money;
use crate::time::Millis;

/// Index of a VM type within a [`crate::spec::WorkloadSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VmTypeId(pub u32);

impl VmTypeId {
    /// The index as a `usize`, for slice addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VmTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VM-type{}", self.0)
    }
}

/// A rentable VM configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmType {
    /// Human-readable name (e.g. `"t2.medium"`).
    pub name: String,
    /// One-off fee `f_s` paid when the instance is provisioned.
    pub startup_cost: Money,
    /// Running cost `f_r`, expressed per hour of rented time.
    pub rate_per_hour: Money,
    /// Time between requesting the instance and it accepting queries.
    /// Ignored by the analytic cost model; honoured by the simulator.
    pub startup_delay: Millis,
}

impl VmType {
    /// The paper's reference instance: AWS `t2.medium` at $0.052/hour with a
    /// measured start-up fee of $0.0008 (§7.1).
    pub fn t2_medium() -> Self {
        VmType {
            name: "t2.medium".into(),
            startup_cost: Money::from_dollars(0.0008),
            rate_per_hour: Money::from_dollars(0.052),
            startup_delay: Millis::from_secs(30),
        }
    }

    /// The cheaper instance used in the multi-VM-type experiments (§7.2):
    /// AWS `t2.small` at half the `t2.medium` price.
    pub fn t2_small() -> Self {
        VmType {
            name: "t2.small".into(),
            startup_cost: Money::from_dollars(0.0008),
            rate_per_hour: Money::from_dollars(0.026),
            startup_delay: Millis::from_secs(30),
        }
    }

    /// The rental cost of running this VM for `duration`.
    pub fn runtime_cost(&self, duration: Millis) -> Money {
        self.rate_per_hour * duration.as_hours_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prices() {
        let m = VmType::t2_medium();
        assert!(m
            .runtime_cost(Millis::HOUR)
            .approx_eq(Money::from_dollars(0.052), 1e-12));
        // A 4-minute query (the paper's average) costs 0.052 * 4/60 dollars.
        assert!(m
            .runtime_cost(Millis::from_mins(4))
            .approx_eq(Money::from_dollars(0.052 * 4.0 / 60.0), 1e-12));
    }

    #[test]
    fn small_is_half_price() {
        let m = VmType::t2_medium();
        let s = VmType::t2_small();
        assert!(s.rate_per_hour.as_dollars() == m.rate_per_hour.as_dollars() / 2.0);
    }

    #[test]
    fn zero_duration_costs_nothing() {
        assert_eq!(VmType::t2_medium().runtime_cost(Millis::ZERO), Money::ZERO);
    }
}
