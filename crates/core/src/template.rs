//! Query templates.
//!
//! WiSeDB treats a query purely through the latency of its template on each
//! VM type (§2 of the paper: the advisor "cares only about the latency of
//! each template"). A template therefore carries a name (for reporting) and
//! one latency estimate per VM type, with `None` marking VM types that cannot
//! process the template at all (the `supports-X` feature of §4.4).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Millis;
use crate::vm::VmTypeId;

/// Index of a template within a [`crate::spec::WorkloadSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TemplateId(pub u32);

impl TemplateId {
    /// The index as a `usize`, for slice addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

/// A query template: a parameterized query whose instances share latency
/// characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Human-readable name (e.g. `"TPC-H Q6"`).
    pub name: String,
    /// Predicted latency on each VM type, indexed by [`VmTypeId`].
    /// `None` means the VM type cannot process this template.
    pub latencies: Vec<Option<Millis>>,
}

impl QueryTemplate {
    /// A template supported on every VM type with the given latencies.
    pub fn uniform(name: impl Into<String>, latencies: Vec<Millis>) -> Self {
        QueryTemplate {
            name: name.into(),
            latencies: latencies.into_iter().map(Some).collect(),
        }
    }

    /// A template for a single-VM-type specification.
    pub fn single(name: impl Into<String>, latency: Millis) -> Self {
        QueryTemplate {
            name: name.into(),
            latencies: vec![Some(latency)],
        }
    }

    /// Latency on the given VM type, or `None` if unsupported.
    pub fn latency_on(&self, vm: VmTypeId) -> Option<Millis> {
        self.latencies.get(vm.index()).copied().flatten()
    }

    /// `true` iff the given VM type can process this template.
    pub fn supported_on(&self, vm: VmTypeId) -> bool {
        self.latency_on(vm).is_some()
    }

    /// The smallest latency across all supporting VM types.
    pub fn min_latency(&self) -> Option<Millis> {
        self.latencies.iter().flatten().copied().min()
    }

    /// The largest latency across all supporting VM types.
    pub fn max_latency(&self) -> Option<Millis> {
        self.latencies.iter().flatten().copied().max()
    }

    /// Number of VM types this template has entries for (supported or not).
    pub fn num_vm_entries(&self) -> usize {
        self.latencies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based_like_the_paper() {
        assert_eq!(TemplateId(0).to_string(), "T1");
        assert_eq!(TemplateId(9).to_string(), "T10");
    }

    #[test]
    fn latency_lookup() {
        let t = QueryTemplate {
            name: "q".into(),
            latencies: vec![Some(Millis::from_secs(10)), None],
        };
        assert_eq!(t.latency_on(VmTypeId(0)), Some(Millis::from_secs(10)));
        assert_eq!(t.latency_on(VmTypeId(1)), None);
        assert!(t.supported_on(VmTypeId(0)));
        assert!(!t.supported_on(VmTypeId(1)));
        // Out-of-range VM ids are simply unsupported, not a panic.
        assert_eq!(t.latency_on(VmTypeId(7)), None);
    }

    #[test]
    fn min_max_latency() {
        let t = QueryTemplate::uniform("q", vec![Millis::from_secs(10), Millis::from_secs(25)]);
        assert_eq!(t.min_latency(), Some(Millis::from_secs(10)));
        assert_eq!(t.max_latency(), Some(Millis::from_secs(25)));

        let unsupported = QueryTemplate {
            name: "x".into(),
            latencies: vec![None],
        };
        assert_eq!(unsupported.min_latency(), None);
    }
}
