//! Error types shared across the WiSeDB crates.

use std::fmt;

use crate::template::TemplateId;
use crate::vm::VmTypeId;

/// Errors arising from invalid specifications, workloads, or schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The specification has no query templates.
    NoTemplates,
    /// The specification has no VM types.
    NoVmTypes,
    /// A template's latency vector does not have one entry per VM type.
    LatencyArityMismatch {
        /// Offending template.
        template: TemplateId,
        /// Entries the template has.
        got: usize,
        /// Number of VM types in the spec.
        expected: usize,
    },
    /// A template is not supported on any VM type, so no complete schedule
    /// can exist.
    UnschedulableTemplate {
        /// Offending template.
        template: TemplateId,
    },
    /// A template has a zero latency entry, which breaks the cost model's
    /// assumption that every placement consumes VM time.
    ZeroLatency {
        /// Offending template.
        template: TemplateId,
        /// VM type with the zero entry.
        vm_type: VmTypeId,
    },
    /// A schedule references a template id outside the specification.
    UnknownTemplate {
        /// Offending template.
        template: TemplateId,
    },
    /// A schedule references a VM type id outside the specification.
    UnknownVmType {
        /// Offending VM type.
        vm_type: VmTypeId,
    },
    /// A query was placed on a VM type that cannot process its template.
    UnsupportedPlacement {
        /// Template of the placed query.
        template: TemplateId,
        /// VM type it was placed on.
        vm_type: VmTypeId,
    },
    /// A schedule does not place exactly the queries of the workload
    /// (something is missing, duplicated, or foreign).
    IncompleteSchedule {
        /// Diagnostic message naming the first discrepancy.
        detail: String,
    },
    /// A percentile goal was constructed with a percent outside (0, 100].
    InvalidPercentile {
        /// The rejected percent value.
        percent: f64,
    },
    /// A per-query goal's deadline vector does not match the template count.
    DeadlineArityMismatch {
        /// Entries the goal has.
        got: usize,
        /// Number of templates in the spec.
        expected: usize,
    },
    /// A live-cluster operation referenced a VM index that was never
    /// provisioned in the session.
    UnknownVmIndex {
        /// The out-of-range index.
        index: usize,
    },
    /// Work was queued on a VM that was already released (idle VMs are
    /// released automatically and accept no further work).
    VmReleased {
        /// The released VM's index.
        index: usize,
    },
    /// A multi-tenant service was configured with no SLA classes.
    NoClasses,
    /// An SLA class declared an empty template subset, which can never
    /// admit an arrival.
    EmptyClassTemplates {
        /// The offending class.
        class: crate::tenant::TenantId,
    },
    /// An operation referenced an SLA class the service was not configured
    /// with.
    UnknownTenantClass {
        /// The out-of-range class.
        class: crate::tenant::TenantId,
    },
    /// An arrival's template is outside its SLA class's declared subset.
    TemplateNotInClass {
        /// The rejected template.
        template: TemplateId,
        /// The class whose subset excludes it.
        class: crate::tenant::TenantId,
    },
    /// A hot-swapped model was trained for a different spec or goal than
    /// the SLA class it is replacing.
    ModelMismatch {
        /// What disagreed.
        detail: String,
    },
    /// A scheduling plan could not be applied to the live cluster: a step
    /// was malformed (e.g. an assignment with no VM to target) or stale
    /// with respect to the cluster's state. The request that carried the
    /// plan fails; the service itself stays up.
    InconsistentPlan {
        /// What the plan asked for that the cluster could not honor.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoTemplates => write!(f, "workload specification has no query templates"),
            CoreError::NoVmTypes => write!(f, "workload specification has no VM types"),
            CoreError::LatencyArityMismatch {
                template,
                got,
                expected,
            } => write!(
                f,
                "template {template} has {got} latency entries but the spec has {expected} VM types"
            ),
            CoreError::UnschedulableTemplate { template } => {
                write!(f, "template {template} is not supported on any VM type")
            }
            CoreError::ZeroLatency { template, vm_type } => {
                write!(f, "template {template} has zero latency on {vm_type}")
            }
            CoreError::UnknownTemplate { template } => {
                write!(f, "template {template} is not part of the specification")
            }
            CoreError::UnknownVmType { vm_type } => {
                write!(f, "{vm_type} is not part of the specification")
            }
            CoreError::UnsupportedPlacement { template, vm_type } => {
                write!(f, "template {template} cannot be processed on {vm_type}")
            }
            CoreError::IncompleteSchedule { detail } => {
                write!(f, "schedule does not cover the workload exactly: {detail}")
            }
            CoreError::InvalidPercentile { percent } => {
                write!(
                    f,
                    "percentile goals require 0 < percent <= 100, got {percent}"
                )
            }
            CoreError::DeadlineArityMismatch { got, expected } => write!(
                f,
                "per-query goal has {got} deadlines but the spec has {expected} templates"
            ),
            CoreError::UnknownVmIndex { index } => {
                write!(f, "no VM with index {index} was provisioned")
            }
            CoreError::VmReleased { index } => {
                write!(f, "VM {index} was already released and accepts no work")
            }
            CoreError::NoClasses => {
                write!(f, "a multi-tenant service needs at least one SLA class")
            }
            CoreError::EmptyClassTemplates { class } => {
                write!(f, "SLA {class} declares an empty template subset")
            }
            CoreError::UnknownTenantClass { class } => {
                write!(f, "{class} is not a configured SLA class")
            }
            CoreError::TemplateNotInClass { template, class } => {
                write!(f, "template {template} is outside {class}'s subset")
            }
            CoreError::ModelMismatch { detail } => {
                write!(f, "swapped model does not match the service: {detail}")
            }
            CoreError::InconsistentPlan { detail } => {
                write!(f, "plan is inconsistent with the live cluster: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenient result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        let e = CoreError::UnsupportedPlacement {
            template: TemplateId(2),
            vm_type: VmTypeId(1),
        };
        assert_eq!(e.to_string(), "template T3 cannot be processed on VM-type1");

        let e = CoreError::LatencyArityMismatch {
            template: TemplateId(0),
            got: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("T1"));
        assert!(e.to_string().contains("2 VM types"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::NoTemplates);
        assert!(e.to_string().contains("no query templates"));
    }
}
