//! The total cost model of Equation 1:
//!
//! ```text
//! cost(R, S) = Σ_{vm ∈ S} [ f_s + Σ_{q ∈ vm} f_r * l(q, i) ] + p(R, S)
//! ```
//!
//! i.e. per-VM start-up fees, rental for the time each query occupies its VM,
//! plus the SLA penalty of the realized latencies.

use serde::{Deserialize, Serialize};

use crate::error::CoreResult;
use crate::goal::PerformanceGoal;
use crate::money::Money;
use crate::schedule::Schedule;
use crate::spec::WorkloadSpec;

/// The three components of a schedule's total cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Sum of per-VM start-up fees `f_s`.
    pub startup: Money,
    /// Rental cost of query processing time `Σ f_r * l(q, i)`.
    pub runtime: Money,
    /// SLA penalty `p(R, S)`.
    pub penalty: Money,
}

impl CostBreakdown {
    /// The total cost `cost(R, S)`.
    pub fn total(&self) -> Money {
        self.startup + self.runtime + self.penalty
    }
}

/// Computes the cost breakdown of `schedule` under `goal`.
pub fn cost_breakdown(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    schedule: &Schedule,
) -> CoreResult<CostBreakdown> {
    let mut startup = Money::ZERO;
    let mut runtime = Money::ZERO;
    for vm in &schedule.vms {
        let vm_type = spec.vm_type(vm.vm_type)?;
        startup += vm_type.startup_cost;
        runtime += vm_type.runtime_cost(vm.busy_time(spec)?);
    }
    let latencies = schedule.query_latencies(spec)?;
    let penalty = goal.penalty(&latencies);
    Ok(CostBreakdown {
        startup,
        runtime,
        penalty,
    })
}

/// Computes the total cost `cost(R, S)` of `schedule` under `goal`.
pub fn total_cost(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    schedule: &Schedule,
) -> CoreResult<Money> {
    Ok(cost_breakdown(spec, goal, schedule)?.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::PenaltyRate;
    use crate::schedule::{Placement, VmInstance};
    use crate::template::TemplateId;
    use crate::time::Millis;
    use crate::vm::{VmType, VmTypeId};
    use crate::workload::QueryId;

    fn fig3() -> (WorkloadSpec, PerformanceGoal) {
        let spec = WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap();
        let goal = PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        (spec, goal)
    }

    fn place(q: u32, t: u32) -> Placement {
        Placement {
            query: QueryId(q),
            template: TemplateId(t),
        }
    }

    #[test]
    fn figure_three_scenarios_rank_as_in_the_paper() {
        let (spec, goal) = fig3();
        // Scenario 1: three VMs, no violations.
        let s1 = Schedule {
            vms: vec![
                VmInstance {
                    vm_type: VmTypeId(0),
                    queue: vec![place(1, 1), place(0, 0)],
                },
                VmInstance {
                    vm_type: VmTypeId(0),
                    queue: vec![place(2, 1)],
                },
                VmInstance {
                    vm_type: VmTypeId(0),
                    queue: vec![place(3, 1)],
                },
            ],
        };
        // Scenario 2: two VMs, q2 violates by 2m and q4 by 1m.
        let s2 = Schedule {
            vms: vec![
                VmInstance {
                    vm_type: VmTypeId(0),
                    queue: vec![place(0, 0), place(1, 1)],
                },
                VmInstance {
                    vm_type: VmTypeId(0),
                    queue: vec![place(2, 1), place(3, 1)],
                },
            ],
        };

        let b1 = cost_breakdown(&spec, &goal, &s1).unwrap();
        let b2 = cost_breakdown(&spec, &goal, &s2).unwrap();

        assert_eq!(b1.penalty, Money::ZERO);
        assert!(b2.penalty.approx_eq(Money::from_dollars(1.80), 1e-9));

        // Processing time is 5 query-minutes either way.
        assert!(b1
            .runtime
            .approx_eq(Money::from_dollars(0.052 * 5.0 / 60.0), 1e-12));
        assert!(b2.runtime.approx_eq(b1.runtime, 1e-12));

        // Scenario 1 pays one extra start-up fee but avoids $1.80 of
        // penalty, so it is cheaper overall — exactly the paper's point.
        assert!(b1.total() < b2.total());
        assert!(b1.startup.approx_eq(Money::from_dollars(0.0024), 1e-12));
        assert!(b2.startup.approx_eq(Money::from_dollars(0.0016), 1e-12));
    }

    #[test]
    fn empty_schedule_costs_nothing() {
        let (spec, goal) = fig3();
        let b = cost_breakdown(&spec, &goal, &Schedule::empty()).unwrap();
        assert_eq!(b.total(), Money::ZERO);
    }
}
