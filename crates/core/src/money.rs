//! Monetary amounts and penalty rates.
//!
//! Money is stored as `f64` dollars. The magnitudes WiSeDB works with (VM
//! rental fractions of a cent up to a few hundred dollars) sit comfortably in
//! the exactly-representable range of `f64`, and schedule costs are built from
//! short sums of products, so error accumulation is negligible relative to the
//! cent-level quantities the paper reports. A total order is provided via
//! [`Money::total_cmp`] for use as a search key.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::time::Millis;

/// A (possibly negative) amount of money in dollars.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Money(f64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0.0);

    /// Creates an amount from dollars.
    pub const fn from_dollars(dollars: f64) -> Self {
        Money(dollars)
    }

    /// Creates an amount from cents.
    pub fn from_cents(cents: f64) -> Self {
        Money(cents / 100.0)
    }

    /// The amount in dollars.
    pub const fn as_dollars(self) -> f64 {
        self.0
    }

    /// The amount in cents.
    pub fn as_cents(self) -> f64 {
        self.0 * 100.0
    }

    /// `true` iff the amount is finite (not NaN / infinite).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// IEEE-754 total ordering; suitable for priority-queue keys.
    pub fn total_cmp(&self, other: &Money) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// The larger of two amounts (NaN-propagating like `f64::max` is not —
    /// callers are expected to keep amounts finite).
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Money) -> Money {
        Money(self.0.min(other.0))
    }

    /// Clamps negative amounts to zero. Violation penalties are never
    /// refunds.
    pub fn clamp_non_negative(self) -> Money {
        if self.0 < 0.0 {
            Money::ZERO
        } else {
            self
        }
    }

    /// Approximate equality within `eps` dollars.
    pub fn approx_eq(self, other: Money, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Money {
    type Output = Money;
    fn mul(self, rhs: f64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Div<f64> for Money {
    type Output = Money;
    fn div(self, rhs: f64) -> Money {
        Money(self.0 / rhs)
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        Money(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 0.0 {
            write!(f, "-${:.4}", -self.0)
        } else {
            write!(f, "${:.4}", self.0)
        }
    }
}

/// A penalty rate: money charged per unit of violation time.
///
/// The paper (and IaaS practice) expresses SLA penalties as a fixed amount
/// per time period of violation; the experiments use one cent per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PenaltyRate {
    per_second: Money,
}

impl PenaltyRate {
    /// The paper's default: one cent per second of violation.
    pub const CENT_PER_SECOND: PenaltyRate = PenaltyRate {
        per_second: Money::from_dollars(0.01),
    };

    /// A rate of `amount` per second of violation.
    pub const fn per_second(amount: Money) -> Self {
        PenaltyRate { per_second: amount }
    }

    /// The penalty for a violation period of `duration`.
    pub fn for_violation(&self, duration: Millis) -> Money {
        self.per_second * duration.as_secs_f64()
    }

    /// The underlying per-second amount.
    pub fn rate_per_second(&self) -> Money {
        self.per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Money::from_cents(250.0).as_dollars(), 2.5);
        assert_eq!(Money::from_dollars(0.052).as_cents(), 5.2);
    }

    #[test]
    fn arithmetic() {
        let a = Money::from_dollars(1.5);
        let b = Money::from_dollars(0.25);
        assert_eq!((a + b).as_dollars(), 1.75);
        assert_eq!((a - b).as_dollars(), 1.25);
        assert_eq!((a * 2.0).as_dollars(), 3.0);
        assert_eq!((a / 3.0).as_dollars(), 0.5);
        let total: Money = [a, b, b].into_iter().sum();
        assert!(total.approx_eq(Money::from_dollars(2.0), 1e-12));
    }

    #[test]
    fn clamp_non_negative() {
        assert_eq!(Money::from_dollars(-3.0).clamp_non_negative(), Money::ZERO);
        let pos = Money::from_dollars(3.0);
        assert_eq!(pos.clamp_non_negative(), pos);
    }

    #[test]
    fn penalty_rate_cent_per_second() {
        let rate = PenaltyRate::CENT_PER_SECOND;
        // 90 seconds of violation at 1 cent/s = $0.90.
        let p = rate.for_violation(Millis::from_secs(90));
        assert!(p.approx_eq(Money::from_dollars(0.90), 1e-12));
        assert_eq!(rate.for_violation(Millis::ZERO), Money::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Money::from_dollars(1.23456).to_string(), "$1.2346");
        assert_eq!(Money::from_dollars(-0.5).to_string(), "-$0.5000");
    }

    #[test]
    fn total_cmp_orders() {
        let mut v = vec![
            Money::from_dollars(2.0),
            Money::from_dollars(-1.0),
            Money::ZERO,
        ];
        v.sort_by(Money::total_cmp);
        assert_eq!(v[0], Money::from_dollars(-1.0));
        assert_eq!(v[2], Money::from_dollars(2.0));
    }
}
