//! Workload schedules.
//!
//! A schedule `S = {vm_1, vm_2, ...}` is a list of provisioned VMs, each with
//! an ordered queue of queries (§3). It answers the three questions WiSeDB
//! exists to answer: how many VMs of which types, which query goes where, and
//! in what order.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::money::Money;
use crate::spec::WorkloadSpec;
use crate::template::TemplateId;
use crate::time::Millis;
use crate::vm::VmTypeId;
use crate::workload::{QueryId, Workload};

/// A query assigned to a position in some VM's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// The placed query.
    pub query: QueryId,
    /// The query's template (denormalized for cost computations).
    pub template: TemplateId,
}

/// One provisioned VM and its processing queue, executed front to back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmInstance {
    /// The rented VM type.
    pub vm_type: VmTypeId,
    /// Queries in execution order.
    pub queue: Vec<Placement>,
}

impl VmInstance {
    /// An empty instance of the given type.
    pub fn new(vm_type: VmTypeId) -> Self {
        VmInstance {
            vm_type,
            queue: Vec::new(),
        }
    }

    /// Total busy time: the sum of the queue's latencies on this VM type.
    pub fn busy_time(&self, spec: &WorkloadSpec) -> CoreResult<Millis> {
        let mut total = Millis::ZERO;
        for p in &self.queue {
            total +=
                spec.latency(p.template, self.vm_type)
                    .ok_or(CoreError::UnsupportedPlacement {
                        template: p.template,
                        vm_type: self.vm_type,
                    })?;
        }
        Ok(total)
    }
}

/// The realized latency of one scheduled query: queue wait plus execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryLatency {
    /// The query.
    pub query: QueryId,
    /// Its template.
    pub template: TemplateId,
    /// Time from VM start to query completion (wait + execution), which is
    /// the paper's notion of query latency within a schedule.
    pub latency: Millis,
}

/// A complete or partial workload schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// Provisioned VMs in provisioning order.
    pub vms: Vec<VmInstance>,
}

impl Schedule {
    /// An empty schedule.
    pub fn empty() -> Self {
        Schedule::default()
    }

    /// Number of provisioned VMs.
    pub fn num_vms(&self) -> usize {
        self.vms.len()
    }

    /// Number of placed queries.
    pub fn num_queries(&self) -> usize {
        self.vms.iter().map(|vm| vm.queue.len()).sum()
    }

    /// The completion latency of every placed query.
    ///
    /// Queries on a VM run sequentially: the latency of the k-th query is the
    /// sum of the latencies of queries 0..k plus its own execution time.
    pub fn query_latencies(&self, spec: &WorkloadSpec) -> CoreResult<Vec<QueryLatency>> {
        let mut out = Vec::with_capacity(self.num_queries());
        for vm in &self.vms {
            let mut clock = Millis::ZERO;
            for p in &vm.queue {
                let exec = spec.latency(p.template, vm.vm_type).ok_or(
                    CoreError::UnsupportedPlacement {
                        template: p.template,
                        vm_type: vm.vm_type,
                    },
                )?;
                clock += exec;
                out.push(QueryLatency {
                    query: p.query,
                    template: p.template,
                    latency: clock,
                });
            }
        }
        Ok(out)
    }

    /// Provisioning + processing cost (Eq. 1 without the penalty term):
    /// `Σ_vm [f_s + Σ_q f_r * l(q, i)]`.
    pub fn provisioning_cost(&self, spec: &WorkloadSpec) -> CoreResult<Money> {
        let mut total = Money::ZERO;
        for vm in &self.vms {
            let vm_type = spec.vm_type(vm.vm_type)?;
            total += vm_type.startup_cost;
            total += vm_type.runtime_cost(vm.busy_time(spec)?);
        }
        Ok(total)
    }

    /// Checks the schedule is a *complete* schedule of `workload`: every
    /// query placed exactly once, with its correct template, and no foreign
    /// queries.
    pub fn validate_complete(&self, workload: &Workload) -> CoreResult<()> {
        let mut seen = vec![false; workload.len()];
        let mut placed = 0usize;
        for vm in &self.vms {
            for p in &vm.queue {
                let idx = p.query.index();
                let Some(expected) = workload.queries().get(idx) else {
                    return Err(CoreError::IncompleteSchedule {
                        detail: format!("{} is not part of the workload", p.query),
                    });
                };
                if expected.template != p.template {
                    return Err(CoreError::IncompleteSchedule {
                        detail: format!(
                            "{} placed as {} but the workload says {}",
                            p.query, p.template, expected.template
                        ),
                    });
                }
                if seen[idx] {
                    return Err(CoreError::IncompleteSchedule {
                        detail: format!("{} placed more than once", p.query),
                    });
                }
                seen[idx] = true;
                placed += 1;
            }
        }
        if placed != workload.len() {
            let missing = seen.iter().position(|&s| !s).unwrap_or(0);
            return Err(CoreError::IncompleteSchedule {
                detail: format!(
                    "{} of {} queries placed; first missing: {}",
                    placed,
                    workload.len(),
                    QueryId(missing as u32)
                ),
            });
        }
        Ok(())
    }

    /// Per-template instance counts across all VM queues.
    pub fn template_counts(&self, num_templates: usize) -> Vec<u32> {
        let mut counts = vec![0u32; num_templates];
        for vm in &self.vms {
            for p in &vm.queue {
                if let Some(c) = counts.get_mut(p.template.index()) {
                    *c += 1;
                }
            }
        }
        counts
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, vm) in self.vms.iter().enumerate() {
            write!(f, "vm{}<{}>: [", i + 1, vm.vm_type.0)?;
            for (j, p) in vm.queue.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}:{}", p.query, p.template)?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmType;

    fn spec() -> WorkloadSpec {
        // T1: 2 minutes, T2: 1 minute — the Figure 3 configuration.
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    /// Figure 3, scenario 2: vm1 = [q1(T1), q2(T2)], vm2 = [q3(T2), q4(T2)].
    fn scenario_two() -> (Workload, Schedule) {
        let workload =
            Workload::from_templates([TemplateId(0), TemplateId(1), TemplateId(1), TemplateId(1)]);
        let schedule = Schedule {
            vms: vec![
                VmInstance {
                    vm_type: VmTypeId(0),
                    queue: vec![
                        Placement {
                            query: QueryId(0),
                            template: TemplateId(0),
                        },
                        Placement {
                            query: QueryId(1),
                            template: TemplateId(1),
                        },
                    ],
                },
                VmInstance {
                    vm_type: VmTypeId(0),
                    queue: vec![
                        Placement {
                            query: QueryId(2),
                            template: TemplateId(1),
                        },
                        Placement {
                            query: QueryId(3),
                            template: TemplateId(1),
                        },
                    ],
                },
            ],
        };
        (workload, schedule)
    }

    #[test]
    fn latencies_accumulate_queue_wait() {
        let (_, schedule) = scenario_two();
        let lats = schedule.query_latencies(&spec()).unwrap();
        // vm1: q1 completes at 2m, q2 at 3m. vm2: q3 at 1m, q4 at 2m.
        assert_eq!(lats[0].latency, Millis::from_mins(2));
        assert_eq!(lats[1].latency, Millis::from_mins(3));
        assert_eq!(lats[2].latency, Millis::from_mins(1));
        assert_eq!(lats[3].latency, Millis::from_mins(2));
    }

    #[test]
    fn provisioning_cost_matches_equation_one() {
        let (_, schedule) = scenario_two();
        let spec = spec();
        let cost = schedule.provisioning_cost(&spec).unwrap();
        // vm1 busy 3 minutes, vm2 busy 2: 2 startups + 5 query-minutes.
        let expected = Money::from_dollars(2.0 * 0.0008 + 0.052 * 5.0 / 60.0);
        assert!(cost.approx_eq(expected, 1e-9));
    }

    #[test]
    fn validate_complete_accepts_exact_cover() {
        let (workload, schedule) = scenario_two();
        schedule.validate_complete(&workload).unwrap();
    }

    #[test]
    fn validate_complete_rejects_missing_and_duplicates() {
        let (workload, mut schedule) = scenario_two();
        let removed = schedule.vms[1].queue.pop().unwrap();
        let err = schedule.validate_complete(&workload).unwrap_err();
        assert!(matches!(err, CoreError::IncompleteSchedule { .. }));

        schedule.vms[1].queue.push(removed);
        schedule.vms[1].queue.push(removed);
        let err = schedule.validate_complete(&workload).unwrap_err();
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn validate_complete_rejects_wrong_template() {
        let (workload, mut schedule) = scenario_two();
        schedule.vms[0].queue[0].template = TemplateId(1);
        let err = schedule.validate_complete(&workload).unwrap_err();
        assert!(err.to_string().contains("workload says"));
    }

    #[test]
    fn unsupported_placement_is_an_error() {
        let spec = WorkloadSpec::new(
            vec![crate::template::QueryTemplate {
                name: "medium-only".into(),
                latencies: vec![Some(Millis::from_mins(1)), None],
            }],
            vec![VmType::t2_medium(), VmType::t2_small()],
        )
        .unwrap();
        let schedule = Schedule {
            vms: vec![VmInstance {
                vm_type: VmTypeId(1),
                queue: vec![Placement {
                    query: QueryId(0),
                    template: TemplateId(0),
                }],
            }],
        };
        assert!(matches!(
            schedule.query_latencies(&spec),
            Err(CoreError::UnsupportedPlacement { .. })
        ));
    }

    #[test]
    fn counts_and_sizes() {
        let (_, schedule) = scenario_two();
        assert_eq!(schedule.num_vms(), 2);
        assert_eq!(schedule.num_queries(), 4);
        assert_eq!(schedule.template_counts(2), vec![1, 3]);
    }
}
