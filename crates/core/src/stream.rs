//! Streaming vocabulary: arrivals and live service metrics.
//!
//! Batch scheduling speaks [`Workload`](crate::Workload); the online side
//! (§6.3) and the streaming runtime speak *arrivals* — template instances
//! tagged with the virtual time they entered the system — and report their
//! health through [`MetricsSnapshot`]s: latency percentiles, SLA-violation
//! rate, spend rate, and fleet size at a point in virtual time.

use serde::{Deserialize, Serialize};

use crate::goal::PerformanceGoal;
use crate::money::Money;
use crate::template::TemplateId;
use crate::time::Millis;

/// One query of an online stream: a template instance plus its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivingQuery {
    /// The query's template.
    pub template: TemplateId,
    /// When it arrives (monotonically non-decreasing across the stream).
    pub arrival: Millis,
}

/// The open (most recently provisioned, still accepting work) VM as the
/// online planner sees it: the paper's Figure 8 initial vertex. Shared
/// vocabulary between the cluster that reports it and the scheduler that
/// seeds its search with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenVmView {
    /// The VM's type.
    pub vm_type: crate::vm::VmTypeId,
    /// Templates of queries currently committed (executing) on it.
    pub running: Vec<TemplateId>,
    /// How long a newly placed query would wait behind committed work.
    pub backlog: Millis,
}

/// Nearest-rank percentile of a set of durations. `p` is in (0, 100];
/// an empty slice yields zero. `sorted` must be ascending.
pub fn percentile_sorted(sorted: &[Millis], p: f64) -> Millis {
    if sorted.is_empty() {
        return Millis::ZERO;
    }
    let n = sorted.len();
    let k = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[k.clamp(1, n) - 1]
}

/// Order statistics of a latency population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Population size.
    pub count: u64,
    /// Median.
    pub p50: Millis,
    /// 95th percentile.
    pub p95: Millis,
    /// 99th percentile.
    pub p99: Millis,
    /// Maximum.
    pub max: Millis,
    /// Arithmetic mean.
    pub mean: Millis,
}

impl LatencySummary {
    /// Summarizes a population (need not be sorted; empty is all-zero).
    pub fn of(latencies: &[Millis]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let sum: Millis = sorted.iter().copied().sum();
        LatencySummary {
            count: sorted.len() as u64,
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
            mean: sum / sorted.len() as u64,
        }
    }
}

/// A point-in-virtual-time health report of a streaming workload service.
///
/// Latency fields measure *SLA latency* (completion − arrival); queueing
/// fields measure time spent waiting before execution started. Decision
/// latency is scheduler wall-clock time per arrival (real seconds, not
/// virtual time) — the Figure 19 metric, live.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Virtual time of the snapshot.
    pub at: Millis,
    /// Arrivals admitted so far.
    pub admitted: u64,
    /// Arrivals rejected by admission control.
    pub rejected: u64,
    /// Queries that finished executing.
    pub completed: u64,
    /// Admitted queries not yet finished.
    pub in_flight: u64,
    /// SLA latency (completion − arrival) order statistics over completions.
    pub latency: LatencySummary,
    /// Queueing delay (start − arrival) order statistics over completions.
    pub queueing: LatencySummary,
    /// Completed queries whose SLA latency exceeded the goal's per-query
    /// bound (see [`PerformanceGoal::per_query_bound`]).
    pub sla_violations: u64,
    /// `sla_violations / completed` (zero when nothing completed).
    pub violation_rate: f64,
    /// Infrastructure money billed so far (start-up fees + rental).
    pub billed: Money,
    /// SLA penalty accrued by completions so far.
    pub penalty: Money,
    /// `(billed + penalty) / virtual hours elapsed` (zero at t=0).
    pub dollars_per_hour: f64,
    /// VMs provisioned and not yet released.
    pub vms_in_flight: u64,
    /// VMs ever provisioned.
    pub vms_provisioned: u64,
    /// Mean scheduler wall-clock overhead per arrival, in (real) seconds.
    pub mean_decision_secs: f64,
    /// 95th-percentile scheduler overhead per arrival, in (real) seconds.
    pub p95_decision_secs: f64,
}

impl MetricsSnapshot {
    /// An all-zero snapshot at virtual time zero.
    pub fn empty() -> Self {
        MetricsSnapshot {
            at: Millis::ZERO,
            admitted: 0,
            rejected: 0,
            completed: 0,
            in_flight: 0,
            latency: LatencySummary::default(),
            queueing: LatencySummary::default(),
            sla_violations: 0,
            violation_rate: 0.0,
            billed: Money::ZERO,
            penalty: Money::ZERO,
            dollars_per_hour: 0.0,
            vms_in_flight: 0,
            vms_provisioned: 0,
            mean_decision_secs: 0.0,
            p95_decision_secs: 0.0,
        }
    }

    /// Total cost rate and absolutes folded into one money figure.
    pub fn total_cost(&self) -> Money {
        self.billed + self.penalty
    }
}

impl PerformanceGoal {
    /// The latency bound a *single* query of `template` is held to when
    /// counting SLA violations in live metrics.
    ///
    /// Per-query and max-latency goals have exact per-query bounds. The
    /// aggregate goals have no per-query semantics, so the natural proxy is
    /// used: the mean target for average-latency goals and the percentile
    /// deadline for percentile goals (where a violation rate above
    /// `100 − percent`% — not any single violation — means the goal is
    /// missed).
    pub fn per_query_bound(&self, template: TemplateId) -> Millis {
        match self {
            PerformanceGoal::PerQuery { deadlines, .. } => deadlines
                .get(template.index())
                .copied()
                .unwrap_or(Millis::ZERO),
            PerformanceGoal::MaxLatency { deadline, .. } => *deadline,
            PerformanceGoal::AverageLatency { target, .. } => *target,
            PerformanceGoal::Percentile { deadline, .. } => *deadline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::PenaltyRate;

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<Millis> = (1..=100).map(Millis::from_secs).collect();
        assert_eq!(percentile_sorted(&xs, 50.0), Millis::from_secs(50));
        assert_eq!(percentile_sorted(&xs, 95.0), Millis::from_secs(95));
        assert_eq!(percentile_sorted(&xs, 99.0), Millis::from_secs(99));
        assert_eq!(percentile_sorted(&xs, 100.0), Millis::from_secs(100));
        assert_eq!(percentile_sorted(&[], 50.0), Millis::ZERO);
        // A one-element population answers every percentile with itself.
        assert_eq!(
            percentile_sorted(&[Millis::from_secs(7)], 1.0),
            Millis::from_secs(7)
        );
    }

    #[test]
    fn summary_of_uniform_population() {
        let xs: Vec<Millis> = (1..=100).map(Millis::from_secs).collect();
        let s = LatencySummary::of(&xs);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Millis::from_secs(50));
        assert_eq!(s.p95, Millis::from_secs(95));
        assert_eq!(s.max, Millis::from_secs(100));
        assert_eq!(s.mean, Millis::from_millis(50_500));
        assert_eq!(LatencySummary::of(&[]), LatencySummary::default());
    }

    #[test]
    fn per_query_bound_matches_goal_semantics() {
        let rate = PenaltyRate::CENT_PER_SECOND;
        let per_query = PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate,
        };
        assert_eq!(
            per_query.per_query_bound(TemplateId(1)),
            Millis::from_mins(1)
        );
        let max = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(5),
            rate,
        };
        assert_eq!(max.per_query_bound(TemplateId(0)), Millis::from_mins(5));
        let avg = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(2),
            rate,
        };
        assert_eq!(avg.per_query_bound(TemplateId(9)), Millis::from_mins(2));
        let pct = PerformanceGoal::Percentile {
            percent: 90.0,
            deadline: Millis::from_mins(4),
            rate,
        };
        assert_eq!(pct.per_query_bound(TemplateId(0)), Millis::from_mins(4));
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let mut s = MetricsSnapshot::empty();
        s.at = Millis::from_secs(10);
        s.admitted = 5;
        s.billed = Money::from_dollars(1.25);
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert!(back
            .total_cost()
            .approx_eq(Money::from_dollars(1.25), 1e-12));
    }
}
