//! Streaming vocabulary: arrivals and live service metrics.
//!
//! Batch scheduling speaks [`Workload`](crate::Workload); the online side
//! (§6.3) and the streaming runtime speak *arrivals* — template instances
//! tagged with the virtual time they entered the system — and report their
//! health through [`MetricsSnapshot`]s: latency percentiles, SLA-violation
//! rate, spend rate, and fleet size at a point in virtual time.

use serde::{Deserialize, Serialize};

use crate::goal::PerformanceGoal;
use crate::money::Money;
use crate::template::TemplateId;
use crate::tenant::{ClassMetrics, TenantId};
use crate::time::Millis;

/// One query of an online stream: a template instance plus its arrival
/// time, tagged with the SLA class of the tenant that submitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivingQuery {
    /// The query's template.
    pub template: TemplateId,
    /// When it arrives (monotonically non-decreasing across the stream).
    pub arrival: Millis,
    /// The submitting tenant's SLA class ([`TenantId::DEFAULT`] for
    /// single-class streams).
    pub class: TenantId,
}

impl ArrivingQuery {
    /// An arrival of the default class.
    pub fn new(template: TemplateId, arrival: Millis) -> Self {
        ArrivingQuery {
            template,
            arrival,
            class: TenantId::DEFAULT,
        }
    }

    /// An arrival tagged with an SLA class.
    pub fn of_class(template: TemplateId, arrival: Millis, class: TenantId) -> Self {
        ArrivingQuery {
            template,
            arrival,
            class,
        }
    }
}

/// The open (most recently provisioned, still accepting work) VM as the
/// online planner sees it: the paper's Figure 8 initial vertex. Shared
/// vocabulary between the cluster that reports it and the scheduler that
/// seeds its search with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenVmView {
    /// The VM's type.
    pub vm_type: crate::vm::VmTypeId,
    /// Templates of queries currently committed (executing) on it.
    pub running: Vec<TemplateId>,
    /// How long a newly placed query would wait behind committed work.
    pub backlog: Millis,
}

/// The 1-based nearest rank of percentile `p` in a population of `count`
/// observations (`count > 0`), applying the documented clamping contract:
/// `p` is interpreted in `(0, 100]`; `p ≤ 0` clamps to rank 1 (the
/// minimum), `p > 100` clamps to rank `count` (the maximum), and a NaN
/// `p` — which would otherwise flow through the index arithmetic and
/// silently select the minimum — is answered conservatively with the
/// maximum.
fn percentile_rank(p: f64, count: u64) -> u64 {
    if p.is_nan() || p > 100.0 {
        return count;
    }
    // `p ≤ 0` makes k ≤ 0; the saturating float→int cast plus the clamp
    // pins it to rank 1.
    let k = ((p / 100.0) * count as f64).ceil() as u64;
    k.clamp(1, count)
}

/// Nearest-rank percentile of a set of durations. An empty slice yields
/// zero; `sorted` must be ascending.
///
/// **Contract:** `p` is a percentile in `(0, 100]`. Out-of-domain values
/// are clamped, never trusted as index arithmetic: `p ≤ 0` yields the
/// minimum, `p > 100` yields the maximum, and `NaN` is treated as the
/// 100th percentile (the conservative answer for a latency population).
/// In-domain callers are unaffected by the validation (bit-identical
/// results).
pub fn percentile_sorted(sorted: &[Millis], p: f64) -> Millis {
    if sorted.is_empty() {
        return Millis::ZERO;
    }
    sorted[percentile_rank(p, sorted.len() as u64) as usize - 1]
}

/// Order statistics of a latency population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Population size.
    pub count: u64,
    /// Median.
    pub p50: Millis,
    /// 95th percentile.
    pub p95: Millis,
    /// 99th percentile.
    pub p99: Millis,
    /// Maximum.
    pub max: Millis,
    /// Arithmetic mean.
    pub mean: Millis,
}

impl LatencySummary {
    /// Summarizes a population (need not be sorted; empty is all-zero).
    pub fn of(latencies: &[Millis]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let sum: Millis = sorted.iter().copied().sum();
        LatencySummary {
            count: sorted.len() as u64,
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
            mean: sum / sorted.len() as u64,
        }
    }
}

/// An incrementally maintained latency population with exact order
/// statistics.
///
/// [`LatencySummary::of`] re-sorts its whole input, so snapshotting a
/// metrics collector every `k` arrivals over an `n`-query stream costs
/// `O(n²/k · log n)` — quadratic in the stream. The histogram instead
/// keeps counts keyed by the (integer-millisecond) latency value in a
/// `BTreeMap`: pushes are `O(log d)` and summaries `O(d)`, where `d` is
/// the number of *distinct* values — bounded by the value range, not the
/// stream length. Percentiles are nearest-rank over the counts, **bit-
/// identical** to sorting the full population (asserted by tests).
///
/// An optional resolution coarsens keys to fixed-width buckets (values
/// round down to a multiple of the resolution), trading exactness for a
/// hard bound on `d`; the default resolution of 1 ms is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Count per (quantized) latency value, ascending.
    counts: std::collections::BTreeMap<Millis, u64>,
    /// Bucket width; 1 ms keeps exact values.
    resolution: Millis,
    count: u64,
    sum: Millis,
    max: Millis,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty, exact (1 ms resolution) histogram.
    pub fn new() -> Self {
        LatencyHistogram::with_resolution(Millis::from_millis(1))
    }

    /// An empty histogram whose keys round down to multiples of
    /// `resolution` (must be non-zero).
    pub fn with_resolution(resolution: Millis) -> Self {
        assert!(!resolution.is_zero(), "histogram resolution must be > 0");
        LatencyHistogram {
            counts: std::collections::BTreeMap::new(),
            resolution,
            count: 0,
            sum: Millis::ZERO,
            max: Millis::ZERO,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, latency: Millis) {
        let r = self.resolution.as_millis();
        let key = Millis::from_millis(latency.as_millis() / r * r);
        *self.counts.entry(key).or_insert(0) += 1;
        self.count += 1;
        self.sum += key;
        self.max = self.max.max(key);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank percentile — identical to [`percentile_sorted`] over
    /// the full population, including its clamping contract: `p` is
    /// interpreted in `(0, 100]`; `p ≤ 0` yields the minimum, `p > 100`
    /// yields the maximum, NaN yields the maximum, and an empty histogram
    /// yields zero.
    pub fn percentile(&self, p: f64) -> Millis {
        if self.count == 0 {
            return Millis::ZERO;
        }
        let k = percentile_rank(p, self.count);
        let mut seen = 0u64;
        for (&value, &n) in &self.counts {
            seen += n;
            if seen >= k {
                return value;
            }
        }
        self.max
    }

    /// The ascending `(value, count)` buckets — what an external
    /// exposition format (e.g. `wisedb-obs`'s Prometheus-style renderer)
    /// needs to re-serialize the distribution.
    pub fn buckets(&self) -> impl Iterator<Item = (Millis, u64)> + '_ {
        self.counts.iter().map(|(&value, &n)| (value, n))
    }

    /// Sum of all (quantized) observations.
    pub fn sum(&self) -> Millis {
        self.sum
    }

    /// The same order statistics [`LatencySummary::of`] would compute from
    /// the full population, without materializing it.
    pub fn summary(&self) -> LatencySummary {
        if self.count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: self.count,
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            max: self.max,
            mean: self.sum / self.count,
        }
    }
}

/// A point-in-virtual-time health report of a streaming workload service.
///
/// Latency fields measure *SLA latency* (completion − arrival); queueing
/// fields measure time spent waiting before execution started. Decision
/// latency is scheduler wall-clock time per arrival (real seconds, not
/// virtual time) — the Figure 19 metric, live.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Virtual time of the snapshot.
    pub at: Millis,
    /// Arrivals admitted so far.
    pub admitted: u64,
    /// Arrivals rejected by admission control.
    pub rejected: u64,
    /// Queries that finished executing.
    pub completed: u64,
    /// Admitted queries not yet finished.
    pub in_flight: u64,
    /// SLA latency (completion − arrival) order statistics over completions.
    pub latency: LatencySummary,
    /// Queueing delay (start − arrival) order statistics over completions.
    pub queueing: LatencySummary,
    /// Completed queries whose SLA latency exceeded the goal's per-query
    /// bound (see [`PerformanceGoal::per_query_bound`]).
    pub sla_violations: u64,
    /// `sla_violations / completed` (zero when nothing completed).
    pub violation_rate: f64,
    /// Infrastructure money billed so far (start-up fees + rental).
    pub billed: Money,
    /// SLA penalty accrued by completions so far.
    pub penalty: Money,
    /// `(billed + penalty) / virtual hours elapsed` (zero at t=0).
    pub dollars_per_hour: f64,
    /// VMs provisioned and not yet released.
    pub vms_in_flight: u64,
    /// VMs ever provisioned.
    pub vms_provisioned: u64,
    /// Mean scheduler wall-clock overhead per arrival, in (real) seconds.
    pub mean_decision_secs: f64,
    /// 95th-percentile scheduler overhead per arrival, in (real) seconds.
    pub p95_decision_secs: f64,
    /// Per-SLA-class metrics, indexed by [`TenantId`]. A single-class
    /// service reports one row whose numbers mirror the fleet-wide fields;
    /// multi-tenant services report one row per class, and the rows sum to
    /// the fleet totals (asserted by tests).
    pub classes: Vec<ClassMetrics>,
}

impl MetricsSnapshot {
    /// An all-zero snapshot at virtual time zero.
    pub fn empty() -> Self {
        MetricsSnapshot {
            at: Millis::ZERO,
            admitted: 0,
            rejected: 0,
            completed: 0,
            in_flight: 0,
            latency: LatencySummary::default(),
            queueing: LatencySummary::default(),
            sla_violations: 0,
            violation_rate: 0.0,
            billed: Money::ZERO,
            penalty: Money::ZERO,
            dollars_per_hour: 0.0,
            vms_in_flight: 0,
            vms_provisioned: 0,
            mean_decision_secs: 0.0,
            p95_decision_secs: 0.0,
            classes: Vec::new(),
        }
    }

    /// The metrics row of one SLA class, if the snapshot carries it.
    pub fn class(&self, class: TenantId) -> Option<&ClassMetrics> {
        self.classes.get(class.index())
    }

    /// Total cost rate and absolutes folded into one money figure.
    pub fn total_cost(&self) -> Money {
        self.billed + self.penalty
    }
}

impl PerformanceGoal {
    /// The latency bound a *single* query of `template` is held to when
    /// counting SLA violations in live metrics.
    ///
    /// Per-query and max-latency goals have exact per-query bounds. The
    /// aggregate goals have no per-query semantics, so the natural proxy is
    /// used: the mean target for average-latency goals and the percentile
    /// deadline for percentile goals (where a violation rate above
    /// `100 − percent`% — not any single violation — means the goal is
    /// missed).
    pub fn per_query_bound(&self, template: TemplateId) -> Millis {
        match self {
            PerformanceGoal::PerQuery { deadlines, .. } => deadlines
                .get(template.index())
                .copied()
                .unwrap_or(Millis::ZERO),
            PerformanceGoal::MaxLatency { deadline, .. } => *deadline,
            PerformanceGoal::AverageLatency { target, .. } => *target,
            PerformanceGoal::Percentile { deadline, .. } => *deadline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::PenaltyRate;

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<Millis> = (1..=100).map(Millis::from_secs).collect();
        assert_eq!(percentile_sorted(&xs, 50.0), Millis::from_secs(50));
        assert_eq!(percentile_sorted(&xs, 95.0), Millis::from_secs(95));
        assert_eq!(percentile_sorted(&xs, 99.0), Millis::from_secs(99));
        assert_eq!(percentile_sorted(&xs, 100.0), Millis::from_secs(100));
        assert_eq!(percentile_sorted(&[], 50.0), Millis::ZERO);
        // A one-element population answers every percentile with itself.
        assert_eq!(
            percentile_sorted(&[Millis::from_secs(7)], 1.0),
            Millis::from_secs(7)
        );
    }

    #[test]
    fn percentile_out_of_domain_values_are_clamped() {
        let xs: Vec<Millis> = (1..=100).map(Millis::from_secs).collect();
        let mut hist = LatencyHistogram::new();
        for &x in &xs {
            hist.push(x);
        }
        // NaN: conservative maximum, never a miscomputed index.
        assert_eq!(percentile_sorted(&xs, f64::NAN), Millis::from_secs(100));
        assert_eq!(hist.percentile(f64::NAN), Millis::from_secs(100));
        // p ≤ 0: clamped to rank 1 (the minimum).
        for p in [0.0, -4.2, f64::NEG_INFINITY] {
            assert_eq!(percentile_sorted(&xs, p), Millis::from_secs(1), "p={p}");
            assert_eq!(hist.percentile(p), Millis::from_secs(1), "p={p}");
        }
        // p > 100 (including 100 + ε and infinity): the maximum.
        for p in [100.0 + f64::EPSILON * 200.0, 1e300, f64::INFINITY] {
            assert_eq!(percentile_sorted(&xs, p), Millis::from_secs(100), "p={p}");
            assert_eq!(hist.percentile(p), Millis::from_secs(100), "p={p}");
        }
        // A single-sample population answers every (even out-of-domain)
        // percentile with its one value.
        let one = [Millis::from_secs(7)];
        let mut one_hist = LatencyHistogram::new();
        one_hist.push(Millis::from_secs(7));
        for p in [f64::NAN, -1.0, 0.0, 50.0, 100.0, 101.0] {
            assert_eq!(percentile_sorted(&one, p), Millis::from_secs(7), "p={p}");
            assert_eq!(one_hist.percentile(p), Millis::from_secs(7), "p={p}");
        }
        // The empty population still yields zero whatever p is.
        assert_eq!(percentile_sorted(&[], f64::NAN), Millis::ZERO);
        assert_eq!(LatencyHistogram::new().percentile(f64::NAN), Millis::ZERO);
    }

    #[test]
    fn summary_of_uniform_population() {
        let xs: Vec<Millis> = (1..=100).map(Millis::from_secs).collect();
        let s = LatencySummary::of(&xs);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Millis::from_secs(50));
        assert_eq!(s.p95, Millis::from_secs(95));
        assert_eq!(s.max, Millis::from_secs(100));
        assert_eq!(s.mean, Millis::from_millis(50_500));
        assert_eq!(LatencySummary::of(&[]), LatencySummary::default());
    }

    #[test]
    fn per_query_bound_matches_goal_semantics() {
        let rate = PenaltyRate::CENT_PER_SECOND;
        let per_query = PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate,
        };
        assert_eq!(
            per_query.per_query_bound(TemplateId(1)),
            Millis::from_mins(1)
        );
        let max = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(5),
            rate,
        };
        assert_eq!(max.per_query_bound(TemplateId(0)), Millis::from_mins(5));
        let avg = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(2),
            rate,
        };
        assert_eq!(avg.per_query_bound(TemplateId(9)), Millis::from_mins(2));
        let pct = PerformanceGoal::Percentile {
            percent: 90.0,
            deadline: Millis::from_mins(4),
            rate,
        };
        assert_eq!(pct.per_query_bound(TemplateId(0)), Millis::from_mins(4));
    }

    #[test]
    fn histogram_matches_naive_sort_exactly() {
        // Adversarial population: duplicates, clusters, a long tail, and
        // insertion order far from sorted.
        let mut values = Vec::new();
        let mut x: u64 = 9_876_543;
        for i in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = match i % 4 {
                0 => x % 50,             // dense duplicates
                1 => 1_000 + x % 10,     // tight cluster
                2 => x % 100_000,        // broad spread
                _ => 10_000_000 + x % 3, // far tail
            };
            values.push(Millis::from_millis(v));
        }
        let mut hist = LatencyHistogram::new();
        let mut naive = LatencySummary::default();
        for (i, &v) in values.iter().enumerate() {
            hist.push(v);
            // Interim snapshots must agree with the naive full sort at
            // every prefix, not just the end (checked sparsely for speed).
            if i % 257 == 0 || i + 1 == values.len() {
                naive = LatencySummary::of(&values[..=i]);
                assert_eq!(hist.summary(), naive, "prefix {}", i + 1);
            }
        }
        // And every percentile, not just the summary's three.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for p in [1.0, 10.0, 25.0, 33.3, 66.7, 90.0, 99.9, 100.0] {
            assert_eq!(hist.percentile(p), percentile_sorted(&sorted, p), "p{p}");
        }
        assert_eq!(hist.count(), naive.count);
    }

    #[test]
    fn histogram_resolution_quantizes_keys() {
        let mut hist = LatencyHistogram::with_resolution(Millis::from_millis(100));
        hist.push(Millis::from_millis(149)); // → 100
        hist.push(Millis::from_millis(150)); // → 100
        hist.push(Millis::from_millis(250)); // → 200
        let s = hist.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.p50, Millis::from_millis(100));
        assert_eq!(s.max, Millis::from_millis(200));
    }

    #[test]
    fn arriving_query_constructors_tag_classes() {
        use crate::tenant::TenantId;
        let fresh = ArrivingQuery::new(TemplateId(1), Millis::from_secs(3));
        assert_eq!(fresh.class, TenantId::DEFAULT);
        let gold = ArrivingQuery::of_class(TemplateId(1), Millis::from_secs(3), TenantId(2));
        assert_eq!(gold.class, TenantId(2));
        assert_eq!(gold.template, fresh.template);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let mut s = MetricsSnapshot::empty();
        s.at = Millis::from_secs(10);
        s.admitted = 5;
        s.billed = Money::from_dollars(1.25);
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert!(back
            .total_cost()
            .approx_eq(Money::from_dollars(1.25), 1e-12));
    }
}
