//! Tenant SLA classes: multiple performance goals multiplexed on one fleet.
//!
//! WiSeDB trains one decision model per performance goal, and §6.2 shows
//! models transfer across shifted goals — but a cloud *provider* serves
//! tenants whose SLAs differ in kind, not just tightness. This module
//! introduces the vocabulary for that setting:
//!
//! * [`TenantId`] — a dense index identifying one SLA class of a service.
//!   Class 0 is the **default class**; a single-class service is exactly
//!   the pre-multi-tenant single-goal service (asserted by tests).
//! * [`SlaClass`] — a named [`GoalHandle`] plus an optional template
//!   subset and a shedding priority: everything a service needs to know
//!   about one tenant population.
//! * [`ClassMetrics`] — the per-class slice of a
//!   [`MetricsSnapshot`](crate::MetricsSnapshot): latency percentiles,
//!   violation rate, and dollar attribution alongside the fleet totals.

use serde::{Deserialize, Serialize};

use crate::handle::GoalHandle;
use crate::money::Money;
use crate::stream::LatencySummary;
use crate::template::TemplateId;

/// Identifies one SLA class (tenant population) of a workload service.
///
/// Ids are dense: a service with `k` classes uses `TenantId(0)` through
/// `TenantId(k - 1)`, in the order the classes were registered.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The default class: what every untagged arrival belongs to, and the
    /// only class of a legacy single-goal service.
    pub const DEFAULT: TenantId = TenantId(0);

    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// One tenant SLA class: a named performance goal, the template subset its
/// tenants may submit, and a shedding priority.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaClass {
    /// Human-readable label ("gold", "batch-tier", ...).
    pub name: String,
    /// The class's performance goal (shared handle: clones are pointer
    /// bumps, and every layer holding the class sees one allocation).
    pub goal: GoalHandle,
    /// Templates tenants of this class may submit. `None` means the whole
    /// spec; `Some` restricts arrivals (enforced at offer time).
    pub templates: Option<Vec<TemplateId>>,
    /// Shedding priority under overload: **higher keeps working longer**.
    /// Priority-aware admission policies shed the lowest priority (the
    /// loosest SLA) first.
    pub priority: u8,
}

impl SlaClass {
    /// A class over the full template set with priority 0.
    pub fn new(name: impl Into<String>, goal: impl Into<GoalHandle>) -> Self {
        SlaClass {
            name: name.into(),
            goal: goal.into(),
            templates: None,
            priority: 0,
        }
    }

    /// The class a legacy single-goal service implicitly runs: full
    /// template set, priority 0, named "default".
    pub fn solo(goal: impl Into<GoalHandle>) -> Self {
        SlaClass::new("default", goal)
    }

    /// Restricts the class to a template subset.
    pub fn with_templates(mut self, templates: Vec<TemplateId>) -> Self {
        self.templates = Some(templates);
        self
    }

    /// Sets the shedding priority (higher survives overload longer).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Whether tenants of this class may submit `template`.
    pub fn allows(&self, template: TemplateId) -> bool {
        match &self.templates {
            None => true,
            Some(list) => list.contains(&template),
        }
    }
}

/// The per-class slice of a metrics snapshot. Sums across classes
/// reproduce the fleet-wide totals exactly (asserted by tests): per-class
/// latency populations partition the fleet population, penalties are
/// tracked per class goal, and dollars are attributed to the class that
/// caused them (start-up fees to the class whose plan rented the VM,
/// rental to the class whose query executed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Which class this row describes.
    pub class: TenantId,
    /// The class's label (copied from its [`SlaClass`]).
    pub name: String,
    /// This class's shedding priority.
    pub priority: u8,
    /// Arrivals of this class admitted so far.
    pub admitted: u64,
    /// Arrivals of this class rejected by admission control.
    pub rejected: u64,
    /// Queries of this class that finished executing.
    pub completed: u64,
    /// SLA latency (completion − arrival) order statistics.
    pub latency: LatencySummary,
    /// Queueing delay (start − arrival) order statistics.
    pub queueing: LatencySummary,
    /// Completions whose SLA latency exceeded the class goal's per-query
    /// bound.
    pub sla_violations: u64,
    /// `sla_violations / completed` (zero when nothing completed).
    pub violation_rate: f64,
    /// Infrastructure money attributed to this class: start-up fees of the
    /// VMs its plans rented plus rental for its executions.
    pub billed: Money,
    /// SLA penalty accrued under this class's goal.
    pub penalty: Money,
    /// `(billed + penalty) / virtual hours elapsed` (zero at t=0).
    pub dollars_per_hour: f64,
}

impl ClassMetrics {
    /// An all-zero row for `class`.
    pub fn empty(class: TenantId, name: impl Into<String>, priority: u8) -> Self {
        ClassMetrics {
            class,
            name: name.into(),
            priority,
            admitted: 0,
            rejected: 0,
            completed: 0,
            latency: LatencySummary::default(),
            queueing: LatencySummary::default(),
            sla_violations: 0,
            violation_rate: 0.0,
            billed: Money::ZERO,
            penalty: Money::ZERO,
            dollars_per_hour: 0.0,
        }
    }

    /// Billed plus penalty, the class's total cost.
    pub fn total_cost(&self) -> Money {
        self.billed + self.penalty
    }
}

/// Validates a class set: non-empty, and every declared template subset is
/// non-empty and within the spec's template range.
pub fn validate_classes(
    classes: &[SlaClass],
    spec: &crate::spec::WorkloadSpec,
) -> crate::error::CoreResult<()> {
    if classes.is_empty() {
        return Err(crate::error::CoreError::NoClasses);
    }
    for (i, class) in classes.iter().enumerate() {
        class.goal.validate_against(spec)?;
        if let Some(templates) = &class.templates {
            if templates.is_empty() {
                return Err(crate::error::CoreError::EmptyClassTemplates {
                    class: TenantId(i as u32),
                });
            }
            for &t in templates {
                if t.index() >= spec.num_templates() {
                    return Err(crate::error::CoreError::UnknownTemplate { template: t });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::PerformanceGoal;
    use crate::money::PenaltyRate;
    use crate::spec::WorkloadSpec;
    use crate::time::Millis;
    use crate::vm::VmType;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn goal() -> PerformanceGoal {
        PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(5),
            rate: PenaltyRate::CENT_PER_SECOND,
        }
    }

    #[test]
    fn class_allows_respects_subset() {
        let open = SlaClass::new("open", goal());
        assert!(open.allows(TemplateId(0)));
        assert!(open.allows(TemplateId(7)));
        let narrow = SlaClass::new("narrow", goal()).with_templates(vec![TemplateId(1)]);
        assert!(narrow.allows(TemplateId(1)));
        assert!(!narrow.allows(TemplateId(0)));
    }

    #[test]
    fn validate_classes_catches_bad_sets() {
        let s = spec();
        assert!(matches!(
            validate_classes(&[], &s),
            Err(crate::error::CoreError::NoClasses)
        ));
        let bad_subset = SlaClass::new("x", goal()).with_templates(vec![]);
        assert!(matches!(
            validate_classes(&[bad_subset], &s),
            Err(crate::error::CoreError::EmptyClassTemplates { .. })
        ));
        let foreign = SlaClass::new("x", goal()).with_templates(vec![TemplateId(9)]);
        assert!(matches!(
            validate_classes(&[foreign], &s),
            Err(crate::error::CoreError::UnknownTemplate { .. })
        ));
        let fine = vec![
            SlaClass::new("gold", goal()).with_priority(2),
            SlaClass::new("bronze", goal()).with_templates(vec![TemplateId(0)]),
        ];
        assert!(validate_classes(&fine, &s).is_ok());
    }

    #[test]
    fn tenant_id_displays_and_indexes() {
        assert_eq!(TenantId(3).to_string(), "class3");
        assert_eq!(TenantId(3).index(), 3);
        assert_eq!(TenantId::default(), TenantId::DEFAULT);
    }

    #[test]
    fn class_serde_round_trips() {
        let class = SlaClass::new("gold", goal())
            .with_templates(vec![TemplateId(0), TemplateId(1)])
            .with_priority(3);
        let json = serde_json::to_string(&class).unwrap();
        let back: SlaClass = serde_json::from_str(&json).unwrap();
        assert_eq!(back, class);
    }

    #[test]
    fn class_metrics_total_cost_adds_up() {
        let mut m = ClassMetrics::empty(TenantId(1), "silver", 1);
        m.billed = Money::from_dollars(2.0);
        m.penalty = Money::from_dollars(0.5);
        assert!(m.total_cost().approx_eq(Money::from_dollars(2.5), 1e-12));
    }
}
