//! Workloads: multisets of template instances.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::spec::WorkloadSpec;
use crate::template::TemplateId;

/// Identifier of a concrete query instance within one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The index as a `usize`, for slice addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0 + 1)
    }
}

/// One query instance: an id plus the template it instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// Unique id within the workload.
    pub id: QueryId,
    /// Template this query instantiates.
    pub template: TemplateId,
}

/// A batch of queries to be scheduled.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Workload {
    queries: Vec<Query>,
}

impl Workload {
    /// An empty workload.
    pub fn empty() -> Self {
        Workload::default()
    }

    /// Builds a workload from a list of template ids; query ids are assigned
    /// in order.
    pub fn from_templates(templates: impl IntoIterator<Item = TemplateId>) -> Self {
        let queries = templates
            .into_iter()
            .enumerate()
            .map(|(i, template)| Query {
                id: QueryId(i as u32),
                template,
            })
            .collect();
        Workload { queries }
    }

    /// Builds a workload with `counts[i]` instances of template `i`.
    pub fn from_counts(counts: &[u32]) -> Self {
        let mut templates = Vec::with_capacity(counts.iter().map(|&c| c as usize).sum());
        for (i, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                templates.push(TemplateId(i as u32));
            }
        }
        Workload::from_templates(templates)
    }

    /// The queries in submission order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` iff the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Per-template instance counts, sized to `num_templates`.
    pub fn template_counts(&self, num_templates: usize) -> Vec<u32> {
        let mut counts = vec![0u32; num_templates];
        for q in &self.queries {
            if let Some(c) = counts.get_mut(q.template.index()) {
                *c += 1;
            }
        }
        counts
    }

    /// Validates that every query's template exists in `spec`.
    pub fn validate_against(&self, spec: &WorkloadSpec) -> CoreResult<()> {
        for q in &self.queries {
            if q.template.index() >= spec.num_templates() {
                return Err(CoreError::UnknownTemplate {
                    template: q.template,
                });
            }
        }
        Ok(())
    }

    /// Appends a query with the next id and returns its id.
    pub fn push_template(&mut self, template: TemplateId) -> QueryId {
        let id = QueryId(self.queries.len() as u32);
        self.queries.push(Query { id, template });
        id
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", q.id, q.template)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Millis;
    use crate::vm::VmType;

    #[test]
    fn from_counts_builds_in_template_order() {
        let w = Workload::from_counts(&[2, 0, 1]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.queries()[0].template, TemplateId(0));
        assert_eq!(w.queries()[1].template, TemplateId(0));
        assert_eq!(w.queries()[2].template, TemplateId(2));
        assert_eq!(w.template_counts(3), vec![2, 0, 1]);
    }

    #[test]
    fn ids_are_sequential() {
        let w = Workload::from_templates([TemplateId(1), TemplateId(0)]);
        assert_eq!(w.queries()[0].id, QueryId(0));
        assert_eq!(w.queries()[1].id, QueryId(1));
    }

    #[test]
    fn push_assigns_next_id() {
        let mut w = Workload::empty();
        assert!(w.is_empty());
        let id = w.push_template(TemplateId(4));
        assert_eq!(id, QueryId(0));
        let id = w.push_template(TemplateId(2));
        assert_eq!(id, QueryId(1));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn validate_against_catches_foreign_templates() {
        let spec = WorkloadSpec::single_vm(vec![("a", Millis::from_mins(1))], VmType::t2_medium())
            .unwrap();
        let ok = Workload::from_counts(&[3]);
        assert!(ok.validate_against(&spec).is_ok());
        let bad = Workload::from_templates([TemplateId(5)]);
        assert!(matches!(
            bad.validate_against(&spec),
            Err(CoreError::UnknownTemplate { .. })
        ));
    }

    #[test]
    fn counts_ignore_out_of_range() {
        let w = Workload::from_templates([TemplateId(7)]);
        assert_eq!(w.template_counts(2), vec![0, 0]);
    }

    #[test]
    fn display_lists_queries() {
        let w = Workload::from_templates([TemplateId(0), TemplateId(1)]);
        assert_eq!(w.to_string(), "{q1:T1, q2:T2}");
    }
}
