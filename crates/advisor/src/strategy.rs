//! Strategy recommendation (§6.1): exploring the performance/cost
//! trade-off.
//!
//! WiSeDB does not hand the application a single model. It builds a ladder
//! of performance goals around the requested one (looser → stricter),
//! derives a decision model for each via adaptive retraining (§5 — the
//! loosest is trained fresh, each stricter one reuses the samples' search
//! memos), prices each model's behaviour per query template on a large
//! random sample, and then prunes the ladder with Earth Mover's Distance
//! until only `k` *meaningfully different* strategies remain. Each surviving
//! strategy carries a cost-estimation function of the per-template instance
//! counts, so applications can price a future workload without executing —
//! or even scheduling — it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use wisedb_core::{
    CoreResult, Money, PerformanceGoal, Schedule, TemplateId, Workload, WorkloadSpec,
};

use crate::emd::emd_1d;
use crate::model::{DecisionModel, ModelConfig, ModelGenerator};

/// Recommender tunables.
#[derive(Debug, Clone)]
pub struct RecommenderConfig {
    /// Goals in the initial ladder (odd keeps the user goal at the median).
    pub ladder_size: usize,
    /// Strategies to keep after EMD pruning (`k`).
    pub keep: usize,
    /// Half-width of the strictness range: goals span `[-spread, +spread]`
    /// around the user goal (fractions of the gap to the strictest
    /// feasible goal, §7.3's strictness factor).
    pub spread: f64,
    /// Queries in the random sample used to price each strategy.
    pub costing_sample: usize,
    /// Seed for the costing sample.
    pub seed: u64,
    /// Training configuration for the ladder models.
    pub training: ModelConfig,
}

impl Default for RecommenderConfig {
    fn default() -> Self {
        RecommenderConfig {
            ladder_size: 7,
            keep: 3,
            spread: 0.5,
            costing_sample: 1000,
            seed: 0xC057,
            training: ModelConfig::fast(),
        }
    }
}

/// A per-template average-cost pricing function for one strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEstimator {
    /// Average cost attributed to one instance of each template.
    pub per_template_avg: Vec<Money>,
}

impl CostEstimator {
    /// Expected cost of a workload with `counts[i]` instances of template
    /// `i` — the §6.1 cost-estimation function.
    pub fn estimate(&self, counts: &[u32]) -> Money {
        self.per_template_avg
            .iter()
            .zip(counts)
            .map(|(&avg, &c)| avg * c as f64)
            .sum()
    }

    /// The profile EMD pruning compares.
    pub fn profile(&self) -> Vec<f64> {
        self.per_template_avg
            .iter()
            .map(|m| m.as_dollars().max(0.0))
            .collect()
    }
}

/// One recommended workload-management strategy.
#[derive(Debug)]
pub struct Strategy {
    /// Signed strictness factor relative to the user goal (0 = as asked;
    /// negative = more relaxed, cheaper; positive = stricter, pricier).
    pub strictness: f64,
    /// The concrete performance goal.
    pub goal: PerformanceGoal,
    /// The decision model trained for that goal.
    pub model: DecisionModel,
    /// Its per-template pricing function.
    pub estimator: CostEstimator,
}

/// Builds and prunes the strategy ladder.
pub struct StrategyRecommender {
    spec: WorkloadSpec,
    goal: PerformanceGoal,
    config: RecommenderConfig,
}

impl StrategyRecommender {
    /// Creates a recommender around the application's goal.
    pub fn new(spec: WorkloadSpec, goal: PerformanceGoal, config: RecommenderConfig) -> Self {
        StrategyRecommender { spec, goal, config }
    }

    /// Trains the ladder, prices it, and prunes it to `keep` strategies
    /// (sorted loosest first).
    pub fn recommend(&self) -> CoreResult<Vec<Strategy>> {
        let n = self.config.ladder_size.max(2);
        let spread = self.config.spread;
        // Loosest → strictest, so adaptive retraining's "only tighten"
        // precondition holds along the ladder.
        let strictness: Vec<f64> = (0..n)
            .map(|i| -spread + (2.0 * spread) * i as f64 / (n - 1) as f64)
            .collect();

        let loosest = self.goal.tighten_pct(&self.spec, strictness[0]);
        let generator = ModelGenerator::new(
            self.spec.clone(),
            loosest.clone(),
            self.config.training.clone(),
        );
        let (first_model, mut artifacts) = generator.train_with_artifacts()?;

        let mut strategies: Vec<Strategy> = Vec::with_capacity(n);
        let sample = self.costing_workload();
        for (i, &s) in strictness.iter().enumerate() {
            let goal = self.goal.tighten_pct(&self.spec, s);
            let model = if i == 0 {
                first_model.clone()
            } else {
                generator.retrain_tightened(&goal, &mut artifacts)?
            };
            let estimator = self.price(&model, &goal, &sample)?;
            strategies.push(Strategy {
                strictness: s,
                goal,
                model,
                estimator,
            });
        }

        // EMD pruning: drop the stricter member of the closest pair.
        while strategies.len() > self.config.keep.max(1) {
            let mut min_at = 1usize;
            let mut min_d = f64::INFINITY;
            for i in 0..strategies.len() - 1 {
                let d = emd_1d(
                    &strategies[i].estimator.profile(),
                    &strategies[i + 1].estimator.profile(),
                );
                if d < min_d {
                    min_d = d;
                    min_at = i + 1;
                }
            }
            strategies.remove(min_at);
        }
        Ok(strategies)
    }

    fn costing_workload(&self) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let nt = self.spec.num_templates() as u32;
        Workload::from_templates(
            (0..self.config.costing_sample).map(|_| TemplateId(rng.gen_range(0..nt))),
        )
    }

    fn price(
        &self,
        model: &DecisionModel,
        goal: &PerformanceGoal,
        sample: &Workload,
    ) -> CoreResult<CostEstimator> {
        let schedule = model.schedule_batch(sample)?;
        let totals = attribute_costs(&self.spec, goal, &schedule)?;
        let counts = sample.template_counts(self.spec.num_templates());
        let per_template_avg = totals
            .iter()
            .zip(&counts)
            .map(|(&total, &c)| {
                if c == 0 {
                    Money::ZERO
                } else {
                    total / c as f64
                }
            })
            .collect();
        Ok(CostEstimator { per_template_avg })
    }
}

/// Attributes a schedule's total cost (Eq. 1) to templates:
/// each query carries its own runtime; a VM's start-up fee is split evenly
/// across its queue; per-query violations (deadline goals) stick to the
/// violating query, while workload-level penalties (average, percentile)
/// are split evenly across all queries.
pub fn attribute_costs(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    schedule: &Schedule,
) -> CoreResult<Vec<Money>> {
    let mut totals = vec![Money::ZERO; spec.num_templates()];
    let latencies = schedule.query_latencies(spec)?;
    let num_queries = latencies.len().max(1);

    for vm in &schedule.vms {
        let vm_type = spec.vm_type(vm.vm_type)?;
        if vm.queue.is_empty() {
            continue;
        }
        let share = vm_type.startup_cost / vm.queue.len() as f64;
        for p in &vm.queue {
            let exec = spec.latency(p.template, vm.vm_type).ok_or(
                wisedb_core::CoreError::UnsupportedPlacement {
                    template: p.template,
                    vm_type: vm.vm_type,
                },
            )?;
            totals[p.template.index()] += share + vm_type.runtime_cost(exec);
        }
    }

    match goal {
        PerformanceGoal::PerQuery { deadlines, rate } => {
            for l in &latencies {
                let d = deadlines
                    .get(l.template.index())
                    .copied()
                    .unwrap_or(wisedb_core::Millis::ZERO);
                totals[l.template.index()] += rate.for_violation(l.latency.saturating_sub(d));
            }
        }
        PerformanceGoal::MaxLatency { deadline, rate } => {
            for l in &latencies {
                totals[l.template.index()] +=
                    rate.for_violation(l.latency.saturating_sub(*deadline));
            }
        }
        PerformanceGoal::AverageLatency { .. } | PerformanceGoal::Percentile { .. } => {
            let penalty = goal.penalty(&latencies);
            let share = penalty / num_queries as f64;
            for l in &latencies {
                totals[l.template.index()] += share;
            }
        }
    }
    Ok(totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{GoalKind, Millis, VmType};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![
                ("T1", Millis::from_mins(2)),
                ("T2", Millis::from_mins(1)),
                ("T3", Millis::from_mins(3)),
            ],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn config() -> RecommenderConfig {
        RecommenderConfig {
            ladder_size: 5,
            keep: 3,
            spread: 0.5,
            costing_sample: 120,
            seed: 1,
            training: ModelConfig {
                num_samples: 40,
                sample_size: 5,
                seed: 2,
                ..ModelConfig::fast()
            },
        }
    }

    #[test]
    fn recommends_k_strategies_in_strictness_order() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let strategies = StrategyRecommender::new(spec, goal, config())
            .recommend()
            .unwrap();
        assert_eq!(strategies.len(), 3);
        for w in strategies.windows(2) {
            assert!(w[0].strictness < w[1].strictness);
        }
    }

    #[test]
    fn estimators_scale_linearly_in_counts() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::PerQuery, &spec).unwrap();
        let strategies = StrategyRecommender::new(spec, goal, config())
            .recommend()
            .unwrap();
        let est = &strategies[0].estimator;
        let single = est.estimate(&[1, 0, 0]);
        let triple = est.estimate(&[3, 0, 0]);
        assert!(triple.approx_eq(single * 3.0, 1e-9));
        let mixed = est.estimate(&[1, 2, 0]);
        assert!(mixed.approx_eq(single + est.estimate(&[0, 2, 0]), 1e-9));
    }

    #[test]
    fn estimates_are_positive_and_roughly_cover_runtime() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let strategies = StrategyRecommender::new(spec.clone(), goal, config())
            .recommend()
            .unwrap();
        for s in &strategies {
            for t in spec.template_ids() {
                let avg = s.estimator.per_template_avg[t.index()];
                let runtime = spec.cheapest_runtime_cost(t).unwrap();
                // Every instance costs at least its own cheapest runtime.
                assert!(
                    avg.as_dollars() >= runtime.as_dollars() * 0.99,
                    "template {t}: avg {avg} below runtime {runtime}"
                );
            }
        }
    }

    #[test]
    fn attribution_sums_to_total_cost() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::AverageLatency, &spec).unwrap();
        let model = ModelGenerator::new(
            spec.clone(),
            goal.clone(),
            ModelConfig {
                num_samples: 30,
                sample_size: 5,
                seed: 11,
                ..ModelConfig::fast()
            },
        )
        .train()
        .unwrap();
        let workload = Workload::from_counts(&[4, 4, 4]);
        let schedule = model.schedule_batch(&workload).unwrap();
        let attributed: Money = attribute_costs(&spec, &goal, &schedule)
            .unwrap()
            .into_iter()
            .sum();
        let total = wisedb_core::total_cost(&spec, &goal, &schedule).unwrap();
        assert!(
            attributed.approx_eq(total, 1e-9),
            "attributed {attributed} vs total {total}"
        );
    }

    #[test]
    fn pruning_respects_keep_and_preserves_order() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut cfg = config();
        cfg.keep = 5; // whole ladder
        let full = StrategyRecommender::new(spec.clone(), goal.clone(), cfg.clone())
            .recommend()
            .unwrap();
        assert_eq!(full.len(), 5);

        cfg.keep = 2;
        let pruned = StrategyRecommender::new(spec, goal, cfg)
            .recommend()
            .unwrap();
        assert_eq!(pruned.len(), 2);
        // Pruned strategies are a subset of the ladder's strictness values,
        // still sorted, and pruning never invents new goals.
        let ladder: Vec<f64> = full.iter().map(|s| s.strictness).collect();
        for s in &pruned {
            assert!(ladder.iter().any(|&l| (l - s.strictness).abs() < 1e-12));
        }
        assert!(pruned[0].strictness < pruned[1].strictness);
        // Pruning drops the stricter member of the closest pair, so the
        // loosest strategy always survives.
        assert_eq!(pruned[0].strictness, ladder[0]);
    }
}
