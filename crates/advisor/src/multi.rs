//! Multi-tenant online scheduling: per-class decision models multiplexed
//! on one shared cluster.
//!
//! WiSeDB trains one decision model per performance goal; §6.2 (Fig. 19)
//! shows models are cheap to specialize but still *per-goal*. A provider
//! serving tenants with different SLAs would therefore need one fleet per
//! goal — unless the goals are multiplexed. [`MultiScheduler`] does the
//! multiplexing at the planning layer:
//!
//! * one [`OnlineScheduler`] (base model + Reuse/Shift/augment caches) per
//!   [`SlaClass`], all sharing a single interned [`SpecHandle`] — the
//!   PR-3 handle machinery means `k` class models cost one spec
//!   allocation, not `k`;
//! * one shared [`ClusterView`]: every class's placements contend for the
//!   same open VM and the same fleet counter, so consolidation happens
//!   naturally (a gold-class plan can stack work behind a bronze-class
//!   query and vice versa);
//! * per-arrival routing: a batch of class `c` is planned by class `c`'s
//!   model under class `c`'s goal. Recall discipline is the caller's
//!   (the runtime recalls only same-class pending work, so one class's
//!   replan never perturbs another's queued placements).
//!
//! A single-class `MultiScheduler` routes everything through one
//! `OnlineScheduler` over the full spec — bit-identical to the legacy
//! single-goal pipeline (asserted by `tests/multitenant_e2e.rs`).

use wisedb_core::{
    validate_classes, CoreError, CoreResult, Millis, SlaClass, SpecHandle, TenantId,
};

use crate::model::{DecisionModel, TrainingArtifacts};
use crate::online::{ArrivalPlan, ClusterView, OnlineConfig, OnlineScheduler, PendingArrival};

/// Per-class online schedulers multiplexed over one shared cluster view.
pub struct MultiScheduler {
    spec: SpecHandle,
    classes: Vec<SlaClass>,
    /// One scheduler per class, indexed by [`TenantId`].
    schedulers: Vec<OnlineScheduler>,
    config: OnlineConfig,
}

impl MultiScheduler {
    /// Trains one base model per class against the shared `spec`. Classes
    /// are identified by their index: `classes[i]` is [`TenantId`]`(i)`.
    pub fn train(
        spec: impl Into<SpecHandle>,
        classes: Vec<SlaClass>,
        config: OnlineConfig,
    ) -> CoreResult<Self> {
        let spec = spec.into();
        validate_classes(&classes, &spec)?;
        let schedulers = classes
            .iter()
            .map(|class| OnlineScheduler::train(spec.clone(), class.goal.clone(), config.clone()))
            .collect::<CoreResult<Vec<_>>>()?;
        Ok(MultiScheduler {
            spec,
            classes,
            schedulers,
            config,
        })
    }

    /// Wraps pre-trained per-class schedulers (parallel order with
    /// `classes`). All schedulers must share the spec.
    pub fn with_schedulers(
        classes: Vec<SlaClass>,
        schedulers: Vec<OnlineScheduler>,
        config: OnlineConfig,
    ) -> CoreResult<Self> {
        if classes.is_empty() {
            return Err(CoreError::NoClasses);
        }
        if classes.len() != schedulers.len() {
            return Err(CoreError::ModelMismatch {
                detail: format!(
                    "{} classes but {} schedulers",
                    classes.len(),
                    schedulers.len()
                ),
            });
        }
        let spec = schedulers[0].base_model().spec_handle().clone();
        for s in &schedulers[1..] {
            if *s.base_model().spec_handle() != spec {
                return Err(CoreError::ModelMismatch {
                    detail: "class schedulers disagree on the workload spec".to_string(),
                });
            }
        }
        validate_classes(&classes, &spec)?;
        Ok(MultiScheduler {
            spec,
            classes,
            schedulers,
            config,
        })
    }

    /// The shared workload specification.
    pub fn spec_handle(&self) -> &SpecHandle {
        &self.spec
    }

    /// The shared online configuration every class scheduler was built
    /// with (swapped-in models inherit it too).
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Dismantles the multiplexer into its parts — `(spec, classes,
    /// schedulers, config)`, schedulers in [`TenantId`] order — the split
    /// accessor the sharded runtime uses to hand each class scheduler to
    /// its own planner thread. [`with_schedulers`](Self::with_schedulers)
    /// is the inverse: reassembling the same parts yields a scheduler
    /// bit-identical to the original (caches ride along untouched).
    pub fn into_parts(
        self,
    ) -> (
        SpecHandle,
        Vec<SlaClass>,
        Vec<OnlineScheduler>,
        OnlineConfig,
    ) {
        (self.spec, self.classes, self.schedulers, self.config)
    }

    /// The configured SLA classes, indexed by [`TenantId`].
    pub fn classes(&self) -> &[SlaClass] {
        &self.classes
    }

    /// Number of SLA classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// One class's definition.
    pub fn class(&self, class: TenantId) -> CoreResult<&SlaClass> {
        self.classes
            .get(class.index())
            .ok_or(CoreError::UnknownTenantClass { class })
    }

    /// One class's scheduler (base model + caches).
    pub fn scheduler(&self, class: TenantId) -> CoreResult<&OnlineScheduler> {
        self.schedulers
            .get(class.index())
            .ok_or(CoreError::UnknownTenantClass { class })
    }

    /// Plans one batch of class `class` against the shared cluster view.
    /// The batch must be that class's arrivals (the newcomer plus its
    /// recalled same-class pending); model selection runs entirely inside
    /// the class's scheduler while placements target the shared fleet.
    pub fn plan_arrivals(
        &mut self,
        class: TenantId,
        view: &ClusterView,
        batch: &[PendingArrival],
        now: Millis,
    ) -> CoreResult<ArrivalPlan> {
        let scheduler = self
            .schedulers
            .get_mut(class.index())
            .ok_or(CoreError::UnknownTenantClass { class })?;
        scheduler.plan_arrivals(view, batch, now)
    }

    /// Hot-swaps one class's decision model — the background-retraining
    /// hook: a drift-adapted model trained off the event loop replaces the
    /// class's scheduler (fresh caches) and takes effect on the next
    /// arrival. In-flight and queued work is untouched; only future plans
    /// consult the new model.
    ///
    /// The model must be trained for the service's spec and the class's
    /// goal; anything else is a [`CoreError::ModelMismatch`].
    pub fn swap_model(
        &mut self,
        class: TenantId,
        model: DecisionModel,
        artifacts: TrainingArtifacts,
    ) -> CoreResult<()> {
        let slot = self
            .classes
            .get(class.index())
            .ok_or(CoreError::UnknownTenantClass { class })?;
        if *model.spec_handle() != self.spec {
            return Err(CoreError::ModelMismatch {
                detail: format!("model spec differs from the service spec ({class})"),
            });
        }
        if *model.goal_handle() != slot.goal {
            return Err(CoreError::ModelMismatch {
                detail: format!("model goal differs from {class}'s SLA goal"),
            });
        }
        self.schedulers[class.index()] =
            OnlineScheduler::with_model(model, artifacts, self.config.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelConfig, ModelGenerator};
    use crate::online::Planner;
    use wisedb_core::{GoalKind, PerformanceGoal, QueryId, TemplateId, VmType, WorkloadSpec};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn tiny() -> OnlineConfig {
        OnlineConfig {
            training: ModelConfig {
                num_samples: 40,
                sample_size: 5,
                seed: 3,
                ..ModelConfig::fast()
            },
            ..OnlineConfig::default()
        }
    }

    fn classes(spec: &WorkloadSpec) -> Vec<SlaClass> {
        vec![
            SlaClass::new(
                "gold",
                PerformanceGoal::paper_default(GoalKind::MaxLatency, spec).unwrap(),
            )
            .with_priority(2),
            SlaClass::new(
                "bronze",
                PerformanceGoal::paper_default(GoalKind::AverageLatency, spec).unwrap(),
            ),
        ]
    }

    #[test]
    fn trains_one_scheduler_per_class_on_one_spec() {
        let spec = spec();
        let multi = MultiScheduler::train(spec.clone(), classes(&spec), tiny()).unwrap();
        assert_eq!(multi.num_classes(), 2);
        assert_eq!(multi.class(TenantId(0)).unwrap().name, "gold");
        // Every class model shares the interned spec allocation.
        for id in 0..2 {
            assert!(multi
                .scheduler(TenantId(id))
                .unwrap()
                .base_model()
                .spec_handle()
                .ptr_eq(multi.spec_handle()));
        }
        assert!(matches!(
            multi.class(TenantId(7)),
            Err(CoreError::UnknownTenantClass { .. })
        ));
    }

    #[test]
    fn routes_batches_to_the_class_model() {
        let spec = spec();
        let class_set = classes(&spec);
        let mut multi = MultiScheduler::train(spec, class_set, tiny()).unwrap();
        let view = ClusterView::default();
        let batch = [PendingArrival {
            id: QueryId(0),
            template: TemplateId(1),
            arrival: Millis::ZERO,
        }];
        for class in [TenantId(0), TenantId(1)] {
            let plan = multi
                .plan_arrivals(class, &view, &batch, Millis::ZERO)
                .unwrap();
            assert!(!plan.steps.is_empty(), "{class} plans the batch");
        }
        assert!(matches!(
            multi.plan_arrivals(TenantId(9), &view, &batch, Millis::ZERO),
            Err(CoreError::UnknownTenantClass { .. })
        ));
    }

    #[test]
    fn swap_model_validates_spec_and_goal() {
        let spec = spec();
        let mut multi = MultiScheduler::train(spec.clone(), classes(&spec), tiny()).unwrap();
        let shared = multi.spec_handle().clone();
        let gold_goal = multi.class(TenantId(0)).unwrap().goal.clone();

        // A fresh model for the same (spec, goal) swaps in.
        let (ok_model, ok_artifacts) = ModelGenerator::new(
            shared.clone(),
            gold_goal.clone(),
            tiny().training.with_seed(99),
        )
        .train_with_artifacts()
        .unwrap();
        multi
            .swap_model(TenantId(0), ok_model, ok_artifacts)
            .unwrap();

        // Wrong goal (bronze's) is rejected.
        let bronze_goal = multi.class(TenantId(1)).unwrap().goal.clone();
        let (bad_model, bad_artifacts) = ModelGenerator::new(shared, bronze_goal, tiny().training)
            .train_with_artifacts()
            .unwrap();
        assert!(matches!(
            multi.swap_model(TenantId(0), bad_model, bad_artifacts),
            Err(CoreError::ModelMismatch { .. })
        ));
    }

    #[test]
    fn single_class_multi_is_the_plain_scheduler() {
        // One class => plan_arrivals must agree step-for-step with a
        // standalone OnlineScheduler for the same goal and seed.
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut solo = OnlineScheduler::train(spec.clone(), goal.clone(), tiny()).unwrap();
        let mut multi = MultiScheduler::train(spec, vec![SlaClass::solo(goal)], tiny()).unwrap();
        let view = ClusterView::default();
        for (i, t) in [1u32, 0, 1].iter().enumerate() {
            let batch = [PendingArrival {
                id: QueryId(i as u32),
                template: TemplateId(*t),
                arrival: Millis::from_secs(i as u64),
            }];
            let now = Millis::from_secs(i as u64);
            let a = solo.plan_arrivals(&view, &batch, now).unwrap();
            let b = multi
                .plan_arrivals(TenantId::DEFAULT, &view, &batch, now)
                .unwrap();
            assert_eq!(a.steps, b.steps);
        }
    }

    #[test]
    fn into_parts_round_trips_through_with_schedulers() {
        let spec = spec();
        let class_set = classes(&spec);
        let mut multi = MultiScheduler::train(spec, class_set, tiny()).unwrap();
        let view = ClusterView::default();
        let batch = [PendingArrival {
            id: QueryId(0),
            template: TemplateId(0),
            arrival: Millis::ZERO,
        }];
        let before = multi
            .plan_arrivals(TenantId(0), &view, &batch, Millis::ZERO)
            .unwrap();

        // Split, reassemble, and replan: the round trip preserves the
        // schedulers (including their caches) bit for bit.
        let (spec_handle, class_set, schedulers, config) = multi.into_parts();
        let mut rebuilt =
            MultiScheduler::with_schedulers(class_set, schedulers, config.clone()).unwrap();
        assert!(rebuilt.spec_handle().ptr_eq(&spec_handle));
        assert_eq!(rebuilt.config().reuse, config.reuse);
        let after = rebuilt
            .plan_arrivals(TenantId(0), &view, &batch, Millis::ZERO)
            .unwrap();
        assert_eq!(before.steps, after.steps);
        assert!(
            !after.retrained,
            "the trained base model survived the round trip"
        );
    }

    #[test]
    fn oracle_planner_works_per_class() {
        let spec = spec();
        let class_set = classes(&spec);
        let config = OnlineConfig {
            planner: Planner::Optimal,
            ..tiny()
        };
        let mut multi = MultiScheduler::train(spec, class_set, config).unwrap();
        let batch = [PendingArrival {
            id: QueryId(0),
            template: TemplateId(0),
            arrival: Millis::ZERO,
        }];
        let plan = multi
            .plan_arrivals(TenantId(1), &ClusterView::default(), &batch, Millis::ZERO)
            .unwrap();
        assert!(!plan.steps.is_empty());
    }
}
