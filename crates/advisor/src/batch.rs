//! Tree-driven schedule generation (§4.5, §6.2).
//!
//! Given a trained decision tree, scheduling a batch is a loop: extract the
//! features of the current partial-schedule vertex, descend the tree, apply
//! the suggested action, repeat until every query is placed — `O(h·n)`
//! overall, which is what lets WiSeDB schedule 30k-query batches in about a
//! second (Figure 17).
//!
//! A learned tree can suggest an action that is invalid at the current
//! vertex (assign a depleted or unsupported template, rent a VM while the
//! last one is still empty). The paper's parse procedure implicitly steps
//! around these; we make the guard explicit and deterministic:
//!
//! 1. an invalid `Place(t)` falls back to the *cheapest* valid placement
//!    (by placement-edge weight, Eq. 2);
//! 2. if no placement is valid (fresh VM supporting nothing that remains,
//!    or no VM yet), a VM is rented — the suggested type if valid, else the
//!    type offering the cheapest next placement.
//!
//! Each iteration either places a query or rents a VM that immediately
//! receives one, so the loop terminates after at most `2n` iterations.

use wisedb_core::{
    CoreResult, Money, PerformanceGoal, Placement, QueryId, Schedule, VmInstance, Workload,
    WorkloadSpec,
};
use wisedb_learn::{DecisionTree, FeatureSchema};
use wisedb_search::{CanonicalOrder, Decision, SearchState};

/// How a single scheduling step was decided — for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepSource {
    /// The tree's suggestion was valid and applied as-is.
    Model,
    /// The tree's suggestion was invalid; the guard substituted an action.
    Fallback,
}

/// The decision sequence produced for a batch, with provenance.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Decisions in application order.
    pub decisions: Vec<(Decision, StepSource)>,
    /// Fraction of decisions taken directly from the model.
    pub model_fraction: f64,
}

/// Runs the tree from `initial` until no queries remain, returning the
/// decision sequence. `initial` is normally the empty start vertex; online
/// scheduling seeds it with the currently open VM (§6.3).
///
/// The executor enforces the same canonical-SPT discipline the training
/// paths obeyed (when the goal admits it): the model only ever saw vertices
/// whose open-VM queue is in canonical order, so letting runtime stray off
/// that manifold would feed the tree feature combinations it never trained
/// on. Off-order suggestions are handled by the guard instead.
pub fn plan_with_tree(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    schema: &FeatureSchema,
    tree: &DecisionTree,
    initial: SearchState,
) -> BatchPlan {
    let canonical = CanonicalOrder::for_goal(spec, goal);
    let mut state = initial;
    let mut decisions = Vec::new();
    let mut from_model = 0usize;
    while !state.is_goal() {
        let features = schema.extract(spec, goal, &state);
        let suggested = Decision::from_label(tree.predict(&features), spec.num_templates());
        let (decision, source) = if is_applicable(spec, goal, &state, canonical.as_ref(), suggested)
        {
            (suggested, StepSource::Model)
        } else {
            (
                fallback_decision(spec, goal, canonical.as_ref(), &state),
                StepSource::Fallback,
            )
        };
        let (next, _) = state
            .apply(spec, goal, decision)
            .expect("guarded decisions are always applicable");
        if source == StepSource::Model {
            from_model += 1;
        }
        decisions.push((decision, source));
        state = next;
    }
    let model_fraction = if decisions.is_empty() {
        1.0
    } else {
        from_model as f64 / decisions.len() as f64
    };
    BatchPlan {
        decisions,
        model_fraction,
    }
}

/// A decision is applicable if the reduced graph offers it, it keeps the
/// open VM's queue canonically ordered (when the reduction is active),
/// it is not a provably dominated placement, and renting a VM would
/// actually help (the type supports a remaining template).
fn is_applicable(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    state: &SearchState,
    canonical: Option<&CanonicalOrder>,
    decision: Decision,
) -> bool {
    if !state.is_valid(spec, decision) {
        return false;
    }
    match decision {
        Decision::Place(t) => {
            canonical.map(|c| c.allows(state, t)).unwrap_or(true)
                && !placement_is_dominated(spec, goal, state, t)
        }
        Decision::CreateVm(v) => spec
            .template_ids()
            .any(|t| state.unassigned[t.index()] > 0 && spec.latency(t, v).is_some()),
    }
}

/// Emmons-style dominance for deadline goals: in a minimum-cost schedule no
/// query's *own* violation exceeds the start-up fee plus whatever violation
/// it would suffer alone on a fresh VM — otherwise moving it to a fresh VM
/// strictly improves the schedule (its penalty vanishes, every query behind
/// it only gets earlier, and monotone goals never charge for being early).
/// Optimal training paths therefore never contain such placements; a tree
/// that suggests one is extrapolating outside its training manifold, so the
/// executor routes it to the guard instead.
fn placement_is_dominated(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    state: &SearchState,
    t: wisedb_core::TemplateId,
) -> bool {
    let Some(last) = &state.last_vm else {
        return false;
    };
    let Some(exec) = spec.latency(t, last.vm_type) else {
        return false;
    };
    let completion = last.wait + exec;
    let min_startup = spec
        .vm_types()
        .iter()
        .map(|v| v.startup_cost)
        .min_by(Money::total_cmp)
        .unwrap_or(Money::ZERO);
    let rate = goal.rate();

    let deadline = match goal {
        PerformanceGoal::MaxLatency { deadline, .. } => *deadline,
        PerformanceGoal::PerQuery { deadlines, .. } => {
            let Some(d) = deadlines.get(t.index()).copied() else {
                return false;
            };
            d
        }
        PerformanceGoal::AverageLatency { target, rate } => {
            // Mean-goal variant of the movement argument: once the batch
            // mean is past the target, relocating a query waiting `w` to a
            // fresh VM refunds `rate·w/n` of penalty for one start-up fee,
            // so optimal schedules never queue long waits behind an
            // already-blown mean.
            let wisedb_core::PenaltyTracker::Average { sum_ms, count } = &state.tracker else {
                return false;
            };
            let new_sum = *sum_ms + completion.as_millis() as u128;
            let new_count = *count + 1;
            let mean = wisedb_core::Millis::from_millis((new_sum / new_count as u128) as u64);
            if mean <= *target {
                return false;
            }
            let n_total = (*count + state.remaining() as u64).max(1);
            let refund = rate.for_violation(last.wait) / n_total as f64;
            return refund > min_startup + Money::from_dollars(1e-12);
        }
        // Percentile goals ride within their allowance; no per-query rule.
        PerformanceGoal::Percentile { .. } => return false,
    };
    let own_violation = completion.saturating_sub(deadline);
    if own_violation.is_zero() {
        return false;
    }
    let fresh_violation = exec.saturating_sub(deadline);
    rate.for_violation(own_violation)
        > min_startup + rate.for_violation(fresh_violation) + Money::from_dollars(1e-12)
}

/// The deterministic guard: a one-step greedy over the reduced graph's
/// out-edges. Placements are priced by their edge weight (Eq. 2); renting
/// is priced by the start-up fee plus the cheapest placement the fresh VM
/// would then offer — so a placement that incurs a large penalty loses to
/// opening a new VM, exactly like the optimal paths the model was trained
/// on.
fn fallback_decision(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    canonical: Option<&CanonicalOrder>,
    state: &SearchState,
) -> Decision {
    let mut best: Option<(Decision, Money)> = None;
    let consider = |d: Decision, w: Money, best: &mut Option<(Decision, Money)>| {
        if best
            .as_ref()
            .map(|(_, bw)| w.total_cmp(bw).is_lt())
            .unwrap_or(true)
        {
            *best = Some((d, w));
        }
    };
    for t in spec.template_ids() {
        let d = Decision::Place(t);
        if !is_applicable(spec, goal, state, canonical, d) {
            continue;
        }
        if let Some(w) = state.edge_weight(spec, goal, d) {
            consider(d, w, &mut best);
        }
    }
    for v in spec.vm_type_ids() {
        let d = Decision::CreateVm(v);
        if !is_applicable(spec, goal, state, canonical, d) {
            continue;
        }
        let (fresh, startup) = state
            .apply(spec, goal, d)
            .expect("applicable decisions apply");
        let cheapest_next = spec
            .template_ids()
            .filter_map(|t| fresh.edge_weight(spec, goal, Decision::Place(t)))
            .min_by(Money::total_cmp)
            .unwrap_or(Money::ZERO);
        consider(d, startup + cheapest_next, &mut best);
    }
    best.map(|(d, _)| d)
        .expect("a validated spec always offers a decision")
}

/// Schedules a whole batch from scratch: plans with the tree and replays
/// the decisions into a concrete [`Schedule`] with real query ids.
pub fn schedule_batch(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    schema: &FeatureSchema,
    tree: &DecisionTree,
    workload: &Workload,
) -> CoreResult<(Schedule, BatchPlan)> {
    workload.validate_against(spec)?;
    let counts: Vec<u16> = workload
        .template_counts(spec.num_templates())
        .into_iter()
        .map(|c| c as u16)
        .collect();
    let initial = SearchState::initial(counts, goal);
    let plan = plan_with_tree(spec, goal, schema, tree, initial);

    // Hand out concrete query ids per template, in workload order.
    let mut by_template: Vec<std::collections::VecDeque<QueryId>> =
        vec![Default::default(); spec.num_templates()];
    for q in workload.queries() {
        by_template[q.template.index()].push_back(q.id);
    }
    let mut schedule = Schedule::empty();
    for (decision, _) in &plan.decisions {
        match *decision {
            Decision::CreateVm(v) => schedule.vms.push(VmInstance::new(v)),
            Decision::Place(t) => {
                let id = by_template[t.index()]
                    .pop_front()
                    .expect("plan places exactly the workload's queries");
                schedule
                    .vms
                    .last_mut()
                    .expect("plans always rent before placing")
                    .queue
                    .push(Placement {
                        query: id,
                        template: t,
                    });
            }
        }
    }
    Ok((schedule, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{Millis, PenaltyRate, TemplateId, VmType, VmTypeId};
    use wisedb_learn::{Dataset, TreeParams};
    use wisedb_search::AStarSearcher;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn goal() -> PerformanceGoal {
        PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        }
    }

    fn trained_tree(spec: &WorkloadSpec, goal: &PerformanceGoal) -> (FeatureSchema, DecisionTree) {
        // Train on optimal paths of a few small workloads.
        let mut paths = Vec::new();
        for counts in [[1u32, 1], [2, 1], [1, 2], [2, 2], [0, 2], [2, 0], [1, 3]] {
            let w = Workload::from_counts(&counts);
            paths.push(AStarSearcher::new(spec, goal).solve(&w).unwrap());
        }
        let ds = Dataset::from_paths(spec, goal, &paths);
        let tree = DecisionTree::train(&ds, &TreeParams::default());
        (ds.schema, tree)
    }

    #[test]
    fn scheduled_batches_are_complete() {
        let spec = spec();
        let goal = goal();
        let (schema, tree) = trained_tree(&spec, &goal);
        for counts in [[3u32, 5], [10, 0], [0, 10], [7, 7]] {
            let w = Workload::from_counts(&counts);
            let (schedule, _) = schedule_batch(&spec, &goal, &schema, &tree, &w).unwrap();
            schedule.validate_complete(&w).unwrap();
        }
    }

    #[test]
    fn model_decisions_dominate_on_in_distribution_batches() {
        let spec = spec();
        let goal = goal();
        let (schema, tree) = trained_tree(&spec, &goal);
        let w = Workload::from_counts(&[4, 4]);
        let (_, plan) = schedule_batch(&spec, &goal, &schema, &tree, &w).unwrap();
        assert!(
            plan.model_fraction > 0.5,
            "fallback dominated: {}",
            plan.model_fraction
        );
    }

    #[test]
    fn learned_schedules_track_optimal_cost() {
        let spec = spec();
        let goal = goal();
        let (schema, tree) = trained_tree(&spec, &goal);
        let w = Workload::from_counts(&[3, 3]);
        let (schedule, _) = schedule_batch(&spec, &goal, &schema, &tree, &w).unwrap();
        let model_cost = wisedb_core::total_cost(&spec, &goal, &schedule).unwrap();
        let optimal = AStarSearcher::new(&spec, &goal).solve(&w).unwrap().cost;
        // Within 25% of optimal on this toy spec (the paper reports ≤ 8%
        // on the full setup; the tiny training set here is far cruder).
        assert!(
            model_cost.as_dollars() <= optimal.as_dollars() * 1.25 + 1e-9,
            "model {model_cost} vs optimal {optimal}"
        );
    }

    #[test]
    fn empty_workload_yields_empty_schedule() {
        let spec = spec();
        let goal = goal();
        let (schema, tree) = trained_tree(&spec, &goal);
        let (schedule, plan) =
            schedule_batch(&spec, &goal, &schema, &tree, &Workload::empty()).unwrap();
        assert_eq!(schedule.num_vms(), 0);
        assert!(plan.decisions.is_empty());
        assert_eq!(plan.model_fraction, 1.0);
    }

    /// A malicious tree that always answers the same action never wedges
    /// the executor: guards keep the schedule progressing and complete.
    #[test]
    fn degenerate_trees_cannot_wedge_the_executor() {
        let spec = spec();
        let goal = goal();
        let schema = FeatureSchema::for_spec(&spec);
        // Build a one-leaf tree that always says "place T1".
        let rows = vec![vec![0.0; schema.num_features()]];
        let labels = vec![Decision::Place(TemplateId(0)).label(2)];
        let ds = Dataset {
            schema,
            rows,
            labels,
        };
        let tree = DecisionTree::train(
            &ds,
            &TreeParams {
                max_depth: 0,
                ..TreeParams::default()
            },
        );
        // A batch with no T1 at all: every step must fall back, and the
        // result must still be a valid complete schedule.
        let w = Workload::from_counts(&[0, 6]);
        let (schedule, plan) = schedule_batch(&spec, &goal, &schema, &tree, &w).unwrap();
        schedule.validate_complete(&w).unwrap();
        assert!(plan.model_fraction < 1.0);
        // T2's 1-minute deadline forces one VM per query.
        assert_eq!(schedule.num_vms(), 6);
    }

    #[test]
    fn multi_type_fallback_prefers_economical_vm() {
        // Two types; the template runs identically on both, small is half
        // price: the fallback VM choice must pick the small type.
        let spec = WorkloadSpec::new(
            vec![wisedb_core::QueryTemplate::uniform(
                "T1",
                vec![Millis::from_mins(1), Millis::from_mins(1)],
            )],
            vec![VmType::t2_medium(), VmType::t2_small()],
        )
        .unwrap();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(1),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let state = SearchState::initial(vec![1], &goal);
        let d = fallback_decision(&spec, &goal, None, &state);
        assert_eq!(d, Decision::CreateVm(VmTypeId(1)));
    }
}
