//! Non-preemptive online scheduling (§6.3).
//!
//! Online scheduling is a chain of batch problems: when query `q` arrives at
//! time `t`, every query that has *not started executing* is rescheduled
//! together with `q`. Two wrinkles distinguish it from a fresh batch:
//!
//! 1. **Waited queries age.** A query that arrived at `t_y` has already
//!    waited `t − t_y`; scheduling treats it as a "new" template whose
//!    latency is inflated by that wait, so deadline math stays correct
//!    (§6.3's augmented template set).
//! 2. **The open VM.** The most recently provisioned VM may still be busy;
//!    the plan starts from a vertex whose `wait-time` reflects that backlog
//!    (the paper's Figure 8 walk-through: `q₂` is placed right behind the
//!    running `q₁`).
//!
//! Retraining a model on every arrival is expensive, so the two §6.3.1
//! optimizations apply:
//!
//! * **Reuse** — models are cached by the batch's quantized age signature
//!   (the ω mapping): two batches whose waits agree within the latency
//!   predictor's error share a model.
//! * **Shift** — for linearly shiftable goals (max, per-query), a batch that
//!   waited ω is scheduled by the *base* model's goal tightened by ω,
//!   derived via adaptive retraining (§5) instead of training from scratch.
//!   Mixed-age batches use the oldest wait, a conservative tightening.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use wisedb_core::{
    CoreResult, GoalHandle, Millis, Money, PerformanceGoal, QueryId, QueryLatency, QueryTemplate,
    SpecHandle, TemplateId, VmTypeId, WorkloadSpec,
};
use wisedb_search::{AStarSearcher, Decision, LastVm, SearchConfig, SearchState};

use crate::batch::plan_with_tree;
use crate::model::{DecisionModel, ModelConfig, ModelGenerator, TrainingArtifacts};

/// Which planner schedules each online batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Planner {
    /// The learned decision-tree model (WiSeDB proper).
    Model,
    /// A* on each batch — the "optimal scheduler" comparator of Figure 18.
    Optimal,
}

/// Online scheduling configuration.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Enable the model-reuse cache (ω mapping).
    pub reuse: bool,
    /// Enable linear shifting for shiftable goals.
    pub shift: bool,
    /// Who plans each batch.
    pub planner: Planner,
    /// Training configuration for the base model and any retraining.
    pub training: ModelConfig,
    /// Age quantization: waits within one quantum share a model (the paper
    /// ties this to the latency predictor's error).
    pub age_quantum: Millis,
    /// A* limits for [`Planner::Optimal`].
    pub oracle_search: SearchConfig,
    /// Capacity of each model/view cache (Reuse, Shift, augmented views),
    /// in entries; the least-recently-used entry is evicted beyond it.
    /// `0` means unbounded — the pre-eviction behaviour, which leaks: the
    /// key space (distinct sorted aged (template, bucket) sets) is
    /// combinatorial, so a long-lived service at a fine
    /// [`age_quantum`](Self::age_quantum) accumulates one model per ageing
    /// pattern forever.
    pub cache_capacity: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            reuse: true,
            shift: true,
            planner: Planner::Model,
            training: ModelConfig::fast(),
            age_quantum: Millis::from_millis(250),
            oracle_search: SearchConfig {
                node_limit: 200_000,
                ..SearchConfig::default()
            },
            // Large enough that goal-scale workloads (tens of distinct
            // ageing patterns) never evict — bounded is purely a leak
            // guard, not a behaviour change.
            cache_capacity: 512,
        }
    }
}

impl OnlineConfig {
    /// Selects a [`wisedb_search::SearchStrategy`] for **every** solve this
    /// scheduler performs: the per-arrival oracle replans
    /// ([`Planner::Optimal`]) and any (re)training solves. The per-arrival
    /// replan budget stays whatever
    /// [`oracle_search`](OnlineConfig::oracle_search)`.node_limit` says —
    /// an inexact strategy makes that budget a bounded-suboptimality
    /// guarantee instead of a silent fallback.
    pub fn with_strategy(mut self, strategy: wisedb_search::SearchStrategy) -> Self {
        self.oracle_search.strategy = strategy;
        self.training.search.strategy = strategy;
        self
    }
}

/// A small deterministic LRU map: `get` bumps recency, `insert` evicts the
/// least-recently-used entry once the map exceeds its capacity. Eviction
/// scans for the minimum logical timestamp — O(len), fine at the few-
/// hundred-entry capacities the online caches use — and is deterministic
/// (timestamps are unique), so cached-model behaviour replays exactly
/// across runs.
#[derive(Debug, Clone)]
struct LruCache<K, V> {
    map: HashMap<K, (u64, V)>,
    clock: u64,
    /// `0` = unbounded.
    capacity: usize,
}

impl<K: std::hash::Hash + Eq + Clone, V> LruCache<K, V> {
    fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            clock: 0,
            capacity,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Looks up and marks the entry as most recently used.
    fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: std::hash::Hash + Eq + ?Sized,
    {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|(stamp, value)| {
            *stamp = clock;
            &*value
        })
    }

    /// Looks up without touching recency (no `&mut` borrow of the map's
    /// values — what the planner uses after a `get`/`insert` settled
    /// recency, so the returned reference can outlive later shared reads).
    fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: std::hash::Hash + Eq + ?Sized,
    {
        self.map.get(key).map(|(_, value)| value)
    }

    /// Inserts as most recently used, evicting the LRU entry if full.
    fn insert(&mut self, key: K, value: V) {
        self.clock += 1;
        self.map.insert(key, (self.clock, value));
        if self.capacity > 0 && self.map.len() > self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
    }
}

pub use wisedb_core::ArrivingQuery;

/// Where and when one query ended up running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// The query (ids follow stream order).
    pub query: QueryId,
    /// Its (base) template.
    pub template: TemplateId,
    /// Index of the VM that ran it, in provisioning order.
    pub vm_index: usize,
    /// Arrival time.
    pub arrival: Millis,
    /// Execution start.
    pub start: Millis,
    /// Execution completion.
    pub finish: Millis,
}

/// The result of replaying an online stream.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Per-query outcomes in stream order.
    pub outcomes: Vec<OnlineOutcome>,
    /// VM types provisioned, in order.
    pub vm_types: Vec<VmTypeId>,
    /// Wall-clock scheduling overhead per arrival (model selection +
    /// retraining + planning) — the Figure 19 metric.
    pub overhead_secs: Vec<f64>,
    /// Batch size at each arrival.
    pub batch_sizes: Vec<usize>,
    /// Full model retrainings performed.
    pub retrains: usize,
    /// Model-cache hits (Reuse).
    pub cache_hits: usize,
    /// Shift-derived models built (Shift).
    pub shifts: usize,
}

impl OnlineReport {
    /// Realized SLA latencies (completion − arrival).
    pub fn latencies(&self) -> Vec<QueryLatency> {
        self.outcomes
            .iter()
            .map(|o| QueryLatency {
                query: o.query,
                template: o.template,
                latency: o.finish.saturating_sub(o.arrival),
            })
            .collect()
    }

    /// Total cost: VM start-ups + busy-time rental + SLA penalty — the
    /// online analogue of Eq. 1.
    pub fn total_cost(&self, spec: &WorkloadSpec, goal: &PerformanceGoal) -> CoreResult<Money> {
        let mut cost = Money::ZERO;
        let mut busy: Vec<Millis> = vec![Millis::ZERO; self.vm_types.len()];
        for o in &self.outcomes {
            busy[o.vm_index] += o.finish - o.start;
        }
        for (v, &vm_type) in self.vm_types.iter().enumerate() {
            let vt = spec.vm_type(vm_type)?;
            cost += vt.startup_cost;
            cost += vt.runtime_cost(busy[v]);
        }
        cost += goal.penalty(&self.latencies());
        Ok(cost)
    }

    /// Mean scheduling overhead per arrival, in seconds.
    pub fn mean_overhead_secs(&self) -> f64 {
        if self.overhead_secs.is_empty() {
            return 0.0;
        }
        self.overhead_secs.iter().sum::<f64>() / self.overhead_secs.len() as f64
    }
}

/// A VM in the online simulation.
struct OnlineVm {
    vm_type: VmTypeId,
    /// When all committed (started) work finishes.
    avail: Millis,
    /// Templates of committed queries still running at the current time
    /// (for the open VM's feature vector).
    running: Vec<(TemplateId, Millis /* finish */)>,
    /// Assigned but not yet started: (query id, base template, time of the
    /// batch that assigned it — a query cannot start earlier).
    tentative: Vec<(QueryId, TemplateId, Millis)>,
    /// Released VMs accept no further work.
    released: bool,
}

/// An unstarted query awaiting (re)scheduling: the new arrival plus every
/// recalled tentative query form one batch (§6.3's augmented workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingArrival {
    /// Stream-assigned query id.
    pub id: QueryId,
    /// Base template (never an aged alias).
    pub template: TemplateId,
    /// Original arrival time.
    pub arrival: Millis,
}

pub use wisedb_core::OpenVmView;

/// What the planner needs to know about the cluster at scheduling time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterView {
    /// VMs rented so far (provisioning order count, including released).
    pub vms_rented: u32,
    /// The open VM, if one can still accept work.
    pub open_vm: Option<OpenVmView>,
}

/// One step of a batch plan. Steps apply **in order**: assignments target
/// the open VM until the first [`PlannedStep::Provision`], then the most
/// recently provisioned VM (the scheduling graph's "last VM" semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedStep {
    /// Rent a new VM of this type; it becomes the assignment target.
    Provision(VmTypeId),
    /// Queue this pending query on the current target VM.
    Assign {
        /// The query being placed.
        query: QueryId,
        /// Its base template.
        template: TemplateId,
    },
}

/// A planned batch plus what producing it cost the model machinery.
#[derive(Debug, Clone)]
pub struct ArrivalPlan {
    /// Provision/assign steps, in application order.
    pub steps: Vec<PlannedStep>,
    /// A full model retraining happened (the Figure 19 "None" arm, or an
    /// aged batch missing the Reuse cache).
    pub retrained: bool,
    /// A cached model (Reuse or Shift) served the batch.
    pub cache_hit: bool,
    /// A new Shift-derived model was built via adaptive retraining.
    pub shifted: bool,
}

/// An augmented scheduling view for a batch with waited queries: the base
/// spec extended with aged template variants and the goal extended to
/// match, both behind shared handles, plus the (base template, age bucket)
/// → scheduling-template mapping. Cached per aged-pair signature, so a
/// warm online loop builds it **once** per distinct ageing pattern instead
/// of deep-cloning the spec and goal on every aged arrival. Cloning a view
/// is three reference bumps.
#[derive(Debug, Clone)]
struct AugmentedView {
    spec: SpecHandle,
    goal: GoalHandle,
    /// (base template, bucket) → scheduling template id.
    map: Arc<HashMap<(u32, u64), TemplateId>>,
}

/// The online scheduler: owns the base model, the ω-keyed model cache, and
/// the shift ladder.
pub struct OnlineScheduler {
    spec: SpecHandle,
    goal: GoalHandle,
    config: OnlineConfig,
    base: DecisionModel,
    generator: ModelGenerator,
    artifacts: TrainingArtifacts,
    /// Reuse cache (the ω mapping): aged (template, age-bucket) pairs →
    /// model. Keyed identically to `augment_cache` — the trained model is
    /// a pure function of the augmented (spec, goal), which fresh
    /// templates do not affect, so batches differing only in fresh
    /// arrivals share one model. LRU-bounded by
    /// [`OnlineConfig::cache_capacity`].
    reuse_cache: LruCache<Vec<(u32, u64)>, DecisionModel>,
    /// Shift cache: ω bucket → model for the shifted goal (LRU-bounded).
    shift_cache: LruCache<u64, DecisionModel>,
    /// Augmented spec/goal views keyed by the batch's aged (template,
    /// bucket) pairs — shared by the Reuse-cached, no-reuse, and oracle
    /// aged paths (LRU-bounded).
    augment_cache: LruCache<Vec<(u32, u64)>, AugmentedView>,
}

impl OnlineScheduler {
    /// Trains the base model and prepares the caches.
    pub fn train(
        spec: impl Into<SpecHandle>,
        goal: impl Into<GoalHandle>,
        config: OnlineConfig,
    ) -> CoreResult<Self> {
        let spec = spec.into();
        let goal = goal.into();
        let generator = ModelGenerator::new(spec.clone(), goal.clone(), config.training.clone());
        let (base, artifacts) = generator.train_with_artifacts()?;
        let capacity = config.cache_capacity;
        Ok(OnlineScheduler {
            spec,
            goal,
            config,
            base,
            generator,
            artifacts,
            reuse_cache: LruCache::new(capacity),
            shift_cache: LruCache::new(capacity),
            augment_cache: LruCache::new(capacity),
        })
    }

    /// Wraps an existing base model (e.g. the one trained for batch use).
    pub fn with_model(
        base: DecisionModel,
        artifacts: TrainingArtifacts,
        config: OnlineConfig,
    ) -> Self {
        let spec = base.spec_handle().clone();
        let goal = base.goal_handle().clone();
        let generator = ModelGenerator::new(spec.clone(), goal.clone(), config.training.clone());
        let capacity = config.cache_capacity;
        OnlineScheduler {
            spec,
            goal,
            config,
            base,
            generator,
            artifacts,
            reuse_cache: LruCache::new(capacity),
            shift_cache: LruCache::new(capacity),
            augment_cache: LruCache::new(capacity),
        }
    }

    /// The base model.
    pub fn base_model(&self) -> &DecisionModel {
        &self.base
    }

    /// A handle to the solve cache the base model was trained through.
    /// Hand it to [`ModelGenerator::retrain_from`] (e.g. on a background
    /// trainer thread) so a model refresh skips every sample signature
    /// already solved for this scheduler.
    pub fn warm_start(&self) -> crate::warm::WarmStart {
        self.artifacts.warm_start()
    }

    /// Current sizes of the (Reuse, Shift, augmented-view) caches — each
    /// is held at [`OnlineConfig::cache_capacity`] by LRU eviction.
    pub fn cache_sizes(&self) -> (usize, usize, usize) {
        (
            self.reuse_cache.len(),
            self.shift_cache.len(),
            self.augment_cache.len(),
        )
    }

    /// Replays a stream of arrivals through the online scheduling loop.
    pub fn run(&mut self, stream: &[ArrivingQuery]) -> CoreResult<OnlineReport> {
        let mut vms: Vec<OnlineVm> = Vec::new();
        let mut report = OnlineReport {
            outcomes: Vec::with_capacity(stream.len()),
            vm_types: Vec::new(),
            overhead_secs: Vec::with_capacity(stream.len()),
            batch_sizes: Vec::with_capacity(stream.len()),
            retrains: 0,
            cache_hits: 0,
            shifts: 0,
        };
        let mut outcomes: Vec<Option<OnlineOutcome>> = vec![None; stream.len()];

        let arrival_times: Vec<Millis> = stream.iter().map(|a| a.arrival).collect();
        for (i, arriving) in stream.iter().enumerate() {
            let now = arriving.arrival;
            advance_to(&mut vms, now, &self.spec, &mut outcomes, &arrival_times);

            // Collect the batch: the new query plus everything unstarted.
            let mut batch: Vec<PendingArrival> = vec![PendingArrival {
                id: QueryId(i as u32),
                template: arriving.template,
                arrival: now,
            }];
            for vm in vms.iter_mut() {
                for (qid, template, _) in vm.tentative.drain(..) {
                    batch.push(PendingArrival {
                        id: qid,
                        template,
                        arrival: stream[qid.index()].arrival,
                    });
                }
            }
            report.batch_sizes.push(batch.len());

            let started = Instant::now();
            self.plan_batch(&mut vms, &mut report, &batch, now)?;
            report.overhead_secs.push(started.elapsed().as_secs_f64());
        }

        // Drain: run everything still tentative.
        advance_to(
            &mut vms,
            Millis::from_millis(u64::MAX),
            &self.spec,
            &mut outcomes,
            &arrival_times,
        );
        report.vm_types = vms.iter().map(|vm| vm.vm_type).collect();
        report.outcomes = outcomes
            .into_iter()
            .map(|o| o.expect("every arrived query is eventually executed"))
            .collect();
        Ok(report)
    }

    /// Plans one batch and records tentative assignments on the VMs.
    fn plan_batch(
        &mut self,
        vms: &mut Vec<OnlineVm>,
        report: &mut OnlineReport,
        batch: &[PendingArrival],
        now: Millis,
    ) -> CoreResult<()> {
        let view = ClusterView {
            vms_rented: vms.len() as u32,
            open_vm: vms.last().filter(|vm| !vm.released).map(|vm| OpenVmView {
                vm_type: vm.vm_type,
                running: vm.running.iter().map(|&(t, _)| t).collect(),
                backlog: vm.avail.saturating_sub(now),
            }),
        };
        let plan = self.plan_arrivals(&view, batch, now)?;
        report.retrains += plan.retrained as usize;
        report.cache_hits += plan.cache_hit as usize;
        report.shifts += plan.shifted as usize;
        for step in plan.steps {
            match step {
                PlannedStep::Provision(v) => {
                    vms.push(OnlineVm {
                        vm_type: v,
                        avail: now,
                        running: Vec::new(),
                        tentative: Vec::new(),
                        released: false,
                    });
                }
                PlannedStep::Assign { query, template } => {
                    let vm = vms
                        .last_mut()
                        .expect("plans rent before placing when no VM is open");
                    vm.tentative.push((query, template, now));
                }
            }
        }
        Ok(())
    }

    /// Plans one online batch against an externally owned cluster (§6.3):
    /// the incremental entry point the streaming runtime drives.
    ///
    /// `batch` is the new arrival plus every recalled unstarted query;
    /// `view` describes the cluster at `now` (the open VM seeds the initial
    /// search vertex). The returned steps apply in order — see
    /// [`PlannedStep`]. Model selection (Reuse/Shift caches, aged-template
    /// augmentation, full retrains) is identical to [`run`](Self::run)'s.
    pub fn plan_arrivals(
        &mut self,
        view: &ClusterView,
        batch: &[PendingArrival],
        now: Millis,
    ) -> CoreResult<ArrivalPlan> {
        let quantum = self.config.age_quantum.as_millis().max(1);
        let bucket_of = |q: &PendingArrival| age_bucket(now.saturating_sub(q.arrival), quantum);
        let max_bucket = batch.iter().map(bucket_of).max().unwrap_or(0);
        let all_fresh = max_bucket == 0;
        let shiftable = self.goal.is_linearly_shiftable();
        #[allow(unused_assignments)] // only the aged no-reuse arm assigns it
        let mut owned_model: Option<DecisionModel> = None;
        let (mut retrained, mut cache_hit, mut shifted) = (false, false, false);

        // -- Choose the scheduling view: (spec, goal, model, template map) --
        enum View<'m> {
            Base(&'m DecisionModel),
            Shifted(&'m DecisionModel),
            Aged {
                model: &'m DecisionModel,
                view: AugmentedView,
            },
        }

        let model_view = if all_fresh {
            View::Base(&self.base)
        } else if self.config.shift && shiftable && self.config.planner == Planner::Model {
            let shift = Millis::from_millis(max_bucket * quantum);
            if self.shift_cache.get(&max_bucket).is_some() {
                cache_hit = true;
            } else {
                let shifted_goal = self
                    .goal
                    .shift(shift)
                    .expect("shiftable goals always shift");
                let model = self
                    .generator
                    .retrain_tightened(&shifted_goal, &mut self.artifacts)?;
                self.shift_cache.insert(max_bucket, model);
                shifted = true;
            }
            View::Shifted(
                self.shift_cache
                    .peek(&max_bucket)
                    .expect("hit or just inserted"),
            )
        } else {
            // Aged-template path (with optional Reuse caching). Both
            // caches key on the batch's aged (template, bucket) pairs —
            // one cached view and one trained model per distinct ageing
            // pattern; a warm loop reaches here without touching the
            // spec's latency tables.
            let pairs = aged_pairs(batch, now, quantum);
            let view = self.augmented_view(&pairs, quantum)?;
            let use_cache = self.config.reuse && self.config.planner == Planner::Model;
            let model_ref: &DecisionModel = if use_cache {
                if self.reuse_cache.get(&pairs).is_some() {
                    cache_hit = true;
                } else {
                    let generator = ModelGenerator::new(
                        view.spec.clone(),
                        view.goal.clone(),
                        self.config.training.clone(),
                    );
                    let model = generator.train()?;
                    retrained = true;
                    self.reuse_cache.insert(pairs.clone(), model);
                }
                self.reuse_cache.peek(&pairs).expect("hit or just inserted")
            } else {
                // Reuse disabled: pay for a fresh model every time (the
                // "None" arm of Figure 19).
                let generator = ModelGenerator::new(
                    view.spec.clone(),
                    view.goal.clone(),
                    self.config.training.clone(),
                );
                retrained = true;
                owned_model = Some(generator.train()?);
                owned_model.as_ref().expect("just assigned")
            };
            View::Aged {
                model: model_ref,
                view,
            }
        };

        let (sched_spec, sched_goal, model): (&WorkloadSpec, &PerformanceGoal, &DecisionModel) =
            match &model_view {
                View::Base(m) => (&self.spec, &self.goal, m),
                View::Shifted(m) => (&self.spec, m.goal(), m),
                View::Aged { model, view } => (&view.spec, &view.goal, model),
            };

        // Map each batch query to its scheduling-template id.
        let sched_template = |q: &PendingArrival| -> TemplateId {
            match &model_view {
                View::Base(_) | View::Shifted(_) => q.template,
                View::Aged { view, .. } => {
                    let bucket = bucket_of(q);
                    if bucket == 0 {
                        q.template
                    } else {
                        view.map[&(q.template.0, bucket)]
                    }
                }
            }
        };

        // -- Build the initial vertex: counts + the open VM (if any). --
        let mut counts = vec![0u16; sched_spec.num_templates()];
        let mut by_template: HashMap<TemplateId, Vec<PendingArrival>> = HashMap::new();
        for q in batch {
            let st = sched_template(q);
            counts[st.index()] += 1;
            by_template.entry(st).or_default().push(*q);
        }
        // FIFO by arrival within a template.
        for queue in by_template.values_mut() {
            queue.sort_by_key(|q| (q.arrival, q.id));
            queue.reverse(); // pop from the back
        }

        let mut state = SearchState::initial(counts, sched_goal);
        if let Some(open) = &view.open_vm {
            state.last_vm = Some(LastVm::seeded(
                open.vm_type,
                open.running.clone(),
                open.backlog,
            ));
            state.vms_rented = view.vms_rented;
        }

        // -- Plan. --
        let decisions: Vec<Decision> = match self.config.planner {
            Planner::Model => {
                plan_with_tree(sched_spec, sched_goal, model.schema(), model.tree(), state)
                    .decisions
                    .into_iter()
                    .map(|(d, _)| d)
                    .collect()
            }
            Planner::Optimal => {
                AStarSearcher::new(sched_spec, sched_goal)
                    .with_config(self.config.oracle_search.clone())
                    .plan_from(state)?
                    .decisions
            }
        };

        // -- Resolve decisions to concrete (query, VM) steps. --
        let steps = decisions
            .into_iter()
            .map(|d| match d {
                Decision::CreateVm(v) => PlannedStep::Provision(v),
                Decision::Place(st) => {
                    let q = by_template
                        .get_mut(&st)
                        .and_then(|v| v.pop())
                        .expect("plan places exactly the batch's queries");
                    PlannedStep::Assign {
                        query: q.id,
                        template: q.template,
                    }
                }
            })
            .collect();
        Ok(ArrivalPlan {
            steps,
            retrained,
            cache_hit,
            shifted,
        })
    }

    /// The augmented scheduling view for a batch with waited queries: one
    /// extra template per (base template, age bucket > 0), its latency
    /// inflated by the (quantized) wait so queue math includes time already
    /// spent waiting. Per-query goals give the aged variant its base
    /// template's deadline; other goals are template-free.
    ///
    /// Views are pure functions of the batch's aged (template, bucket)
    /// pairs, so they are cached: a repeated ageing pattern returns the
    /// shared handles without cloning the spec or goal.
    fn augmented_view(&mut self, pairs: &[(u32, u64)], quantum: u64) -> CoreResult<AugmentedView> {
        if let Some(view) = self.augment_cache.get(pairs) {
            return Ok(view.clone());
        }

        let mut spec = (*self.spec).clone();
        let mut goal = (*self.goal).clone();
        let mut map: HashMap<(u32, u64), TemplateId> = HashMap::new();
        for &(base_t, bucket) in pairs {
            let base = self.spec.template(TemplateId(base_t))?;
            let wait = Millis::from_millis(bucket * quantum);
            let aged = QueryTemplate {
                name: format!("{}+{}", base.name, wait),
                latencies: base.latencies.iter().map(|l| l.map(|l| l + wait)).collect(),
            };
            let id = TemplateId(spec.num_templates() as u32);
            spec = spec.with_extra_template(aged)?;
            if let PerformanceGoal::PerQuery { deadlines, .. } = &*self.goal {
                goal = goal.with_extra_deadline(deadlines[base_t as usize]);
            }
            map.insert((base_t, bucket), id);
        }
        let view = AugmentedView {
            spec: SpecHandle::new(spec),
            goal: GoalHandle::new(goal),
            map: Arc::new(map),
        };
        self.augment_cache.insert(pairs.to_vec(), view.clone());
        Ok(view)
    }
}

/// The ω quantization: which age bucket a wait of `age` falls in
/// (rounded to the nearest multiple of `quantum`). The single source of
/// truth — the augmented-view map is indexed by buckets produced here.
fn age_bucket(age: Millis, quantum: u64) -> u64 {
    (age.as_millis() + quantum / 2) / quantum
}

/// The batch's distinct aged (template, age-bucket) pairs, sorted — the
/// shared cache key of the augmented views and the Reuse model cache.
fn aged_pairs(batch: &[PendingArrival], now: Millis, quantum: u64) -> Vec<(u32, u64)> {
    let mut pairs: Vec<(u32, u64)> = batch
        .iter()
        .filter_map(|q| {
            let bucket = age_bucket(now.saturating_sub(q.arrival), quantum);
            (bucket > 0).then_some((q.template.0, bucket))
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Starts tentative queries whose start time is strictly before `now`,
/// recording their outcomes; releases VMs that fall idle with no work.
fn advance_to(
    vms: &mut [OnlineVm],
    now: Millis,
    spec: &WorkloadSpec,
    outcomes: &mut [Option<OnlineOutcome>],
    arrivals: &[Millis],
) {
    for (v, vm) in vms.iter_mut().enumerate() {
        // Retire finished committed work from the running set.
        vm.running.retain(|&(_, finish)| finish > now);
        let mut i = 0;
        while i < vm.tentative.len() {
            let (qid, template, assigned_at) = vm.tentative[i];
            // A query starts when the VM is free, but never before the
            // batch that assigned it.
            let start = vm.avail.max(assigned_at);
            if start >= now {
                break;
            }
            let exec = spec
                .latency(template, vm.vm_type)
                .expect("online placements are validated at scheduling time");
            let finish = start + exec;
            outcomes[qid.index()] = Some(OnlineOutcome {
                query: qid,
                template,
                vm_index: v,
                arrival: arrivals[qid.index()],
                start,
                finish,
            });
            vm.avail = finish;
            if finish > now {
                vm.running.push((template, finish));
            }
            i += 1;
        }
        vm.tentative.drain(..i);
        if vm.tentative.is_empty() && vm.avail <= now {
            vm.released = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{GoalKind, VmType};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn tiny_training() -> ModelConfig {
        ModelConfig {
            num_samples: 40,
            sample_size: 5,
            seed: 3,
            ..ModelConfig::fast()
        }
    }

    fn stream(templates: &[u32], gap: Millis) -> Vec<ArrivingQuery> {
        templates
            .iter()
            .enumerate()
            .map(|(i, &t)| ArrivingQuery::new(TemplateId(t), gap * i as u64))
            .collect()
    }

    fn run_with(
        goal_kind: GoalKind,
        config: OnlineConfig,
        templates: &[u32],
        gap: Millis,
    ) -> (OnlineReport, WorkloadSpec, PerformanceGoal) {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(goal_kind, &spec).unwrap();
        let mut scheduler = OnlineScheduler::train(spec.clone(), goal.clone(), config).unwrap();
        let report = scheduler.run(&stream(templates, gap)).unwrap();
        (report, spec, goal)
    }

    fn patched_cost(report: &OnlineReport, spec: &WorkloadSpec, goal: &PerformanceGoal) -> Money {
        report.total_cost(spec, goal).unwrap()
    }

    #[test]
    fn every_query_is_executed_once() {
        let (report, spec, goal) = run_with(
            GoalKind::MaxLatency,
            OnlineConfig {
                training: tiny_training(),
                ..OnlineConfig::default()
            },
            &[0, 1, 0, 1, 1, 0],
            Millis::from_secs(30),
        );
        assert_eq!(report.outcomes.len(), 6);
        // Starts never precede... the batch's scheduling time; and finishes
        // are consistent with execution times.
        for o in &report.outcomes {
            assert!(o.finish > o.start);
        }
        assert!(patched_cost(&report, &spec, &goal) > Money::ZERO);
        assert_eq!(report.batch_sizes.len(), 6);
        assert_eq!(report.overhead_secs.len(), 6);
    }

    #[test]
    fn slow_arrivals_reuse_few_vms() {
        // With 10-minute gaps every query finds an empty cluster: each
        // batch is a single fresh query, so no retraining is ever needed
        // and the cost approaches sequential execution.
        let (report, _, _) = run_with(
            GoalKind::MaxLatency,
            OnlineConfig {
                training: tiny_training(),
                ..OnlineConfig::default()
            },
            &[0, 0, 0],
            Millis::from_mins(10),
        );
        assert_eq!(report.retrains, 0);
        assert_eq!(report.shifts, 0);
        // Queries never overlap; each runs immediately on arrival.
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.start, Millis::from_mins(10) * i as u64);
        }
    }

    #[test]
    fn burst_arrivals_stack_or_spread_depending_on_goal() {
        // All queries arrive within a second; the scheduler must use the
        // open VM's wait-time to decide between stacking and new VMs.
        let (report, spec, goal) = run_with(
            GoalKind::PerQuery,
            OnlineConfig {
                training: tiny_training(),
                ..OnlineConfig::default()
            },
            &[1, 1, 1, 1],
            Millis::from_millis(100),
        );
        // T2's deadline is 3 minutes (3x60s); stacking four 1-minute
        // queries would blow it for the last one, so at least 2 VMs.
        assert!(report.vm_types.len() >= 2, "vms={}", report.vm_types.len());
        let cost = patched_cost(&report, &spec, &goal);
        assert!(cost > Money::ZERO);
    }

    #[test]
    fn shift_cache_kicks_in_for_shiftable_goals() {
        let (report, _, _) = run_with(
            GoalKind::MaxLatency,
            OnlineConfig {
                training: tiny_training(),
                reuse: false,
                shift: true,
                ..OnlineConfig::default()
            },
            &[0, 0, 0, 0, 0, 0],
            Millis::from_secs(10),
        );
        // Aged batches exist (queries wait behind each other), and the
        // shift path must have served them: zero full retrains.
        assert_eq!(report.retrains, 0);
        assert!(report.shifts > 0 || report.batch_sizes.iter().all(|&b| b == 1));
    }

    #[test]
    fn reuse_never_trains_more_than_no_reuse() {
        // Average latency is not linearly shiftable, so aged batches go
        // through the (cached) aged-template path. With reuse on, the
        // retrain count can only drop, and the cost must stay comparable.
        let templates = [1u32, 1, 1, 1, 1, 1, 1, 1];
        let gap = Millis::from_secs(20);
        let (with_reuse, spec, goal) = run_with(
            GoalKind::AverageLatency,
            OnlineConfig {
                training: tiny_training(),
                reuse: true,
                shift: false,
                ..OnlineConfig::default()
            },
            &templates,
            gap,
        );
        let (without, _, _) = run_with(
            GoalKind::AverageLatency,
            OnlineConfig {
                training: tiny_training(),
                reuse: false,
                shift: false,
                ..OnlineConfig::default()
            },
            &templates,
            gap,
        );
        assert!(
            with_reuse.retrains <= without.retrains,
            "reuse={} vs none={}",
            with_reuse.retrains,
            without.retrains
        );
        assert_eq!(without.cache_hits, 0);
        let c_reuse = patched_cost(&with_reuse, &spec, &goal);
        let c_none = patched_cost(&without, &spec, &goal);
        assert!(c_reuse.as_dollars() <= c_none.as_dollars() * 2.0 + 0.01);
    }

    #[test]
    fn optimal_planner_completes_and_is_no_worse() {
        let templates = [0u32, 1, 1, 0];
        let gap = Millis::from_secs(45);
        let (model_report, spec, goal) = run_with(
            GoalKind::MaxLatency,
            OnlineConfig {
                training: tiny_training(),
                ..OnlineConfig::default()
            },
            &templates,
            gap,
        );
        let (oracle_report, _, _) = run_with(
            GoalKind::MaxLatency,
            OnlineConfig {
                training: tiny_training(),
                planner: Planner::Optimal,
                ..OnlineConfig::default()
            },
            &templates,
            gap,
        );
        let c_model = patched_cost(&model_report, &spec, &goal);
        let c_oracle = patched_cost(&oracle_report, &spec, &goal);
        assert_eq!(oracle_report.outcomes.len(), templates.len());
        // The oracle plans each batch optimally; the model should be close
        // (and can tie). Generous bound: within 50% on this toy setup.
        assert!(
            c_model.as_dollars() <= c_oracle.as_dollars() * 1.5 + 1e-6,
            "model {c_model} vs oracle {c_oracle}"
        );
    }

    #[test]
    fn lru_cache_bounds_and_recency() {
        let mut lru: LruCache<u64, u64> = LruCache::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.len(), 2);
        // Touch 1 so 2 becomes the LRU entry, then overflow.
        assert_eq!(lru.get(&1), Some(&10));
        lru.insert(3, 30);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.peek(&2), None, "LRU entry evicted");
        assert_eq!(lru.peek(&1), Some(&10));
        assert_eq!(lru.peek(&3), Some(&30));
        // Capacity 0 = unbounded.
        let mut open: LruCache<u64, u64> = LruCache::new(0);
        for i in 0..100 {
            open.insert(i, i);
        }
        assert_eq!(open.len(), 100);
    }

    #[test]
    fn bounded_caches_hold_capacity_and_keep_the_reuse_win() {
        // A long stream at a *fine* age quantum: nearly every aged batch
        // has a fresh ageing signature, so an unbounded Reuse cache grows
        // with the stream (the ROADMAP leak). The LRU must pin all three
        // caches at capacity while repeated signatures still hit.
        let spec = spec();
        // Average latency is not shiftable => the aged-template (Reuse)
        // path, the cache-hungry one.
        let goal = PerformanceGoal::paper_default(GoalKind::AverageLatency, &spec).unwrap();
        let capacity = 4;
        let mut scheduler = OnlineScheduler::train(
            spec,
            goal,
            OnlineConfig {
                training: tiny_training(),
                age_quantum: Millis::from_millis(50),
                cache_capacity: capacity,
                shift: false,
                ..OnlineConfig::default()
            },
        )
        .unwrap();
        // 40 arrivals of a 1-minute template every 2 s: deep queues, many
        // distinct wait patterns.
        let report = scheduler
            .run(&stream(&[1; 40], Millis::from_secs(2)))
            .unwrap();
        let (reuse, shift, augment) = scheduler.cache_sizes();
        assert!(reuse <= capacity, "reuse cache leaked: {reuse}");
        assert!(shift <= capacity, "shift cache leaked: {shift}");
        assert!(augment <= capacity, "augment cache leaked: {augment}");
        // The Figure 19 win survives bounding: repeated signatures hit.
        assert!(report.cache_hits > 0, "bounded cache must still hit");
        assert_eq!(report.outcomes.len(), 40, "stream completes");
    }

    #[test]
    fn arrivals_recorded_in_outcomes() {
        let spec = spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut scheduler = OnlineScheduler::train(
            spec.clone(),
            goal.clone(),
            OnlineConfig {
                training: tiny_training(),
                ..OnlineConfig::default()
            },
        )
        .unwrap();
        let arrivals = stream(&[0, 1], Millis::from_secs(30));
        let report = scheduler.run(&arrivals).unwrap();
        for (o, a) in report.outcomes.iter().zip(&arrivals) {
            assert_eq!(o.arrival, a.arrival);
            assert!(o.start >= o.arrival);
        }
    }
}
