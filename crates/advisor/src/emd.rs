//! One-dimensional Earth Mover's Distance.
//!
//! Strategy recommendation (§6.1) compares per-template average-cost
//! profiles of adjacent performance goals and repeatedly drops the pair with
//! the smallest EMD, so the surviving strategies represent genuinely
//! different cost/performance trade-offs. For distributions over an ordered
//! 1-D support (template indices), EMD has the classic closed form: the sum
//! of absolute differences of the cumulative distributions.

/// Earth Mover's Distance between two non-negative profiles over the same
/// ordered support. Profiles are normalized to unit mass first (an
/// all-zero profile is treated as uniform), so the result reflects *shape*
/// differences in how cost concentrates across templates.
///
/// # Panics
/// Panics if the profiles have different lengths or contain negatives.
pub fn emd_1d(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "EMD requires equal-length profiles");
    assert!(
        a.iter().chain(b.iter()).all(|&x| x >= 0.0 && x.is_finite()),
        "EMD profiles must be finite and non-negative"
    );
    if a.is_empty() {
        return 0.0;
    }
    let na = normalize(a);
    let nb = normalize(b);
    let mut cum_a = 0.0;
    let mut cum_b = 0.0;
    let mut emd = 0.0;
    for i in 0..a.len() {
        cum_a += na[i];
        cum_b += nb[i];
        emd += (cum_a - cum_b).abs();
    }
    emd
}

fn normalize(xs: &[f64]) -> Vec<f64> {
    let total: f64 = xs.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / xs.len() as f64; xs.len()];
    }
    xs.iter().map(|&x| x / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_profiles_have_zero_distance() {
        assert_eq!(emd_1d(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
        // Scale-invariant (profiles are normalized).
        assert_eq!(emd_1d(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]), 0.0);
    }

    #[test]
    fn distance_grows_with_displacement() {
        // Moving mass one slot costs less than moving it across the line.
        let base = [1.0, 0.0, 0.0, 0.0];
        let near = [0.0, 1.0, 0.0, 0.0];
        let far = [0.0, 0.0, 0.0, 1.0];
        assert!(emd_1d(&base, &near) < emd_1d(&base, &far));
        assert!((emd_1d(&base, &near) - 1.0).abs() < 1e-12);
        assert!((emd_1d(&base, &far) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn metric_axioms_on_samples() {
        let p = [0.2, 0.3, 0.5];
        let q = [0.5, 0.3, 0.2];
        let r = [0.1, 0.8, 0.1];
        // Symmetry.
        assert!((emd_1d(&p, &q) - emd_1d(&q, &p)).abs() < 1e-12);
        // Triangle inequality.
        assert!(emd_1d(&p, &r) <= emd_1d(&p, &q) + emd_1d(&q, &r) + 1e-12);
        // Identity of indiscernibles.
        assert_eq!(emd_1d(&p, &p), 0.0);
        assert!(emd_1d(&p, &q) > 0.0);
    }

    #[test]
    fn zero_profiles_are_uniform() {
        // An all-zero profile compares as uniform, not as NaN.
        let z = [0.0, 0.0, 0.0, 0.0];
        let u = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(emd_1d(&z, &u), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        emd_1d(&[1.0], &[1.0, 2.0]);
    }
}
