//! Decision-model generation (§4): sample → solve → extract → learn.
//!
//! The [`ModelGenerator`] draws `N` uniform sample workloads of `m` queries
//! (§4.2), computes each one's optimal schedule on the scheduling graph
//! (§4.3), extracts `(features, decision)` pairs from the optimal paths
//! (§4.4), and trains the decision-tree strategy (§4.5). The resulting
//! [`DecisionModel`] is the artifact applications keep: it schedules any
//! number of future batches without further search.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use wisedb_core::{
    CoreResult, GoalHandle, GoalKind, PerformanceGoal, Schedule, SpecHandle, TemplateId, Workload,
    WorkloadSpec,
};
use wisedb_learn::{Dataset, DecisionTree, FeatureSchema, TreeParams};
use wisedb_search::{
    AdaptiveSearcher, HeuristicMemo, OptimalSchedule, SearchConfig, SearchStrategy, Solver,
};

use crate::batch::{self, BatchPlan};
use crate::warm::{Lookup, Signature, SolveCache, SolvedEntry, WarmStart, DEFAULT_CACHE_CAPACITY};

/// Training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of sample workloads `N` (paper default: 3000).
    pub num_samples: usize,
    /// Queries per sample `m` (paper default: 18).
    pub sample_size: usize,
    /// RNG seed for workload sampling.
    pub seed: u64,
    /// Decision-tree induction parameters.
    pub tree: TreeParams,
    /// Solver configuration for the per-sample searches: the expansion
    /// budget **and** the [`SearchStrategy`] — training may safely use
    /// beam/anytime solves (the learned model needs near-optimal decision
    /// paths, not proofs), while exact remains the default so committed
    /// models stay bit-identical. Serialized with the model config, so a
    /// persisted training setup records which solver produced it; absent
    /// fields default to the exact strategy.
    #[serde(default)]
    pub search: SearchConfig,
    /// Pick the per-sample solver by goal kind: percentile goals — whose
    /// exact searches blow any practical node budget (the state space
    /// distinguishes every completion multiset) — train with the
    /// certified-bound `anytime` strategy instead of exact A*, at the same
    /// node budget. Only applies while [`search`](ModelConfig::search)
    /// still holds the default exact strategy; an explicit
    /// [`with_strategy`](ModelConfig::with_strategy) choice always wins.
    /// Serde-defaults to `false`, so persisted legacy configurations keep
    /// deserializing to plain exact training.
    #[serde(default)]
    pub goal_aware_strategy: bool,
    /// Capacity of the per-generator [`SolveCache`] in distinct sample
    /// signatures (`0` means [`DEFAULT_CACHE_CAPACITY`]). Training
    /// canonicalizes every sample to its template multiset and memoizes the
    /// solve, so duplicate samples — within one `train` call or across the
    /// retrains a drift loop performs via
    /// [`ModelGenerator::retrain_from`] — never re-run A*. Serde-defaults
    /// to `0`, so persisted legacy configurations keep deserializing.
    #[serde(default)]
    pub cache_capacity: usize,
    /// Worker threads for the per-sample A* solves, which are
    /// embarrassingly parallel. `0` means one per available CPU core; `1`
    /// forces the serial path. Results are merged in sample order, so the
    /// trained model is **bit-identical** across thread counts for a fixed
    /// seed (asserted by tests).
    #[serde(skip, default)]
    pub threads: usize,
}

impl ModelConfig {
    /// The paper's training configuration: N = 3000 samples of m = 18.
    pub fn paper() -> Self {
        ModelConfig {
            num_samples: 3000,
            sample_size: 18,
            seed: 0x5EED_0001,
            tree: TreeParams::default(),
            search: SearchConfig::default(),
            goal_aware_strategy: true,
            cache_capacity: 0,
            threads: 0,
        }
    }

    /// A lighter configuration for tests, examples, and online retraining:
    /// fewer, smaller samples — trains in tens of milliseconds while
    /// retaining the qualitative behaviour.
    pub fn fast() -> Self {
        ModelConfig {
            num_samples: 150,
            sample_size: 9,
            seed: 0x5EED_0002,
            tree: TreeParams::default(),
            search: SearchConfig::default(),
            goal_aware_strategy: true,
            cache_capacity: 0,
            threads: 0,
        }
    }

    /// Overrides the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the solve-cache capacity (see
    /// [`cache_capacity`](ModelConfig::cache_capacity)).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the solver worker-pool size (see
    /// [`threads`](ModelConfig::threads)).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the per-sample solver strategy (see
    /// [`search`](ModelConfig::search)). An explicit choice disables the
    /// [`goal_aware_strategy`](ModelConfig::goal_aware_strategy) default.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.search.strategy = strategy;
        self.goal_aware_strategy = false;
        self
    }

    /// The search configuration the training solves for `goal` actually
    /// use: the configured one, except that with
    /// [`goal_aware_strategy`](ModelConfig::goal_aware_strategy) set and
    /// the strategy still at its exact default, percentile goals swap in
    /// the anytime strategy (same node budget, certified bound).
    pub fn search_for(&self, goal: &PerformanceGoal) -> SearchConfig {
        let mut search = self.search.clone();
        if self.goal_aware_strategy
            && search.strategy == SearchStrategy::Exact
            && goal.kind() == GoalKind::Percentile
        {
            search.strategy = SearchStrategy::anytime();
        }
        search
    }

    /// The effective solve-cache capacity (`0` resolves to the default).
    pub fn resolved_cache_capacity(&self) -> usize {
        if self.cache_capacity == 0 {
            DEFAULT_CACHE_CAPACITY
        } else {
            self.cache_capacity
        }
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig::paper()
    }
}

/// What training produced, beyond the tree itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingStats {
    /// Sample workloads solved.
    pub num_samples: usize,
    /// Training rows (one per optimal decision).
    pub num_rows: usize,
    /// Resubstitution accuracy of the tree on its training set.
    pub training_accuracy: f64,
    /// Tree height (the `h` in the `O(h·n)` scheduling bound).
    pub tree_depth: usize,
    /// Leaves in the tree.
    pub tree_leaves: usize,
    /// Total A* expansions across all samples.
    pub search_expanded: u64,
    /// Distinct A* solves this run actually performed (samples minus
    /// cache/dedup hits). Serde-defaults to `0` for legacy payloads.
    #[serde(default)]
    pub solves: u64,
    /// Samples served from the solve cache (earlier runs) or by within-run
    /// signature dedup. Serde-defaults to `0` for legacy payloads.
    #[serde(default)]
    pub cache_hits: u64,
    /// Wall-clock training time in seconds.
    pub training_secs: f64,
}

/// A trained workload-management strategy for one (spec, goal) pair. The
/// spec and goal are held by shared handle, so cloning a model — or handing
/// its spec to the scheduler, cluster, and metrics layers — never copies
/// the latency tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionModel {
    spec: SpecHandle,
    goal: GoalHandle,
    schema: FeatureSchema,
    tree: DecisionTree,
    stats: TrainingStats,
}

impl DecisionModel {
    /// The workload specification the model was trained for.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// A shareable handle to the model's spec (an `Arc` bump to clone).
    pub fn spec_handle(&self) -> &SpecHandle {
        &self.spec
    }

    /// The performance goal the model was trained for.
    pub fn goal(&self) -> &PerformanceGoal {
        &self.goal
    }

    /// A shareable handle to the model's goal (an `Arc` bump to clone).
    pub fn goal_handle(&self) -> &GoalHandle {
        &self.goal
    }

    /// The underlying decision tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// The feature layout.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Training statistics.
    pub fn stats(&self) -> &TrainingStats {
        &self.stats
    }

    /// Schedules a batch workload with the learned strategy (§6.2).
    pub fn schedule_batch(&self, workload: &Workload) -> CoreResult<Schedule> {
        Ok(self.schedule_batch_with_plan(workload)?.0)
    }

    /// Like [`schedule_batch`](Self::schedule_batch), also returning the
    /// decision provenance (model vs guard).
    pub fn schedule_batch_with_plan(
        &self,
        workload: &Workload,
    ) -> CoreResult<(Schedule, BatchPlan)> {
        batch::schedule_batch(&self.spec, &self.goal, &self.schema, &self.tree, workload)
    }

    /// Maps a query of unknown template to the known template with the
    /// closest reference latency (§6.2's rule for unseen queries).
    pub fn nearest_template(&self, predicted_latency: wisedb_core::Millis) -> TemplateId {
        let mut best = TemplateId(0);
        let mut best_diff = u64::MAX;
        for t in self.spec.template_ids() {
            let reference = self
                .spec
                .latency(t, wisedb_core::VmTypeId(0))
                .or_else(|| self.spec.template(t).ok().and_then(|q| q.min_latency()))
                .unwrap_or(wisedb_core::Millis::ZERO);
            let diff = reference
                .as_millis()
                .abs_diff(predicted_latency.as_millis());
            if diff < best_diff {
                best_diff = diff;
                best = t;
            }
        }
        best
    }

    /// Serializes the model to JSON (for persistence; the paper notes a
    /// trained model is a few-MB artifact reusable across workloads).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Restores a model serialized with [`to_json`](Self::to_json).
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Renders the decision tree in the paper's Figure 6 vocabulary.
    pub fn render_tree(&self) -> String {
        let schema = self.schema;
        let nt = schema.num_templates;
        self.tree
            .render(&move |f| schema.feature_name(f), &move |l| {
                wisedb_search::Decision::from_label(l, nt).to_string()
            })
    }
}

/// Everything kept from training that adaptive re-training (§5) can reuse:
/// the sample workloads, each one's adaptive searcher, and the solve cache
/// the run was trained through. Cloning copies the warmed search memos but
/// *shares* the solve cache, so independent consumers (e.g. several online
/// schedulers over one base model) each keep adapting cheaply while warm
/// retrains keep deduplicating against one signature store.
#[derive(Clone)]
pub struct TrainingArtifacts {
    /// The sampled training workloads.
    pub samples: Vec<Workload>,
    /// Per-sample adaptive searchers (possibly still pending
    /// materialization from the cached solve entries).
    searchers: SearcherState,
    /// The solve cache this model was trained through.
    warm: WarmStart,
}

/// Per-sample searcher storage. Training stores the solve entries and
/// defers building each sample's [`AdaptiveSearcher`] memo until a
/// tightening retrain actually needs it — most artifacts never retrain,
/// and the rebuild is exactly the memo the sample's own solve would have
/// left behind, so materialization is invisible to results.
#[derive(Clone)]
enum SearcherState {
    /// Materialized per-sample searchers.
    Ready(Vec<AdaptiveSearcher>),
    /// The cached pipeline's per-sample solve entries, one per sample.
    Pending(Vec<Arc<SolvedEntry>>),
}

impl TrainingArtifacts {
    /// A handle to the solve cache this model was trained through; feed it
    /// to [`ModelGenerator::retrain_from`] to skip every already-solved
    /// sample signature.
    pub fn warm_start(&self) -> WarmStart {
        self.warm.clone()
    }

    /// The sample workloads alongside their (materialized) adaptive
    /// searchers, for the tightening-retrain solve loop.
    fn parts_mut(&mut self) -> (&[Workload], &mut [AdaptiveSearcher]) {
        if let SearcherState::Pending(entries) = &self.searchers {
            self.searchers = SearcherState::Ready(
                entries
                    .iter()
                    .map(|e| AdaptiveSearcher::warmed(e.searcher_memo()))
                    .collect(),
            );
        }
        match &mut self.searchers {
            SearcherState::Ready(s) => (&self.samples, s),
            SearcherState::Pending(_) => unreachable!("materialized above"),
        }
    }
}

/// Trains [`DecisionModel`]s for a (spec, goal) pair.
pub struct ModelGenerator {
    spec: SpecHandle,
    goal: GoalHandle,
    config: ModelConfig,
}

impl ModelGenerator {
    /// Creates a generator. The goal is validated against the spec. Accepts
    /// an owned [`WorkloadSpec`]/[`PerformanceGoal`] or existing handles —
    /// handing in handles makes construction free of deep copies.
    pub fn new(
        spec: impl Into<SpecHandle>,
        goal: impl Into<GoalHandle>,
        config: ModelConfig,
    ) -> Self {
        ModelGenerator {
            spec: spec.into(),
            goal: goal.into(),
            config,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Draws the training sample workloads (uniform direct sampling, §4.2).
    pub fn sample_workloads(&self) -> Vec<Workload> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let nt = self.spec.num_templates() as u32;
        (0..self.config.num_samples)
            .map(|_| {
                Workload::from_templates(
                    (0..self.config.sample_size).map(|_| TemplateId(rng.gen_range(0..nt))),
                )
            })
            .collect()
    }

    /// Trains a model (discarding reuse artifacts).
    pub fn train(&self) -> CoreResult<DecisionModel> {
        Ok(self.train_with_artifacts()?.0)
    }

    /// Trains a model and returns the artifacts needed to re-train cheaply
    /// for stricter goals (strategy recommendation, online shifting) or
    /// for the same goal ([`retrain_from`](Self::retrain_from)).
    pub fn train_with_artifacts(&self) -> CoreResult<(DecisionModel, TrainingArtifacts)> {
        self.train_cached(self.fresh_cache())
    }

    /// Re-trains reusing a previous run's solve cache (§4 warm path): only
    /// sample signatures absent from the cache are A*-solved; everything
    /// else — within-run duplicates included — is served from the memoized
    /// entries. On an unchanged template mix the retrain performs **zero**
    /// solves and returns a bit-identical model.
    ///
    /// If the warm start was built for a different `(spec, goal, search)`
    /// triple it is silently replaced with a fresh cache — a stale warm
    /// start can cost a cold retrain, never a wrong model.
    pub fn retrain_from(&self, warm: &WarmStart) -> CoreResult<(DecisionModel, TrainingArtifacts)> {
        let search = self.config.search_for(&self.goal);
        let cache = if warm.cache().matches(&self.spec, &self.goal, &search) {
            Arc::clone(warm.cache())
        } else {
            self.fresh_cache()
        };
        self.train_cached(cache)
    }

    /// An empty solve cache for this generator's search problem.
    fn fresh_cache(&self) -> Arc<SolveCache> {
        Arc::new(SolveCache::new(
            self.spec.clone(),
            self.goal.clone(),
            self.config.search_for(&self.goal),
            self.config.resolved_cache_capacity(),
        ))
    }

    /// The shared train pipeline: sample, resolve signatures against the
    /// cache, solve only the missing ones (against the run's frozen memo
    /// snapshot), then assemble the dataset and per-sample searchers in
    /// sample order. See [`crate::warm`] for why the result is
    /// bit-identical to the historical uncached pipeline.
    fn train_cached(
        &self,
        cache: Arc<SolveCache>,
    ) -> CoreResult<(DecisionModel, TrainingArtifacts)> {
        let mut span = wisedb_obs::span("train.model");
        self.goal.validate_against(&self.spec)?;
        let schema = FeatureSchema::for_spec(&self.spec);
        let samples = self.sample_workloads();
        let start = Instant::now();

        let sigs: Vec<Signature> = samples
            .iter()
            .map(|w| w.template_counts(self.spec.num_templates()))
            .collect();
        let plan = cache.plan(sigs);
        let solved = self.solve_signatures(&schema, &plan.missing, &plan.frozen)?;
        let hits = (samples.len() - plan.missing.len()) as u64;
        cache.commit(plan.missing, solved.clone(), hits);

        let mut dataset = Dataset::new(schema);
        let mut searchers = Vec::with_capacity(samples.len());
        let mut expanded = 0u64;
        let mut first_solve_spent = vec![false; solved.len()];
        for (workload, lookup) in samples.iter().zip(&plan.lookups) {
            let (entry, hit) = match lookup {
                Lookup::Hit(entry) => (entry, true),
                Lookup::Missing(i) => {
                    let duplicate = first_solve_spent[*i];
                    first_solve_spent[*i] = true;
                    (&solved[*i], duplicate)
                }
            };
            let mut sample_span = wisedb_obs::span("train.sample");
            if sample_span.recording() {
                sample_span.attr_u64("queries", workload.len() as u64);
                sample_span.attr_u64("expanded", entry.stats.expanded);
                sample_span.attr_bool("cache_hit", hit);
            }
            drop(sample_span);
            wisedb_obs::counter_add("wisedb_train_samples_total", 1);
            if hit {
                wisedb_obs::counter_add("wisedb_train_cache_hits_total", 1);
            }
            expanded += entry.stats.expanded;
            dataset.rows.extend(entry.rows.iter().cloned());
            dataset.labels.extend(entry.labels.iter().cloned());
            searchers.push(Arc::clone(entry));
        }

        let solves = solved.len() as u64;
        let model = self.fit_dataset(dataset, samples.len(), expanded, solves, hits, start);
        if span.recording() {
            span.attr_u64("samples", samples.len() as u64);
            span.attr_u64("expanded", expanded);
            span.attr_str("goal", self.goal.kind().name());
            span.attr_u64("cache_hits", hits);
            span.attr_f64("dedup_rate", hits as f64 / (samples.len().max(1)) as f64);
            span.attr_u64("dataset_rows", model.stats.num_rows as u64);
        }
        let warm = WarmStart::new(cache);
        Ok((
            model,
            TrainingArtifacts {
                samples,
                searchers: SearcherState::Pending(searchers),
                warm,
            },
        ))
    }

    /// A*-solves the canonical workload of every missing signature against
    /// the run's frozen memo snapshot, fanning across
    /// [`ModelConfig::threads`] workers. Each solve is a pure function of
    /// `(spec, goal, search, signature, frozen memo)` and results are
    /// merged in signature order, so the output is identical to the serial
    /// loop's regardless of thread count or scheduling.
    fn solve_signatures(
        &self,
        schema: &FeatureSchema,
        sigs: &[Signature],
        frozen: &HeuristicMemo,
    ) -> CoreResult<Vec<Arc<SolvedEntry>>> {
        let requested = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        let threads = requested.clamp(1, sigs.len().max(1));
        let search = self.config.search_for(&self.goal);
        let reuse = self.goal.is_monotone();

        let solve_chunk = |chunk: &[Signature]| -> CoreResult<Vec<Arc<SolvedEntry>>> {
            let mut entries = Vec::with_capacity(chunk.len());
            for sig in chunk {
                let workload = Workload::from_counts(sig);
                let solver = Solver::new(&self.spec, &self.goal).with_config(search.clone());
                let solver = if reuse {
                    solver.with_memo(frozen)
                } else {
                    solver
                };
                let (solved, explored) = solver.solve_with_explored(&workload)?;
                wisedb_obs::counter_add("wisedb_train_solves_total", 1);
                entries.push(Arc::new(SolvedEntry::from_solve(
                    &self.spec, &self.goal, schema, &solved, explored,
                )));
            }
            Ok(entries)
        };

        if threads <= 1 || sigs.is_empty() {
            return solve_chunk(sigs);
        }

        let chunk = sigs.len().div_ceil(threads);
        let results: Vec<CoreResult<Vec<Arc<SolvedEntry>>>> = std::thread::scope(|scope| {
            let solve_chunk = &solve_chunk;
            let handles: Vec<_> = sigs
                .chunks(chunk)
                .map(|c| scope.spawn(move || solve_chunk(c)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    // Surface the worker's own panic, not a stand-in.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut entries = Vec::with_capacity(sigs.len());
        for result in results {
            entries.extend(result?);
        }
        Ok(entries)
    }

    /// Re-trains for a goal **at least as strict** as the one the artifacts
    /// were produced under, reusing each sample's search memo (§5). The
    /// generator's own goal is *not* consulted; `goal` rules.
    pub fn retrain_tightened(
        &self,
        goal: &PerformanceGoal,
        artifacts: &mut TrainingArtifacts,
    ) -> CoreResult<DecisionModel> {
        goal.validate_against(&self.spec)?;
        let start = Instant::now();
        let (samples, searchers) = artifacts.parts_mut();
        let (paths, expanded) = self.solve_samples(goal, samples, searchers)?;
        let generator = ModelGenerator {
            spec: self.spec.clone(),
            goal: GoalHandle::new(goal.clone()),
            config: self.config.clone(),
        };
        Ok(generator.fit_tree(&paths, expanded, start))
    }

    /// Solves every sample workload optimally, fanning the independent
    /// per-sample searches across [`ModelConfig::threads`] workers.
    ///
    /// Each worker owns a contiguous chunk of (workload, searcher) pairs
    /// and results are merged back in sample order, so the output — paths,
    /// expansion counts, and updated searcher memos — is identical to the
    /// serial loop's regardless of thread count or scheduling.
    fn solve_samples(
        &self,
        goal: &PerformanceGoal,
        samples: &[Workload],
        searchers: &mut [AdaptiveSearcher],
    ) -> CoreResult<(Vec<OptimalSchedule>, u64)> {
        let requested = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        let threads = requested.clamp(1, samples.len().max(1));
        let search = self.config.search_for(goal);

        let solve_chunk = |ws: &[Workload],
                           ss: &mut [AdaptiveSearcher]|
         -> CoreResult<(Vec<OptimalSchedule>, u64)> {
            let mut paths = Vec::with_capacity(ws.len());
            let mut expanded = 0u64;
            for (workload, searcher) in ws.iter().zip(ss.iter_mut()) {
                // Per-sample training span: worker threads share the
                // collector through the global sender, and the merge
                // below stays in sample order regardless.
                let mut sample_span = wisedb_obs::span("train.sample");
                let solved = searcher.solve(&self.spec, goal, workload, search.clone())?;
                if sample_span.recording() {
                    sample_span.attr_u64("queries", workload.len() as u64);
                    sample_span.attr_u64("expanded", solved.stats.expanded);
                }
                drop(sample_span);
                wisedb_obs::counter_add("wisedb_train_samples_total", 1);
                expanded += solved.stats.expanded;
                paths.push(solved);
            }
            Ok((paths, expanded))
        };

        if threads == 1 {
            return solve_chunk(samples, searchers);
        }

        let chunk = samples.len().div_ceil(threads);
        let results: Vec<CoreResult<(Vec<OptimalSchedule>, u64)>> = std::thread::scope(|scope| {
            let solve_chunk = &solve_chunk;
            let handles: Vec<_> = samples
                .chunks(chunk)
                .zip(searchers.chunks_mut(chunk))
                .map(|(ws, ss)| scope.spawn(move || solve_chunk(ws, ss)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    // Surface the worker's own panic, not a stand-in.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut paths = Vec::with_capacity(samples.len());
        let mut expanded = 0u64;
        for result in results {
            let (p, e) = result?;
            paths.extend(p);
            expanded += e;
        }
        Ok((paths, expanded))
    }

    /// The uncached fit path (per-sample solves already in hand): used by
    /// [`retrain_tightened`](Self::retrain_tightened), whose per-sample
    /// searcher memos are goal-specific and must not mix with the cache.
    fn fit_tree(
        &self,
        paths: &[OptimalSchedule],
        expanded: u64,
        started: Instant,
    ) -> DecisionModel {
        let dataset = Dataset::from_paths(&self.spec, &self.goal, paths);
        self.fit_dataset(
            dataset,
            paths.len(),
            expanded,
            paths.len() as u64,
            0,
            started,
        )
    }

    fn fit_dataset(
        &self,
        dataset: Dataset,
        num_samples: usize,
        expanded: u64,
        solves: u64,
        cache_hits: u64,
        started: Instant,
    ) -> DecisionModel {
        let tree = DecisionTree::train(&dataset, &self.config.tree);
        let stats = TrainingStats {
            num_samples,
            num_rows: dataset.len(),
            training_accuracy: tree.accuracy(&dataset),
            tree_depth: tree.depth(),
            tree_leaves: tree.num_leaves(),
            search_expanded: expanded,
            solves,
            cache_hits,
            training_secs: started.elapsed().as_secs_f64(),
        };
        DecisionModel {
            spec: self.spec.clone(),
            goal: self.goal.clone(),
            schema: dataset.schema,
            tree,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{total_cost, GoalKind, Millis, VmType};
    use wisedb_search::AStarSearcher;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![
                ("T1", Millis::from_mins(2)),
                ("T2", Millis::from_mins(1)),
                ("T3", Millis::from_mins(3)),
            ],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            num_samples: 60,
            sample_size: 6,
            seed: 7,
            tree: TreeParams::default(),
            search: SearchConfig::default(),
            goal_aware_strategy: true,
            cache_capacity: 0,
            threads: 0,
        }
    }

    #[test]
    fn training_produces_a_usable_model() {
        let spec = small_spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let model = ModelGenerator::new(spec.clone(), goal.clone(), tiny_config())
            .train()
            .unwrap();
        assert_eq!(model.stats().num_samples, 60);
        assert!(model.stats().num_rows >= 60 * 7); // ≥ m+1 decisions each
        assert!(model.stats().training_accuracy > 0.6);
        assert!(model.stats().tree_depth >= 1);

        let w = Workload::from_counts(&[5, 5, 5]);
        let schedule = model.schedule_batch(&w).unwrap();
        schedule.validate_complete(&w).unwrap();
    }

    #[test]
    fn learned_model_is_near_optimal_on_small_batches() {
        let spec = small_spec();
        // A modest (but not minimal) training budget: quality assertions
        // need enough samples for query-interaction patterns to emerge, as
        // §4.2 stresses (the paper uses N = 3000, m = 18).
        let config = ModelConfig {
            num_samples: 250,
            sample_size: 8,
            seed: 7,
            ..ModelConfig::fast()
        };
        for kind in [GoalKind::MaxLatency, GoalKind::PerQuery] {
            let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
            let model = ModelGenerator::new(spec.clone(), goal.clone(), config.clone())
                .train()
                .unwrap();
            let w = Workload::from_counts(&[3, 3, 3]);
            let schedule = model.schedule_batch(&w).unwrap();
            let cost = total_cost(&spec, &goal, &schedule).unwrap();
            let optimal = AStarSearcher::new(&spec, &goal).solve(&w).unwrap().cost;
            assert!(
                cost.as_dollars() <= optimal.as_dollars() * 1.30 + 1e-9,
                "{kind:?}: model {cost} vs optimal {optimal}"
            );
        }
    }

    #[test]
    fn parallel_training_is_bit_identical_to_serial() {
        let spec = small_spec();
        for kind in [GoalKind::MaxLatency, GoalKind::AverageLatency] {
            let goal = PerformanceGoal::paper_default(kind, &spec).unwrap();
            let serial =
                ModelGenerator::new(spec.clone(), goal.clone(), tiny_config().with_threads(1))
                    .train()
                    .unwrap();
            let parallel =
                ModelGenerator::new(spec.clone(), goal.clone(), tiny_config().with_threads(4))
                    .train()
                    .unwrap();
            // The tree, schema, and search work are identical bit for bit;
            // only wall-clock timing may differ.
            assert_eq!(serial.render_tree(), parallel.render_tree(), "{kind:?}");
            assert_eq!(serial.schema(), parallel.schema());
            assert_eq!(
                serial.stats().search_expanded,
                parallel.stats().search_expanded
            );
            assert_eq!(serial.stats().num_rows, parallel.stats().num_rows);
            let w = Workload::from_counts(&[4, 3, 2]);
            assert_eq!(
                serial.schedule_batch(&w).unwrap(),
                parallel.schedule_batch(&w).unwrap()
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let spec = small_spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let g1 = ModelGenerator::new(spec.clone(), goal.clone(), tiny_config());
        let g2 = ModelGenerator::new(spec.clone(), goal.clone(), tiny_config());
        assert_eq!(g1.sample_workloads(), g2.sample_workloads());
        let g3 = ModelGenerator::new(spec, goal, tiny_config().with_seed(99));
        assert_ne!(g1.sample_workloads(), g3.sample_workloads());
    }

    #[test]
    fn retrain_tightened_matches_fresh_training_quality() {
        let spec = small_spec();
        let base = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let generator = ModelGenerator::new(spec.clone(), base.clone(), tiny_config());
        let (_, mut artifacts) = generator.train_with_artifacts().unwrap();

        let tightened = base.tighten_pct(&spec, 0.4);
        let adapted = generator
            .retrain_tightened(&tightened, &mut artifacts)
            .unwrap();
        // A model trained from scratch for the tightened goal.
        let fresh = ModelGenerator::new(spec.clone(), tightened.clone(), tiny_config())
            .train()
            .unwrap();

        // Both models schedule a batch; costs should be comparable (the
        // underlying optimal paths are identical; trees may differ slightly).
        let w = Workload::from_counts(&[4, 4, 4]);
        let c_adapted =
            total_cost(&spec, &tightened, &adapted.schedule_batch(&w).unwrap()).unwrap();
        let c_fresh = total_cost(&spec, &tightened, &fresh.schedule_batch(&w).unwrap()).unwrap();
        assert!(
            c_adapted.as_dollars() <= c_fresh.as_dollars() * 1.3 + 1e-9,
            "adapted {c_adapted} vs fresh {c_fresh}"
        );
        assert_eq!(adapted.goal(), &tightened);
    }

    #[test]
    fn model_serde_round_trip() {
        let spec = small_spec();
        let goal = PerformanceGoal::paper_default(GoalKind::PerQuery, &spec).unwrap();
        let model = ModelGenerator::new(spec, goal, tiny_config())
            .train()
            .unwrap();
        let json = model.to_json().unwrap();
        let back = DecisionModel::from_json(&json).unwrap();
        let w = Workload::from_counts(&[2, 2, 2]);
        assert_eq!(
            back.schedule_batch(&w).unwrap(),
            model.schedule_batch(&w).unwrap()
        );
    }

    #[test]
    fn model_config_serializes_search_strategy() {
        let config = ModelConfig {
            search: SearchConfig {
                node_limit: 9_999,
                strategy: SearchStrategy::Beam { width: 32 },
                ..SearchConfig::default()
            },
            ..tiny_config()
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.search, config.search);
        assert_eq!(back.num_samples, config.num_samples);
        // Legacy payloads without a `search` field default to exact.
        let legacy: ModelConfig =
            serde_json::from_str(&json.replace("\"search\"", "\"search_unused\"")).unwrap();
        assert_eq!(legacy.search, SearchConfig::default());
        // Legacy payloads without `goal_aware_strategy` default to plain
        // exact training for every goal kind.
        let legacy: ModelConfig =
            serde_json::from_str(&json.replace("\"goal_aware_strategy\"", "\"goal_aware_unused\""))
                .unwrap();
        assert!(!legacy.goal_aware_strategy);
    }

    #[test]
    fn goal_aware_default_trains_percentile_with_anytime() {
        let spec = small_spec();
        let config = ModelConfig::fast();
        assert!(config.goal_aware_strategy);
        let percentile = PerformanceGoal::paper_default(GoalKind::Percentile, &spec).unwrap();
        let max_latency = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        // Percentile training swaps in anytime (same node budget)...
        let resolved = config.search_for(&percentile);
        assert_eq!(resolved.strategy, SearchStrategy::anytime());
        assert_eq!(resolved.node_limit, config.search.node_limit);
        // ...monotone goals keep exact...
        assert_eq!(
            config.search_for(&max_latency).strategy,
            SearchStrategy::Exact
        );
        // ...and an explicit strategy choice always wins.
        let explicit = config.with_strategy(SearchStrategy::Beam { width: 8 });
        assert_eq!(
            explicit.search_for(&percentile).strategy,
            SearchStrategy::Beam { width: 8 }
        );
    }

    #[test]
    fn nearest_template_matches_by_latency() {
        let spec = small_spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let model = ModelGenerator::new(spec, goal, tiny_config())
            .train()
            .unwrap();
        // 65s is closest to T2 (60s); 170s closest to T3 (180s).
        assert_eq!(model.nearest_template(Millis::from_secs(65)), TemplateId(1));
        assert_eq!(
            model.nearest_template(Millis::from_secs(170)),
            TemplateId(2)
        );
    }

    #[test]
    fn render_tree_speaks_figure_six() {
        let spec = small_spec();
        let goal = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let model = ModelGenerator::new(spec, goal, tiny_config())
            .train()
            .unwrap();
        let text = model.render_tree();
        assert!(text.contains("assign-") || text.contains("new-"));
    }
}
