//! # wisedb-advisor
//!
//! The WiSeDB advisor proper: everything an application touches.
//!
//! * [`model`] — decision-model generation (§4): sample workloads, solve
//!   them optimally, extract features, train the decision tree; plus model
//!   persistence and adaptive retraining for stricter goals (§5).
//! * [`batch`] — tree-driven batch scheduling with a deterministic guard
//!   for invalid suggestions (§4.5, §6.2).
//! * [`online`] — non-preemptive online scheduling with aged templates,
//!   the open-VM initial vertex, model Reuse, and linear Shift (§6.3),
//!   with LRU-bounded model/view caches.
//! * [`multi`] — tenant SLA classes: per-class decision models multiplexed
//!   on one shared cluster view.
//! * [`strategy`] — the strategy-recommendation ladder with EMD pruning
//!   and per-template cost estimation functions (§6.1).
//! * [`warm`] — the canonical solve cache and shared heuristic memo behind
//!   warm retraining: duplicate sample signatures never re-run A*.
//! * [`baselines`] — FFD / FFI / Pack9, the metric-specific heuristics the
//!   paper compares against (§3, §7.2).
//! * [`emd`] — 1-D Earth Mover's Distance.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod batch;
pub mod emd;
pub mod model;
pub mod multi;
pub mod online;
pub mod strategy;
pub mod warm;

pub use baselines::Heuristic;
pub use batch::{schedule_batch, BatchPlan, StepSource};
pub use emd::emd_1d;
pub use model::{DecisionModel, ModelConfig, ModelGenerator, TrainingArtifacts, TrainingStats};
pub use multi::MultiScheduler;
pub use online::{
    ArrivalPlan, ArrivingQuery, ClusterView, OnlineConfig, OnlineOutcome, OnlineReport,
    OnlineScheduler, OpenVmView, PendingArrival, PlannedStep, Planner,
};
pub use strategy::{
    attribute_costs, CostEstimator, RecommenderConfig, Strategy, StrategyRecommender,
};
pub use warm::{Signature, SolveCache, SolvedEntry, WarmStart, DEFAULT_CACHE_CAPACITY};
