//! The metric-specific heuristics WiSeDB is compared against (§3, §7.2):
//!
//! * **FFD** (first-fit decreasing) — sort by descending latency, place each
//!   query on the first VM where it fits; the classic bin-packing heuristic,
//!   strong for max-latency goals.
//! * **FFI** (first-fit increasing) — ascending order; strong for per-query
//!   and average-latency goals.
//! * **Pack9** — repeatedly emit the nine shortest remaining queries then
//!   the single largest; built to exploit a 90th-percentile goal's allowance
//!   by hiding the most expensive queries in the permitted 10%.
//!
//! "Fits" means *incurs no penalty* (the paper's definition): each goal kind
//! gets an O(1) incremental fit test so these scale to the 5000-query
//! batches of Figure 13. The heuristics place queries on VMs of the
//! reference type (index 0), as in the paper's single-type comparison.

use wisedb_core::{
    CoreResult, Millis, PerformanceGoal, Placement, Query, Schedule, VmInstance, VmTypeId,
    Workload, WorkloadSpec,
};

/// Which baseline heuristic to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// First-fit decreasing by latency.
    FirstFitDecreasing,
    /// First-fit increasing by latency.
    FirstFitIncreasing,
    /// Nine shortest, then the largest, repeatedly.
    Pack9,
}

impl Heuristic {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::FirstFitDecreasing => "FFD",
            Heuristic::FirstFitIncreasing => "FFI",
            Heuristic::Pack9 => "Pack9",
        }
    }

    /// All baselines in the paper's order.
    pub const ALL: [Heuristic; 3] = [
        Heuristic::FirstFitDecreasing,
        Heuristic::FirstFitIncreasing,
        Heuristic::Pack9,
    ];

    /// Schedules `workload` on VMs of type 0 with this heuristic under
    /// `goal`'s fit semantics.
    pub fn schedule(
        self,
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        workload: &Workload,
    ) -> CoreResult<Schedule> {
        workload.validate_against(spec)?;
        let vm_type = VmTypeId(0);
        let latency = |q: &Query| spec.latency(q.template, vm_type).unwrap_or(Millis::ZERO);

        let mut ordered: Vec<Query> = workload.queries().to_vec();
        ordered.sort_by_key(|q| (latency(q), q.id));
        match self {
            Heuristic::FirstFitIncreasing => {}
            Heuristic::FirstFitDecreasing => ordered.reverse(),
            Heuristic::Pack9 => ordered = pack9_order(ordered),
        }

        let mut fit = FitTracker::new(goal, workload.len());
        let mut schedule = Schedule::empty();
        let mut busy: Vec<Millis> = Vec::new();
        for q in ordered {
            let exec = latency(&q);
            let slot = (0..schedule.vms.len())
                .find(|&v| fit.fits(q.template, busy[v] + exec))
                .unwrap_or_else(|| {
                    schedule.vms.push(VmInstance::new(vm_type));
                    busy.push(Millis::ZERO);
                    schedule.vms.len() - 1
                });
            // A brand-new VM may still not "fit" (e.g. an impossible
            // deadline); the query is placed regardless — the heuristics
            // never reject queries, they just pay the penalty.
            schedule.vms[slot].queue.push(Placement {
                query: q.id,
                template: q.template,
            });
            busy[slot] += exec;
            fit.commit(q.template, busy[slot]);
        }
        Ok(schedule)
    }
}

/// Pack9's emission order: 9 shortest remaining, then the largest.
fn pack9_order(ascending: Vec<Query>) -> Vec<Query> {
    let mut out = Vec::with_capacity(ascending.len());
    let mut lo = 0usize;
    let mut hi = ascending.len();
    while lo < hi {
        for _ in 0..9 {
            if lo >= hi {
                break;
            }
            out.push(ascending[lo]);
            lo += 1;
        }
        if lo < hi {
            hi -= 1;
            out.push(ascending[hi]);
        }
    }
    out
}

/// O(1)-per-probe fit tests: "would a query completing at `completion`
/// incur (additional) penalty?"
struct FitTracker<'a> {
    goal: &'a PerformanceGoal,
    total_queries: usize,
    // Average-latency state.
    sum_ms: u128,
    count: u64,
    // Percentile state.
    over_deadline: u64,
}

impl<'a> FitTracker<'a> {
    fn new(goal: &'a PerformanceGoal, total_queries: usize) -> Self {
        FitTracker {
            goal,
            total_queries,
            sum_ms: 0,
            count: 0,
            over_deadline: 0,
        }
    }

    fn fits(&self, template: wisedb_core::TemplateId, completion: Millis) -> bool {
        match self.goal {
            PerformanceGoal::PerQuery { deadlines, .. } => {
                completion
                    <= deadlines
                        .get(template.index())
                        .copied()
                        .unwrap_or(Millis::ZERO)
            }
            PerformanceGoal::MaxLatency { deadline, .. } => completion <= *deadline,
            PerformanceGoal::AverageLatency { target, .. } => {
                let new_sum = self.sum_ms + completion.as_millis() as u128;
                let new_count = self.count + 1;
                new_sum <= target.as_millis() as u128 * new_count as u128
            }
            PerformanceGoal::Percentile {
                percent, deadline, ..
            } => {
                let new_over = self.over_deadline + u64::from(completion > *deadline);
                // Allowed fraction over the deadline across the whole
                // workload; filling VMs is judged against the final size.
                let allowed =
                    ((100.0 - percent) / 100.0 * self.total_queries as f64).floor() as u64;
                new_over <= allowed
            }
        }
    }

    fn commit(&mut self, template: wisedb_core::TemplateId, completion: Millis) {
        let _ = template;
        self.sum_ms += completion.as_millis() as u128;
        self.count += 1;
        if let PerformanceGoal::Percentile { deadline, .. } = self.goal {
            if completion > *deadline {
                self.over_deadline += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{total_cost, PenaltyRate, TemplateId, VmType};

    fn spec3() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![
                ("T1", Millis::from_mins(4)),
                ("T2", Millis::from_mins(3)),
                ("T3", Millis::from_mins(2)),
            ],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    /// The §3 worked example: FFD -> 3 VMs, FFI -> 3 VMs, optimal -> 2.
    #[test]
    fn section_three_vm_counts() {
        let spec = spec3();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(9),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[2, 2, 2]);
        let ffd = Heuristic::FirstFitDecreasing
            .schedule(&spec, &goal, &workload)
            .unwrap();
        let ffi = Heuristic::FirstFitIncreasing
            .schedule(&spec, &goal, &workload)
            .unwrap();
        ffd.validate_complete(&workload).unwrap();
        ffi.validate_complete(&workload).unwrap();
        // FFD: [4,4],[3,3,2],[2] -> 3 VMs. FFI: [2,2,3],[3,4],[4] -> 3 VMs.
        assert_eq!(ffd.num_vms(), 3);
        assert_eq!(ffi.num_vms(), 3);
        // Neither pays a penalty.
        let b_ffd = wisedb_core::cost_breakdown(&spec, &goal, &ffd).unwrap();
        let b_ffi = wisedb_core::cost_breakdown(&spec, &goal, &ffi).unwrap();
        assert_eq!(b_ffd.penalty, wisedb_core::Money::ZERO);
        assert_eq!(b_ffi.penalty, wisedb_core::Money::ZERO);
    }

    #[test]
    fn ffd_packs_max_latency_tightly() {
        // Deadline 6m, queries of 4m and 2m: FFD pairs each 4 with a 2.
        let spec = spec3();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(6),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[3, 0, 3]);
        let s = Heuristic::FirstFitDecreasing
            .schedule(&spec, &goal, &workload)
            .unwrap();
        assert_eq!(s.num_vms(), 3);
        let b = wisedb_core::cost_breakdown(&spec, &goal, &s).unwrap();
        assert_eq!(b.penalty, wisedb_core::Money::ZERO);
    }

    #[test]
    fn pack9_order_interleaves() {
        let spec = spec3();
        // 12 queries: 10 short (T3), 2 long (T1).
        let workload = Workload::from_counts(&[2, 0, 10]);
        let mut ordered: Vec<Query> = workload.queries().to_vec();
        ordered.sort_by_key(|q| (spec.latency(q.template, VmTypeId(0)).unwrap(), q.id));
        let packed = pack9_order(ordered);
        // First nine are short, tenth is the largest (a T1).
        for q in &packed[..9] {
            assert_eq!(q.template, TemplateId(2));
        }
        assert_eq!(packed[9].template, TemplateId(0));
        assert_eq!(packed.len(), 12);
    }

    #[test]
    fn average_fit_allows_mean_dilution() {
        let spec = spec3();
        // Target mean 3m, two 2m queries: stacking them yields completions
        // of 2m and 4m — the 4m query is individually "late" but the mean
        // is exactly on target, so the running-mean fit test must allow the
        // stack (a per-query test would not).
        let goal = PerformanceGoal::AverageLatency {
            target: Millis::from_mins(3),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[0, 0, 2]);
        let s = Heuristic::FirstFitIncreasing
            .schedule(&spec, &goal, &workload)
            .unwrap();
        s.validate_complete(&workload).unwrap();
        assert_eq!(s.num_vms(), 1);
        let b = wisedb_core::cost_breakdown(&spec, &goal, &s).unwrap();
        assert_eq!(b.penalty, wisedb_core::Money::ZERO);
    }

    #[test]
    fn percentile_fit_uses_the_allowance() {
        let spec = spec3();
        let goal = PerformanceGoal::Percentile {
            percent: 90.0,
            deadline: Millis::from_mins(4),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        // 10 queries of T3 (2m): Pack9 can stack some beyond 4m on few VMs
        // as long as ≤ 1 of 10 exceeds the deadline.
        let workload = Workload::from_counts(&[0, 0, 10]);
        let s = Heuristic::Pack9.schedule(&spec, &goal, &workload).unwrap();
        s.validate_complete(&workload).unwrap();
        let b = wisedb_core::cost_breakdown(&spec, &goal, &s).unwrap();
        assert_eq!(b.penalty, wisedb_core::Money::ZERO);
        // It should use fewer VMs than a strict max-deadline packing (5).
        assert!(s.num_vms() <= 5);
    }

    #[test]
    fn impossible_deadlines_still_produce_complete_schedules() {
        let spec = spec3();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_secs(1),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let workload = Workload::from_counts(&[2, 2, 2]);
        for h in Heuristic::ALL {
            let s = h.schedule(&spec, &goal, &workload).unwrap();
            s.validate_complete(&workload).unwrap();
            // One query per VM: nothing ever fits, so every query opens one.
            assert_eq!(s.num_vms(), 6);
            assert!(total_cost(&spec, &goal, &s).unwrap() > wisedb_core::Money::ZERO);
        }
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(Heuristic::FirstFitDecreasing.name(), "FFD");
        assert_eq!(Heuristic::FirstFitIncreasing.name(), "FFI");
        assert_eq!(Heuristic::Pack9.name(), "Pack9");
    }
}
