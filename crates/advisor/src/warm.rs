//! Warm-path training: the canonical solve cache behind
//! [`ModelGenerator::retrain_from`](crate::model::ModelGenerator::retrain_from).
//!
//! Training (§4) draws `N` small random workloads from the template set and
//! A*-solves each one — by far the dominant cost of a retrain. But a sample
//! workload's optimal *decision path* depends only on its template
//! **multiset** (the search's initial vertex is built from template counts;
//! query ids are replayed onto the path afterwards), so isomorphic samples
//! recur constantly: within one `train` call at small `m`, and across the
//! successive retrains a drift loop performs. [`SolveCache`] canonicalizes
//! each sample to its template-count **signature** and memoizes
//! `signature → (extracted training rows, solve stats, explored g-values)`,
//! so a duplicate sample — in this call or any later one — costs a hash
//! lookup instead of a search.
//!
//! ## Determinism
//!
//! Every A* solve in a training run consults one **frozen snapshot** of the
//! cache's heuristic memo, taken when the run starts. Solves are pure
//! functions of `(spec, goal, search config, signature, consulted memo)`,
//! so results are bit-identical regardless of thread count, solve order, or
//! how entries were later evicted — and a cold run (fresh cache, empty
//! snapshot) is byte-identical to the historical uncached pipeline, which
//! always started each sample's searcher empty. New explored g-values are
//! folded into the shared memo max-wise in first-occurrence sample order
//! under the cache lock, so the *next* run's snapshot is deterministic too.
//!
//! ## Memo admissibility across workloads
//!
//! A provably-optimal solve of cost `f*` yields `h'(v) = f* − g(v)` for
//! every settled vertex `v` (adaptive A*, §5). A [`StateKey`] fully
//! determines the remaining subproblem — unassigned template counts, open-VM
//! summary, penalty digest — independent of which sample workload reached
//! it, and `f* ≤ g(v) + h*(v)` for any vertex on or off the optimal path,
//! so `h'(v) ≤ h*(v)`: the memoized value is an admissible lower bound for
//! **any** training sample that reaches the same vertex, not just the one
//! that recorded it. Entries are recorded only from optimal solves of
//! monotone goals, mirroring
//! [`AdaptiveSearcher::solve`](wisedb_search::AdaptiveSearcher)'s rule.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use wisedb_core::{GoalHandle, PerformanceGoal, SpecHandle, WorkloadSpec};
use wisedb_learn::FeatureSchema;
use wisedb_search::{ExploredStates, HeuristicMemo, OptimalSchedule, SearchConfig, SearchStats};

/// A sample workload's canonical identity: its per-template query counts.
pub type Signature = Vec<u32>;

/// Default [`SolveCache`] capacity (distinct signatures) when
/// [`ModelConfig::cache_capacity`](crate::model::ModelConfig::cache_capacity)
/// is left at `0`.
pub const DEFAULT_CACHE_CAPACITY: usize = 8192;

/// Capacity bound of the shared heuristic memo. Existing vertices may
/// always be raised; new vertices are dropped once the memo is full (a
/// heuristic that is missing entries is merely weaker, never wrong).
const MEMO_CAPACITY: usize = 1 << 18;

/// Everything memoized about one signature's optimal solve. The rows are
/// already feature-extracted, so a cache hit skips both the A* search and
/// the per-step feature extraction.
#[derive(Debug, Clone)]
pub struct SolvedEntry {
    /// Feature vectors, one per decision along the optimal path.
    pub rows: Vec<Vec<f64>>,
    /// The decision label taken at each row.
    pub labels: Vec<usize>,
    /// `cost(R, g)` of the solve, in dollars.
    pub cost_dollars: f64,
    /// The solve's search counters.
    pub stats: SearchStats,
    /// The g-values of every settled vertex, for warming per-sample
    /// adaptive searchers and the shared memo.
    pub explored: ExploredStates,
    /// Whether this solve may seed reuse memos: the goal was monotone and
    /// the result provably optimal (Lemma 5.1's premises).
    pub seeds_memo: bool,
}

impl SolvedEntry {
    /// Extracts a cacheable entry from one solve. Pure in
    /// `(spec, goal, schema, solve)` — duplicates of the same signature
    /// always produce identical entries.
    pub fn from_solve(
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        schema: &FeatureSchema,
        solved: &OptimalSchedule,
        explored: ExploredStates,
    ) -> Self {
        let mut rows = Vec::with_capacity(solved.steps.len());
        let mut labels = Vec::with_capacity(solved.steps.len());
        for step in &solved.steps {
            rows.push(schema.extract(spec, goal, &step.state));
            labels.push(step.decision.label(schema.num_templates));
        }
        SolvedEntry {
            rows,
            labels,
            cost_dollars: solved.cost.as_dollars(),
            stats: solved.stats,
            explored,
            seeds_memo: goal.is_monotone() && solved.stats.optimal,
        }
    }

    /// The adaptive-searcher memo this solve would have produced had it run
    /// uncached: `h = f* − g` for every settled vertex with positive
    /// cost-to-go, empty unless [`SolvedEntry::seeds_memo`].
    pub fn searcher_memo(&self) -> HeuristicMemo {
        let mut memo = HeuristicMemo::new();
        if self.seeds_memo {
            for (key, g) in &self.explored {
                let h = self.cost_dollars - g;
                if h > 0.0 {
                    memo.raise(key.clone(), h);
                }
            }
        }
        memo
    }
}

/// What one training run was promised under the cache lock: a frozen memo
/// snapshot, a per-sample resolution, and the distinct signatures this run
/// must solve itself (in first-occurrence sample order).
pub(crate) struct RunPlan {
    /// The memo snapshot every solve of this run consults.
    pub frozen: Arc<HeuristicMemo>,
    /// One resolution per sample, in sample order.
    pub lookups: Vec<Lookup>,
    /// Signatures absent from the cache, deduplicated, in first-occurrence
    /// sample order. `Lookup::Missing(i)` indexes into this list.
    pub missing: Vec<Signature>,
}

/// How one sample resolves against the cache.
pub(crate) enum Lookup {
    /// Served by an entry cached in an earlier run (or an earlier commit).
    Hit(Arc<SolvedEntry>),
    /// Shares the `i`-th missing signature's solve (first occurrence and
    /// within-run duplicates alike).
    Missing(usize),
}

/// What the cache was built for; a warm start is only sound against the
/// identical search problem.
struct Fingerprint {
    spec: SpecHandle,
    goal: GoalHandle,
    search: SearchConfig,
}

struct CacheInner {
    entries: HashMap<Signature, Arc<SolvedEntry>>,
    /// Insertion order, for deterministic FIFO eviction.
    order: VecDeque<Signature>,
    capacity: usize,
    /// The shared cross-run heuristic memo (capped; see the module docs'
    /// admissibility argument).
    memo: HeuristicMemo,
    fingerprint: Fingerprint,
    hits: u64,
    solves: u64,
}

/// A capacity-bounded, thread-safe map from sample [`Signature`]s to their
/// memoized optimal solves, plus the shared cross-run heuristic memo. One
/// cache serves one `(spec, goal, search config)` triple; see the module
/// docs for the determinism and admissibility contracts.
pub struct SolveCache {
    inner: Mutex<CacheInner>,
}

impl SolveCache {
    /// An empty cache for the given search problem. `capacity` is clamped
    /// to at least 1 distinct signature.
    pub fn new(spec: SpecHandle, goal: GoalHandle, search: SearchConfig, capacity: usize) -> Self {
        SolveCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
                memo: HeuristicMemo::new(),
                fingerprint: Fingerprint { spec, goal, search },
                hits: 0,
                solves: 0,
            }),
        }
    }

    /// Whether this cache was built for exactly this search problem.
    pub fn matches(
        &self,
        spec: &SpecHandle,
        goal: &PerformanceGoal,
        search: &SearchConfig,
    ) -> bool {
        let inner = self.inner.lock().unwrap();
        let fp = &inner.fingerprint;
        *fp.spec == **spec && *fp.goal == *goal && fp.search == *search
    }

    /// Distinct signatures currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// `true` iff no signature is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound (distinct signatures).
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }

    /// Vertices in the shared heuristic memo.
    pub fn memo_len(&self) -> usize {
        self.inner.lock().unwrap().memo.len()
    }

    /// Lifetime `(cache hits, A* solves)` across every run served by this
    /// cache.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.hits, inner.solves)
    }

    /// Resolves a run's samples against the cache under one lock: classify
    /// every signature, snapshot the memo, and promise the missing
    /// signatures (in first-occurrence order) to the caller to solve.
    ///
    /// The snapshot is only taken when something is actually missing — the
    /// frozen memo is consulted exclusively by the missing signatures'
    /// solves, so an all-hit run (the warm steady state) skips cloning a
    /// potentially large memo without affecting any result.
    pub(crate) fn plan(&self, sigs: Vec<Signature>) -> RunPlan {
        let inner = self.inner.lock().unwrap();
        let mut missing: Vec<Signature> = Vec::new();
        let mut missing_index: HashMap<Signature, usize> = HashMap::new();
        let lookups = sigs
            .into_iter()
            .map(|sig| {
                if let Some(entry) = inner.entries.get(&sig) {
                    Lookup::Hit(Arc::clone(entry))
                } else if let Some(&i) = missing_index.get(&sig) {
                    Lookup::Missing(i)
                } else {
                    let i = missing.len();
                    missing_index.insert(sig.clone(), i);
                    missing.push(sig);
                    Lookup::Missing(i)
                }
            })
            .collect();
        let frozen = if missing.is_empty() {
            Arc::new(HeuristicMemo::new())
        } else {
            Arc::new(inner.memo.clone())
        };
        RunPlan {
            frozen,
            lookups,
            missing,
        }
    }

    /// Commits a run's freshly solved entries (parallel to the `missing`
    /// list of the [`RunPlan`]) and its hit count. Insertion, FIFO
    /// eviction, and memo merging all happen in first-occurrence sample
    /// order under the lock, so the cache's next state is deterministic.
    /// Eviction never invalidates the current run: callers hold `Arc`s to
    /// every entry they were promised.
    pub(crate) fn commit(&self, missing: Vec<Signature>, solved: Vec<Arc<SolvedEntry>>, hits: u64) {
        debug_assert_eq!(missing.len(), solved.len());
        let mut inner = self.inner.lock().unwrap();
        inner.hits += hits;
        inner.solves += solved.len() as u64;
        for (sig, entry) in missing.into_iter().zip(solved) {
            if entry.seeds_memo {
                for (key, g) in &entry.explored {
                    let h = entry.cost_dollars - g;
                    if h > 0.0 {
                        inner.memo.raise_capped(key.clone(), h, MEMO_CAPACITY);
                    }
                }
            }
            while inner.entries.len() >= inner.capacity {
                let Some(evict) = inner.order.pop_front() else {
                    break;
                };
                inner.entries.remove(&evict);
            }
            if inner.entries.insert(sig.clone(), entry).is_none() {
                inner.order.push_back(sig);
            }
        }
    }
}

impl std::fmt::Debug for SolveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("SolveCache")
            .field("entries", &inner.entries.len())
            .field("capacity", &inner.capacity)
            .field("memo", &inner.memo.len())
            .field("hits", &inner.hits)
            .field("solves", &inner.solves)
            .finish()
    }
}

/// A cheap-to-clone handle to the warm-training state extracted from a
/// previous run's [`TrainingArtifacts`](crate::model::TrainingArtifacts):
/// the solve cache (and with it the shared heuristic memo). `Send`-able to
/// a background trainer thread;
/// [`ModelGenerator::retrain_from`](crate::model::ModelGenerator::retrain_from)
/// consumes one.
#[derive(Debug, Clone)]
pub struct WarmStart {
    cache: Arc<SolveCache>,
}

impl WarmStart {
    /// Wraps a shared cache.
    pub(crate) fn new(cache: Arc<SolveCache>) -> Self {
        WarmStart { cache }
    }

    /// The shared solve cache.
    pub fn cache(&self) -> &Arc<SolveCache> {
        &self.cache
    }
}
