//! Adaptive A* (§5): reusing one search to accelerate the next.
//!
//! When a decision model must be rebuilt for a *stricter* goal `R'`, the
//! scheduling graphs of the training workloads keep their structure — only
//! placement-edge weights grow (penalties can only increase under a tighter
//! goal, Eq. 4). Following Koenig & Likhachev's adaptive A*, the cost-to-go
//! observed under the old goal,
//!
//! ```text
//! h'(v) = cost(R, g) − cost(R, v)
//! ```
//!
//! is an admissible heuristic for the new search (Lemma 5.1), and combined
//! with the base heuristic as `max(h, h')` it typically re-solves a sample
//! workload in a fraction of the original time. This is also what makes the
//! online *Shift* optimization cheap (§6.3.1): scheduling delayed queries
//! equals searching under a goal tightened by the delay.

use wisedb_core::{CoreResult, PerformanceGoal, Workload, WorkloadSpec};

use crate::strategy::{HeuristicMemo, OptimalSchedule, SearchConfig, Solver};

/// Per-workload adaptive search state: solve once, then re-solve cheaply for
/// any sequence of monotonically *tightening* goals.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveSearcher {
    memo: HeuristicMemo,
}

impl AdaptiveSearcher {
    /// A searcher with no reuse information yet.
    pub fn new() -> Self {
        AdaptiveSearcher::default()
    }

    /// A searcher pre-seeded with reuse information from an earlier solve of
    /// the **same workload** (the warm-training path rebuilds per-sample
    /// searchers from cached solves this way). The caller is responsible for
    /// the memo's admissibility: every entry must be a sound lower bound on
    /// the cost-to-go of that vertex in this workload's scheduling graph.
    pub fn warmed(memo: HeuristicMemo) -> Self {
        AdaptiveSearcher { memo }
    }

    /// Number of vertices with reuse information.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Solves `workload` under `goal`, exploiting any reuse information from
    /// earlier solves and recording new information for later ones.
    ///
    /// Correctness requires each successive call to use the *same workload*
    /// and a goal **at least as strict** as every previous one (the paper's
    /// setting: start loose, tighten incrementally).
    ///
    /// Reuse is applied only for **monotone** goals. Lemma 5.1's premise —
    /// tightening never lowers an edge weight — holds per-edge for deadline
    /// goals, but for average/percentile goals a penalty-*refunding* edge
    /// can refund more under the tighter goal, making the reuse heuristic
    /// inadmissible. For those goals this method degenerates to a fresh A*
    /// (which still benefits from the strengthened base heuristic), keeping
    /// every returned schedule provably optimal.
    ///
    /// With an inexact [`crate::strategy::SearchStrategy`] in `config`
    /// (beam/anytime), the memo is still *consulted* — layering more
    /// admissible information under an inflated heuristic is sound — but
    /// new entries are recorded only from solves whose result is **provably
    /// optimal** ([`crate::strategy::SearchStats::optimal`]): Lemma 5.1's
    /// `h'(v) = cost(R, g) − cost(R, v)` is admissible only when
    /// `cost(R, g)` is the true optimum, so a suboptimal incumbent must
    /// never seed the memo.
    pub fn solve(
        &mut self,
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        workload: &Workload,
        config: SearchConfig,
    ) -> CoreResult<OptimalSchedule> {
        let reuse = goal.is_monotone();
        let searcher = Solver::new(spec, goal).with_config(config);
        let searcher = if reuse {
            searcher.with_memo(&self.memo)
        } else {
            searcher
        };
        let (result, explored) = searcher.solve_with_explored(workload)?;
        if reuse && result.stats.optimal {
            let goal_cost = result.cost.as_dollars();
            for (key, g) in explored {
                let h = goal_cost - g;
                if h <= 0.0 {
                    continue;
                }
                self.memo.raise(key, h);
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::AStarSearcher;
    use wisedb_core::{GoalKind, Millis, VmType};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![
                ("T1", Millis::from_mins(2)),
                ("T2", Millis::from_mins(1)),
                ("T3", Millis::from_mins(3)),
            ],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    #[test]
    fn adaptive_matches_fresh_search_on_tightening_ladder() {
        let spec = spec();
        let workload = Workload::from_counts(&[2, 2, 2]);
        for kind in GoalKind::ALL {
            let base = PerformanceGoal::paper_default(kind, &spec).unwrap();
            let mut adaptive = AdaptiveSearcher::new();
            for pct in [0.0, 0.2, 0.4, 0.6, 0.8] {
                let goal = base.tighten_pct(&spec, pct);
                let reused = adaptive
                    .solve(&spec, &goal, &workload, SearchConfig::default())
                    .unwrap();
                let fresh = AStarSearcher::new(&spec, &goal).solve(&workload).unwrap();
                assert!(
                    reused.cost.approx_eq(fresh.cost, 1e-9),
                    "{kind:?} at {pct}: adaptive={} fresh={}",
                    reused.cost,
                    fresh.cost
                );
            }
        }
    }

    #[test]
    fn reuse_prunes_expansions() {
        let spec = spec();
        let workload = Workload::from_counts(&[3, 3, 3]);
        let base = PerformanceGoal::paper_default(GoalKind::MaxLatency, &spec).unwrap();
        let mut adaptive = AdaptiveSearcher::new();
        adaptive
            .solve(&spec, &base, &workload, SearchConfig::default())
            .unwrap();
        assert!(adaptive.memo_len() > 0);

        let tightened = base.tighten_pct(&spec, 0.3);
        let reused = adaptive
            .solve(&spec, &tightened, &workload, SearchConfig::default())
            .unwrap();
        let fresh = AStarSearcher::new(&spec, &tightened)
            .solve(&workload)
            .unwrap();
        assert!(reused.cost.approx_eq(fresh.cost, 1e-9));
        assert!(
            reused.stats.expanded <= fresh.stats.expanded,
            "reuse expanded {} > fresh {}",
            reused.stats.expanded,
            fresh.stats.expanded
        );
    }

    #[test]
    fn costs_never_decrease_as_goals_tighten() {
        let spec = spec();
        let workload = Workload::from_counts(&[2, 1, 2]);
        let base = PerformanceGoal::paper_default(GoalKind::PerQuery, &spec).unwrap();
        let mut adaptive = AdaptiveSearcher::new();
        let mut last = None;
        for pct in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let goal = base.tighten_pct(&spec, pct);
            let result = adaptive
                .solve(&spec, &goal, &workload, SearchConfig::default())
                .unwrap();
            if let Some(prev) = last {
                assert!(result.cost >= prev, "tightening to {pct} lowered cost");
            }
            last = Some(result.cost);
        }
    }
}
