//! Canonical within-VM ordering: an optimality-preserving symmetry
//! reduction the paper does not spell out but that exact search at 30-query
//! scale requires.
//!
//! Classical single-machine results make shortest-processing-time (SPT)
//! order within each VM optimal for every goal WiSeDB supports:
//!
//! * **Max latency** — total tardiness against a *common* due date is
//!   minimized by SPT.
//! * **Average latency** — `ΣC_j` (hence the mean) is minimized by SPT.
//! * **Percentile** — the j-th smallest completion on one machine is at
//!   least the sum of the j smallest execution times, a bound SPT attains
//!   pointwise; so SPT minimizes *every* order statistic.
//! * **Per-query deadlines** — when due dates are *agreeable* with
//!   processing times (`l_a ≤ l_b ⟹ d_a ≤ d_b`, which holds for deadline =
//!   k × latency specifications like the paper's), EDD = SPT minimizes
//!   total tardiness (Emmons' dominance).
//!
//! Under these conditions every schedule can be re-sorted per VM into
//! canonical order without increasing cost, so the searcher may restrict
//! placement edges to non-decreasing canonical rank — collapsing the k!
//! orderings of a k-query queue into one path. For non-agreeable per-query
//! goals the reduction is disabled and the searcher falls back to the full
//! graph.

use wisedb_core::{Millis, PerformanceGoal, TemplateId, VmTypeId, WorkloadSpec};

use crate::state::SearchState;

/// Per-VM-type canonical placement ranks; `None` when the reduction does
/// not apply to this (spec, goal) pair.
#[derive(Debug, Clone)]
pub struct CanonicalOrder {
    /// `rank[vm_type][template]`; `u32::MAX` for unsupported pairs.
    rank: Vec<Vec<u32>>,
}

impl CanonicalOrder {
    /// Builds the canonical order if it is optimality-preserving for
    /// `goal` on `spec`.
    pub fn for_goal(spec: &WorkloadSpec, goal: &PerformanceGoal) -> Option<Self> {
        let deadlines: Option<&[Millis]> = match goal {
            PerformanceGoal::PerQuery { deadlines, .. } => Some(deadlines),
            _ => None,
        };
        let mut rank = Vec::with_capacity(spec.num_vm_types());
        for v in spec.vm_type_ids() {
            // Sort supported templates by (latency, deadline, id); check
            // agreeability for per-query goals.
            let mut order: Vec<(Millis, Millis, u32)> = Vec::new();
            for t in spec.template_ids() {
                let Some(latency) = spec.latency(t, v) else {
                    continue;
                };
                let deadline = deadlines
                    .map(|d| d.get(t.index()).copied().unwrap_or(Millis::ZERO))
                    .unwrap_or(Millis::ZERO);
                order.push((latency, deadline, t.0));
            }
            order.sort();
            if deadlines.is_some() {
                // Agreeable ⟺ after sorting by latency, deadlines are
                // non-decreasing (ties already sorted by deadline).
                let mut prev: Option<(Millis, Millis)> = None;
                for &(latency, deadline, _) in &order {
                    if let Some((pl, pd)) = prev {
                        if latency > pl && deadline < pd {
                            return None;
                        }
                    }
                    // Track the largest deadline seen at ≤ this latency.
                    let carried = prev.map(|(_, pd)| pd.max(deadline)).unwrap_or(deadline);
                    prev = Some((latency, carried));
                }
            }
            let mut ranks = vec![u32::MAX; spec.num_templates()];
            for (i, &(_, _, t)) in order.iter().enumerate() {
                ranks[t as usize] = i as u32;
            }
            rank.push(ranks);
        }
        Some(CanonicalOrder { rank })
    }

    /// Whether placing `t` on the open VM keeps its queue canonically
    /// ordered. Seeded (pre-committed) queue entries never constrain new
    /// placements — only templates placed during this search do.
    pub fn allows(&self, state: &SearchState, t: TemplateId) -> bool {
        let Some(last) = &state.last_vm else {
            return true;
        };
        if last.queue.len() <= last.seeded {
            return true;
        }
        let Some(prev) = last.queue.last() else {
            return true;
        };
        let ranks = &self.rank[last.vm_type.index()];
        ranks[t.index()] >= ranks[prev.index()]
    }

    /// The canonical rank of `t` on `v` (for tests/inspection).
    pub fn rank(&self, v: VmTypeId, t: TemplateId) -> u32 {
        self.rank[v.index()][t.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{PenaltyRate, VmType};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![
                ("short", Millis::from_mins(1)),
                ("long", Millis::from_mins(4)),
                ("mid", Millis::from_mins(2)),
            ],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    #[test]
    fn ranks_follow_latency() {
        let spec = spec();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(9),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let order = CanonicalOrder::for_goal(&spec, &goal).unwrap();
        let v = VmTypeId(0);
        assert!(order.rank(v, TemplateId(0)) < order.rank(v, TemplateId(2)));
        assert!(order.rank(v, TemplateId(2)) < order.rank(v, TemplateId(1)));
    }

    #[test]
    fn agreeable_per_query_deadlines_qualify() {
        let spec = spec();
        // deadline = 3x latency: agreeable.
        let goal = PerformanceGoal::PerQuery {
            deadlines: vec![
                Millis::from_mins(3),
                Millis::from_mins(12),
                Millis::from_mins(6),
            ],
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        assert!(CanonicalOrder::for_goal(&spec, &goal).is_some());
    }

    #[test]
    fn non_agreeable_deadlines_disable_the_reduction() {
        let spec = spec();
        // The longest query has the tightest deadline: EDD ≠ SPT.
        let goal = PerformanceGoal::PerQuery {
            deadlines: vec![
                Millis::from_mins(10),
                Millis::from_mins(5),
                Millis::from_mins(8),
            ],
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        assert!(CanonicalOrder::for_goal(&spec, &goal).is_none());
    }

    #[test]
    fn allows_checks_the_open_queue_tail() {
        use crate::decision::Decision;
        let spec = spec();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(20),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let order = CanonicalOrder::for_goal(&spec, &goal).unwrap();
        let state = SearchState::initial(vec![1, 1, 1], &goal);
        let (state, _) = state
            .apply(&spec, &goal, Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        // Empty queue: everything allowed.
        assert!(order.allows(&state, TemplateId(1)));
        let (state, _) = state
            .apply(&spec, &goal, Decision::Place(TemplateId(2)))
            .unwrap();
        // "mid" placed: "short" would break SPT, "long" keeps it.
        assert!(!order.allows(&state, TemplateId(0)));
        assert!(order.allows(&state, TemplateId(1)));
        assert!(order.allows(&state, TemplateId(2)));
    }
}
