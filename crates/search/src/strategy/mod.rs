//! Pluggable search strategies over the scheduling graph.
//!
//! WiSeDB's pipeline bottoms out in one shortest-path solve per training
//! sample, oracle baseline, and online replan. The paper's exact A* (§4.3)
//! is the right default — but percentile goals explode the state space
//! (the digest distinguishes every completion multiset), and training only
//! needs *near*-optimal paths because the learned model generalizes past
//! individual solutions. So the solver is a strategy, not a constant:
//!
//! * [`ExactAStar`] — the paper's search, bit-identical to the historical
//!   monolith. First goal popped is provably optimal.
//! * [`BeamSearch`] — level-synchronous beam of configurable width with
//!   admissible-heuristic tie-breaking. Linear-time, no optimality proof
//!   (unless nothing was ever pruned, which it detects).
//! * [`AnytimeWeightedAStar`] — anytime weighted A* (Hansen & Zhou):
//!   orders expansion by `g + w·h` with `w = 1 + ε`, keeps searching past
//!   the first incumbent with ε decaying at every improvement, and returns
//!   the best incumbent with a **proven suboptimality bound** when the
//!   node/time budget expires (or the optimum, if the open list drains).
//! * [`PartialExpansionAStar`] — exact like the first, but each expansion
//!   enqueues only the successors whose `f` fits under the vertex's stored
//!   `F`, re-enqueueing the vertex with a raised `F` for the rest — the
//!   classic PEA* trade of cheap re-expansions for a drastically smaller
//!   interned frontier on wide branching (percentile goals fan out per
//!   template × placement).
//!
//! All four share the interned-state machinery ([`common`]): the dense
//! state-id interner, flat id-indexed g/h tables, the persistent-queue
//! vertices, and the greedy upper bound. [`Solver`] is the single entry
//! point — [`SearchConfig::strategy`] picks the implementation, and the
//! historical [`AStarSearcher`](crate::astar::AStarSearcher) name is an
//! alias of it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use wisedb_core::{
    CoreResult, Money, PerformanceGoal, Schedule, VmInstance, Workload, WorkloadSpec,
};

use crate::canonical::CanonicalOrder;
use crate::decision::Decision;
use crate::heuristic::HeuristicTable;
use crate::state::{SearchState, StateKey};

pub mod anytime;
pub mod beam;
pub(crate) mod common;
pub mod exact;
pub mod pea;

pub use anytime::AnytimeWeightedAStar;
pub use beam::BeamSearch;
pub use common::SearchCx;
pub use exact::ExactAStar;
pub use pea::PartialExpansionAStar;

/// Which search strategy a [`Solver`] runs. Serializable, so training and
/// replan configurations can persist their solver choice, and parseable
/// (`exact`, `beam[:width]`, `anytime[:weight[:decay]]`) so benchmark
/// sweeps can select one from an environment variable or CLI flag without
/// recompiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Exact A* — provably optimal, the historical behaviour.
    Exact,
    /// Level-synchronous beam search.
    Beam {
        /// Vertices kept per level (must be ≥ 1).
        width: usize,
    },
    /// Anytime weighted A* with a decaying inflation factor.
    Anytime {
        /// Initial heuristic inflation `w = 1 + ε` (≥ 1).
        weight: f64,
        /// Multiplier applied to ε at every incumbent improvement, in
        /// `[0, 1]` — `w` decays toward 1 as solutions are found.
        decay: f64,
    },
    /// Partial-expansion A* — exact like [`SearchStrategy::Exact`], but an
    /// expansion materializes only the successors whose `f` does not exceed
    /// the vertex's stored `F`, deferring the rest and re-enqueueing the
    /// vertex with a raised `F`. Trades re-expansions for a much smaller
    /// interned/open frontier on wide branching.
    Pea,
}

impl SearchStrategy {
    /// Default beam width when none is given (`beam` with no `:width`).
    pub const DEFAULT_BEAM_WIDTH: usize = 512;
    /// Default anytime inflation (`w = 1.5`).
    pub const DEFAULT_ANYTIME_WEIGHT: f64 = 1.5;
    /// Default anytime decay (ε halves at every incumbent improvement).
    pub const DEFAULT_ANYTIME_DECAY: f64 = 0.5;

    /// The beam strategy at its default width.
    pub fn beam() -> Self {
        SearchStrategy::Beam {
            width: Self::DEFAULT_BEAM_WIDTH,
        }
    }

    /// The anytime strategy at its default weight and decay.
    pub fn anytime() -> Self {
        SearchStrategy::Anytime {
            weight: Self::DEFAULT_ANYTIME_WEIGHT,
            decay: Self::DEFAULT_ANYTIME_DECAY,
        }
    }

    /// Whether this strategy can prove optimality on an unbounded budget.
    pub fn is_exact(&self) -> bool {
        matches!(self, SearchStrategy::Exact | SearchStrategy::Pea)
    }
}

impl Default for SearchStrategy {
    fn default() -> Self {
        SearchStrategy::Exact
    }
}

impl std::fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchStrategy::Exact => write!(f, "exact"),
            SearchStrategy::Beam { width } => write!(f, "beam:{width}"),
            SearchStrategy::Anytime { weight, decay } => {
                write!(f, "anytime:{weight}:{decay}")
            }
            SearchStrategy::Pea => write!(f, "pea"),
        }
    }
}

impl std::str::FromStr for SearchStrategy {
    type Err = String;

    /// Parses `exact`, `pea`, `beam`, `beam:WIDTH`, `anytime`,
    /// `anytime:WEIGHT`, or `anytime:WEIGHT:DECAY`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default().trim().to_lowercase();
        let parse_f64 = |p: Option<&str>, what: &str, default: f64| -> Result<f64, String> {
            match p {
                None => Ok(default),
                Some(raw) => raw
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("invalid {what} {raw:?} in strategy {s:?}")),
            }
        };
        let strategy = match head.as_str() {
            "exact" | "astar" => SearchStrategy::Exact,
            "pea" | "pea*" | "peastar" => SearchStrategy::Pea,
            "beam" => {
                let width = match parts.next() {
                    None => Self::DEFAULT_BEAM_WIDTH,
                    Some(raw) => raw
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("invalid beam width {raw:?} in {s:?}"))?,
                };
                if width == 0 {
                    return Err(format!("beam width must be >= 1 in {s:?}"));
                }
                SearchStrategy::Beam { width }
            }
            "anytime" | "awastar" => {
                let weight = parse_f64(parts.next(), "weight", Self::DEFAULT_ANYTIME_WEIGHT)?;
                let decay = parse_f64(parts.next(), "decay", Self::DEFAULT_ANYTIME_DECAY)?;
                if weight < 1.0 {
                    return Err(format!("anytime weight must be >= 1 in {s:?}"));
                }
                if !(0.0..=1.0).contains(&decay) {
                    return Err(format!("anytime decay must be in [0, 1] in {s:?}"));
                }
                SearchStrategy::Anytime { weight, decay }
            }
            other => {
                return Err(format!(
                    "unknown strategy {other:?} (expected exact | pea | beam[:width] | \
                     anytime[:weight[:decay]])"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("trailing components in strategy {s:?}"));
        }
        Ok(strategy)
    }
}

/// Tunables for one search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Maximum number of vertex **expansions** (vertices popped and given
    /// successors) before the search stops and returns its incumbent.
    ///
    /// This is an expansion budget, deliberately: `generated` and
    /// `interned` routinely exceed it (each expansion generates several
    /// successors), and the limit-hit outcome is observable via
    /// [`SearchStats::limit_hit`] rather than only a silent fallback. A
    /// search that stops on this budget reports `optimal = false` and, for
    /// strategies that can compute one, a suboptimality
    /// [`bound`](SearchStats::bound).
    pub node_limit: usize,
    /// Which strategy runs the search. Defaults to [`SearchStrategy::Exact`],
    /// the historical behaviour.
    #[serde(default)]
    pub strategy: SearchStrategy,
    /// Optional wall-clock budget in milliseconds. Checked coarsely (every
    /// few thousand expansions), so treat it as a soft deadline; `None`
    /// (the default) keeps searches deterministic.
    #[serde(default)]
    pub time_limit_ms: Option<u64>,
}

impl SearchConfig {
    /// The default configuration with a different strategy.
    pub fn with_strategy(strategy: SearchStrategy) -> Self {
        SearchConfig {
            strategy,
            ..SearchConfig::default()
        }
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            node_limit: 4_000_000,
            strategy: SearchStrategy::Exact,
            time_limit_ms: None,
        }
    }
}

/// Counters describing one search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchStats {
    /// Vertices popped and expanded.
    pub expanded: u64,
    /// Successor states generated.
    pub generated: u64,
    /// Times a better path to an already-seen vertex was found.
    pub reopened: u64,
    /// Distinct vertices interned (allocated a dense id / key entry) during
    /// the search — the size of the dedup table, and the unit the interning
    /// refactor's allocation savings scale with.
    pub interned: u64,
    /// Whether the result is provably optimal.
    pub optimal: bool,
    /// Whether the search stopped on its expansion or time budget (the
    /// [`SearchConfig::node_limit`] semantics) instead of finishing.
    pub limit_hit: bool,
    /// Times the best-known complete schedule (the incumbent) improved.
    pub incumbents: u64,
    /// Successor states discarded by beam truncation — the work a
    /// bounded-width search declined to do.
    pub pruned: u64,
    /// Times an already-cached vertex was popped again to promote more of
    /// its successors — partial expansion's currency (always 0 for the
    /// other strategies).
    pub reexpansions: u64,
    /// Successor deferrals: a priced successor left cached (not enqueued)
    /// past the end of an expansion because its `f` exceeded the vertex's
    /// stored `F`. The same successor can defer repeatedly across
    /// re-expansions.
    pub deferred: u64,
    /// Proven multiplicative suboptimality bound: the returned cost is at
    /// most `bound ×` the optimal cost. `1.0` when optimality is proven;
    /// [`f64::INFINITY`] when the strategy could not establish a bound.
    pub bound: f64,
}

impl Default for SearchStats {
    fn default() -> Self {
        SearchStats {
            expanded: 0,
            generated: 0,
            reopened: 0,
            interned: 0,
            optimal: false,
            limit_hit: false,
            incumbents: 0,
            pruned: 0,
            reexpansions: 0,
            deferred: 0,
            bound: f64::INFINITY,
        }
    }
}

/// One decision on the solution path together with the vertex it was taken
/// from — the raw material of the training set (§4.4).
#[derive(Debug, Clone)]
pub struct DecisionStep {
    /// The vertex (partial schedule + remaining work) at decision time.
    pub state: SearchState,
    /// The decision the path took there.
    pub decision: Decision,
}

/// What a strategy returns: a complete decision path from the initial
/// vertex to a goal vertex, its cost, and the search counters.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Decisions along the path, with their origin vertices.
    pub steps: Vec<DecisionStep>,
    /// Total path cost, in dollars.
    pub cost: Money,
    /// Search counters.
    pub stats: SearchStats,
}

/// The outcome of a workload solve: the schedule, its cost, and the
/// annotated path.
#[derive(Debug, Clone)]
pub struct OptimalSchedule {
    /// The minimum-cost (or, for inexact strategies, best-found) complete
    /// schedule.
    pub schedule: Schedule,
    /// Its total cost `cost(R, S)`.
    pub cost: Money,
    /// The decisions along the path, with their origin vertices.
    pub steps: Vec<DecisionStep>,
    /// Search counters.
    pub stats: SearchStats,
}

/// A decision sequence from an arbitrary initial vertex (no query-id
/// replay) — what online scheduling consumes.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Decisions in application order.
    pub decisions: Vec<Decision>,
    /// The decisions annotated with their origin vertices.
    pub steps: Vec<DecisionStep>,
    /// Cost of the planned continuation (from the initial vertex).
    pub cost: Money,
    /// Search counters.
    pub stats: SearchStats,
}

/// Extra per-vertex heuristic values (in dollars) layered on top of the base
/// heuristic — the mechanism behind adaptive A* (§5). Keys are Arc-backed
/// [`StateKey`]s, so storing one is reference bumps; the searcher consults
/// the memo at most once per *distinct* vertex (the per-id `h` cache
/// remembers the combined value for every regeneration).
#[derive(Debug, Clone, Default)]
pub struct HeuristicMemo {
    values: HashMap<StateKey, f64>,
}

impl HeuristicMemo {
    /// An empty memo.
    pub fn new() -> Self {
        HeuristicMemo::default()
    }

    /// Number of vertices with reuse information.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the memo holds no reuse information.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The memoized heuristic for `key`, if any.
    pub fn get(&self, key: &StateKey) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// Records `h` for `key`, keeping the maximum of all observations
    /// (`max(h, h')` stays admissible when each input is).
    pub fn raise(&mut self, key: StateKey, h: f64) {
        let slot = self.values.entry(key).or_insert(f64::NEG_INFINITY);
        if h > *slot {
            *slot = h;
        }
    }

    /// Whether the memo holds reuse information for `key`.
    pub fn contains(&self, key: &StateKey) -> bool {
        self.values.contains_key(key)
    }

    /// Like [`HeuristicMemo::raise`], but refuses to grow past `cap`
    /// entries: existing keys may still be raised (free — no allocation),
    /// new keys are dropped once the memo is full. Raising and dropping are
    /// both order-independent per key, so a sequence of capped raises is
    /// deterministic for any fixed insertion order.
    pub fn raise_capped(&mut self, key: StateKey, h: f64, cap: usize) {
        if self.values.contains_key(&key) || self.values.len() < cap {
            self.raise(key, h);
        }
    }
}

/// The g-values of every settled vertex of one search, in settle order —
/// what [`crate::adaptive::AdaptiveSearcher`] folds into its memo.
pub type ExploredStates = Vec<(StateKey, f64)>;

/// A search strategy: given the shared pricing/interning context and an
/// initial vertex, produce a complete decision path. Implementations must
/// return a path to a goal vertex (falling back to the greedy completion
/// is always possible) and fill [`SearchStats`] honestly — in particular
/// `optimal` only when the cost is provably minimal and `bound` with a
/// sound multiplicative guarantee.
pub trait Strategy {
    /// Short human-readable name (`exact`, `beam`, `anytime`).
    fn name(&self) -> &'static str;

    /// Runs the search from `initial`. When `keep_explored` is set, the
    /// returned [`ExploredStates`] carries the settled g-values for
    /// adaptive reuse; otherwise it may be empty.
    fn search(
        &self,
        cx: &SearchCx<'_>,
        initial: SearchState,
        keep_explored: bool,
    ) -> (SearchOutcome, ExploredStates);
}

/// The solver: owns the heuristic table and symmetry reduction for one
/// (spec, goal) pair and runs whichever [`SearchStrategy`] its
/// configuration selects. The historical `AStarSearcher` name is an alias
/// of this type; with the default configuration it behaves bit-identically
/// to the pre-strategy exact searcher.
pub struct Solver<'a> {
    spec: &'a WorkloadSpec,
    goal: &'a PerformanceGoal,
    config: SearchConfig,
    table: HeuristicTable,
    memo: Option<&'a HeuristicMemo>,
    canonical: Option<CanonicalOrder>,
}

impl<'a> Solver<'a> {
    /// Creates a solver with the default configuration (exact A*). When
    /// the goal admits it, the optimality-preserving canonical-SPT
    /// reduction (see [`crate::canonical`]) is enabled automatically.
    pub fn new(spec: &'a WorkloadSpec, goal: &'a PerformanceGoal) -> Self {
        Solver {
            spec,
            goal,
            config: SearchConfig::default(),
            table: HeuristicTable::new(spec),
            memo: None,
            canonical: CanonicalOrder::for_goal(spec, goal),
        }
    }

    /// Overrides the search configuration (including the strategy).
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides only the strategy, keeping the other tunables.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Layers an adaptive-A* heuristic memo over the base heuristic:
    /// `h'(v) = max(h(v), memo[v])` (§5).
    pub fn with_memo(mut self, memo: &'a HeuristicMemo) -> Self {
        self.memo = Some(memo);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Finds a minimum-cost (exact strategy) or bounded-suboptimality
    /// (beam/anytime) complete schedule for `workload`.
    pub fn solve(&self, workload: &Workload) -> CoreResult<OptimalSchedule> {
        workload.validate_against(self.spec)?;
        let (result, _) = self.run(self.initial_state(workload), false);
        Ok(finish_schedule(result, workload))
    }

    /// Like [`solve`](Self::solve) but also returns the g-values of every
    /// settled vertex, which [`crate::adaptive::AdaptiveSearcher`] turns
    /// into the reuse heuristic.
    pub fn solve_with_explored(
        &self,
        workload: &Workload,
    ) -> CoreResult<(OptimalSchedule, ExploredStates)> {
        workload.validate_against(self.spec)?;
        let (result, explored) = self.run(self.initial_state(workload), true);
        Ok((finish_schedule(result, workload), explored))
    }

    /// Plans from an arbitrary initial vertex — the online scheduler's
    /// entry point (§6.3), where the initial state carries the currently
    /// open VM. Returns the decision sequence (no query-id replay).
    pub fn plan_from(&self, initial: SearchState) -> CoreResult<Plan> {
        let (raw, _) = self.run(initial, false);
        Ok(Plan {
            decisions: raw.steps.iter().map(|s| s.decision).collect(),
            steps: raw.steps,
            cost: raw.cost,
            stats: raw.stats,
        })
    }

    /// Runs the configured strategy from `initial`.
    ///
    /// This is the one choke point every solve passes through (batch
    /// scheduling, training samples, online replans), so the per-solve
    /// observability span lives here: one `search.solve` span carrying
    /// the full [`SearchStats`] as attributes. The hot expansion loop
    /// itself is **not** instrumented — with tracing disabled this costs
    /// one relaxed atomic load per solve.
    pub fn run(
        &self,
        initial: SearchState,
        keep_explored: bool,
    ) -> (SearchOutcome, ExploredStates) {
        let mut span = wisedb_obs::span("search.solve");
        let (outcome, explored) = match self.config.strategy {
            SearchStrategy::Exact => self.run_with(&ExactAStar, initial, keep_explored),
            SearchStrategy::Beam { width } => {
                self.run_with(&BeamSearch { width }, initial, keep_explored)
            }
            SearchStrategy::Anytime { weight, decay } => self.run_with(
                &AnytimeWeightedAStar { weight, decay },
                initial,
                keep_explored,
            ),
            SearchStrategy::Pea => self.run_with(&PartialExpansionAStar, initial, keep_explored),
        };
        if span.recording() {
            let s = &outcome.stats;
            span.attr_str("strategy", self.config.strategy.to_string());
            span.attr_u64("expanded", s.expanded);
            span.attr_u64("generated", s.generated);
            span.attr_u64("interned", s.interned);
            span.attr_u64("incumbents", s.incumbents);
            span.attr_u64("pruned", s.pruned);
            span.attr_u64("reexpansions", s.reexpansions);
            span.attr_u64("deferred", s.deferred);
            span.attr_f64("bound", s.bound);
            span.attr_bool("optimal", s.optimal);
            span.attr_bool("limit_hit", s.limit_hit);
        }
        wisedb_obs::counter_add("wisedb_search_solves_total", 1);
        wisedb_obs::counter_add("wisedb_search_expanded_total", outcome.stats.expanded);
        wisedb_obs::counter_add(
            "wisedb_search_reexpansions_total",
            outcome.stats.reexpansions,
        );
        (outcome, explored)
    }

    /// Runs an explicit (possibly external) strategy implementation from
    /// `initial` — the pluggable entry point the enum dispatch builds on.
    pub fn run_with(
        &self,
        strategy: &dyn Strategy,
        initial: SearchState,
        keep_explored: bool,
    ) -> (SearchOutcome, ExploredStates) {
        if initial.is_goal() {
            // Nothing to schedule: the empty path is trivially optimal.
            let stats = SearchStats {
                optimal: true,
                bound: 1.0,
                ..SearchStats::default()
            };
            return (
                SearchOutcome {
                    steps: Vec::new(),
                    cost: Money::ZERO,
                    stats,
                },
                Vec::new(),
            );
        }
        let cx = SearchCx::new(
            self.spec,
            self.goal,
            &self.config,
            &self.table,
            self.memo,
            self.canonical.as_ref(),
        );
        strategy.search(&cx, initial, keep_explored)
    }

    fn initial_state(&self, workload: &Workload) -> SearchState {
        let counts: Vec<u16> = workload
            .template_counts(self.spec.num_templates())
            .into_iter()
            .map(|c| c as u16)
            .collect();
        SearchState::initial(counts, self.goal)
    }
}

/// Replays the decision sequence against the concrete workload, assigning
/// real query ids (instances of a template are interchangeable, so ids are
/// handed out in workload order).
fn finish_schedule(raw: SearchOutcome, workload: &Workload) -> OptimalSchedule {
    let mut by_template: Vec<std::collections::VecDeque<wisedb_core::QueryId>> = Vec::new();
    for q in workload.queries() {
        let idx = q.template.index();
        if by_template.len() <= idx {
            by_template.resize_with(idx + 1, Default::default);
        }
        by_template[idx].push_back(q.id);
    }
    let mut schedule = Schedule::empty();
    for step in &raw.steps {
        match step.decision {
            Decision::CreateVm(v) => schedule.vms.push(VmInstance::new(v)),
            Decision::Place(t) => {
                let id = by_template[t.index()]
                    .pop_front()
                    .expect("decision path places exactly the workload's queries");
                schedule
                    .vms
                    .last_mut()
                    .expect("placement always follows a start-up edge")
                    .queue
                    .push(wisedb_core::Placement {
                        query: id,
                        template: t,
                    });
            }
        }
    }
    OptimalSchedule {
        schedule,
        cost: raw.cost,
        steps: raw.steps,
        stats: raw.stats,
    }
}

/// Convenience: builds a template-id workload and solves it with the
/// default (exact) configuration.
pub fn solve_counts(
    spec: &WorkloadSpec,
    goal: &PerformanceGoal,
    counts: &[u32],
) -> CoreResult<OptimalSchedule> {
    let workload = Workload::from_counts(counts);
    Solver::new(spec, goal).solve(&workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parses_and_round_trips() {
        for (text, expected) in [
            ("exact", SearchStrategy::Exact),
            ("pea", SearchStrategy::Pea),
            ("pea*", SearchStrategy::Pea),
            ("peastar", SearchStrategy::Pea),
            ("beam", SearchStrategy::beam()),
            ("beam:64", SearchStrategy::Beam { width: 64 }),
            ("anytime", SearchStrategy::anytime()),
            (
                "anytime:2.0",
                SearchStrategy::Anytime {
                    weight: 2.0,
                    decay: SearchStrategy::DEFAULT_ANYTIME_DECAY,
                },
            ),
            (
                "anytime:1.25:0.75",
                SearchStrategy::Anytime {
                    weight: 1.25,
                    decay: 0.75,
                },
            ),
        ] {
            let parsed: SearchStrategy = text.parse().unwrap();
            assert_eq!(parsed, expected, "{text}");
            // Display output parses back to the same strategy.
            let redisplayed: SearchStrategy = parsed.to_string().parse().unwrap();
            assert_eq!(redisplayed, parsed, "{text}");
        }
        for bad in [
            "",
            "beam:0",
            "beam:x",
            "anytime:0.5",
            "anytime:1.5:2",
            "pea:1",
            "foo",
        ] {
            assert!(bad.parse::<SearchStrategy>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn search_config_serde_round_trip() {
        for strategy in [
            SearchStrategy::Exact,
            SearchStrategy::Pea,
            SearchStrategy::Beam { width: 17 },
            SearchStrategy::Anytime {
                weight: 1.5,
                decay: 0.25,
            },
        ] {
            let config = SearchConfig {
                node_limit: 12_345,
                strategy,
                time_limit_ms: Some(250),
            };
            let json = serde_json::to_string(&config).unwrap();
            let back: SearchConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, config);
        }
        // Legacy payloads without the new fields default to exact.
        let legacy: SearchConfig = serde_json::from_str(r#"{"node_limit": 7}"#).unwrap();
        assert_eq!(legacy.node_limit, 7);
        assert_eq!(legacy.strategy, SearchStrategy::Exact);
        assert_eq!(legacy.time_limit_ms, None);
    }

    #[test]
    fn default_stats_report_no_proof() {
        let stats = SearchStats::default();
        assert!(!stats.optimal);
        assert!(!stats.limit_hit);
        assert!(stats.bound.is_infinite());
    }
}
