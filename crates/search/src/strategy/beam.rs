//! Level-synchronous beam search: linear-time schedule construction with a
//! bounded frontier.
//!
//! Each level expands every surviving vertex, then keeps only the `width`
//! best successors by `f = g + h` — ties broken by the *admissible
//! heuristic* (smaller `h` first, i.e. the vertex provably closer to a
//! goal), then by generation order for determinism. Goal vertices never
//! compete for beam slots: they immediately challenge the incumbent and
//! the search continues until the frontier empties or the budget expires.
//!
//! Beam search is incomplete by design — truncation can discard the
//! optimal path — so it never claims optimality unless it can prove it
//! trivially: a run that finished without ever truncating (and without
//! hitting the budget) explored everything exact search would have, and
//! reports `optimal = true`. Otherwise the reported
//! [`bound`](super::SearchStats::bound) falls back to the root heuristic
//! (`cost / h(start)`), which is loose; use [`super::AnytimeWeightedAStar`]
//! when a tight certified gap matters.

use crate::state::SearchState;

use super::common::{
    finish_explored, generate_successors, PruneRule, SearchCx, Tables, G_EPS, TIME_CHECK_MASK,
};
use super::exact::{fallback_result, suboptimality};
use super::{ExploredStates, SearchOutcome, SearchStats, Strategy};

/// Beam search with a fixed frontier width.
#[derive(Debug, Clone, Copy)]
pub struct BeamSearch {
    /// Vertices kept per level (≥ 1).
    pub width: usize,
}

/// One surviving frontier candidate.
struct Candidate {
    f: f64,
    h: f64,
    g: f64,
    idx: usize,
}

impl Strategy for BeamSearch {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn search(
        &self,
        cx: &SearchCx<'_>,
        initial: SearchState,
        keep_explored: bool,
    ) -> (SearchOutcome, ExploredStates) {
        let width = self.width.max(1);
        let mut stats = SearchStats::default();
        let (mut t, _, h0) = Tables::init(cx, &initial);

        // Greedy completion: upper bound and guaranteed fallback.
        let greedy = cx.greedy_completion(&initial, stats);
        let upper_bound = greedy.cost.as_dollars() + G_EPS;
        let mut incumbent: Option<(usize, f64)> = None;
        let deadline = cx.deadline();

        let mut frontier: Vec<(usize, f64)> = vec![(0, 0.0)];
        'levels: while !frontier.is_empty() {
            let mut candidates: Vec<Candidate> = Vec::new();
            for &(idx, g) in &frontier {
                let sid = t.arena[idx].sid;
                if g > t.best_g[sid as usize] + G_EPS {
                    continue; // a better path into this vertex was found
                }
                let time_up = deadline
                    .map(|d| {
                        stats.expanded & TIME_CHECK_MASK == 0 && std::time::Instant::now() >= d
                    })
                    .unwrap_or(false);
                if stats.expanded as usize >= cx.config.node_limit || time_up {
                    stats.limit_hit = true;
                    break 'levels;
                }
                stats.expanded += 1;
                if keep_explored {
                    t.record_explored(sid, g);
                }
                let node_state = t.arena[idx].state.clone();
                // No path through a successor can beat the best known
                // complete schedule (greedy or incumbent).
                let cutoff = incumbent
                    .map(|(_, best)| best + G_EPS)
                    .unwrap_or(upper_bound);
                for s in generate_successors(
                    cx,
                    &mut t,
                    &mut stats,
                    &node_state,
                    idx,
                    g,
                    PruneRule::Above(cutoff),
                ) {
                    if s.is_goal {
                        // Goals challenge the incumbent directly instead
                        // of competing for beam slots.
                        match incumbent {
                            Some((_, best)) if best <= s.g => {}
                            _ => {
                                incumbent = Some((s.idx, s.g));
                                stats.incumbents += 1;
                            }
                        }
                    } else {
                        candidates.push(Candidate {
                            f: s.g + s.h,
                            h: s.h,
                            g: s.g,
                            idx: s.idx,
                        });
                    }
                }
            }
            // Keep the `width` best candidates: order by f, break ties by
            // the admissible heuristic (smaller h = provably closer to a
            // goal), then by generation order for determinism.
            candidates.sort_by(|a, b| {
                a.f.total_cmp(&b.f)
                    .then_with(|| a.h.total_cmp(&b.h))
                    .then_with(|| a.idx.cmp(&b.idx))
            });
            if candidates.len() > width {
                stats.pruned += (candidates.len() - width) as u64;
                candidates.truncate(width);
            }
            frontier = candidates.into_iter().map(|c| (c.idx, c.g)).collect();
        }

        stats.interned = t.interner.len() as u64;
        // Exhaustive runs (never truncated, never budget-bound) explored
        // every vertex exact search could reach under the same pruning, so
        // the best goal found is provably optimal.
        stats.optimal = stats.pruned == 0 && !stats.limit_hit && incumbent.is_some();
        let mut outcome = fallback_result(&t, incumbent, &greedy, stats);
        outcome.stats.bound = if outcome.stats.optimal {
            1.0
        } else {
            // Only the root heuristic survives truncation as a certified
            // lower bound.
            suboptimality(outcome.cost, h0)
        };
        (outcome, finish_explored(t.interner, t.explored_g))
    }
}
