//! Machinery shared by every search strategy.
//!
//! The strategies differ only in *which* vertex they expand next and
//! *when* they stop; everything else — state pricing, the dense state-id
//! interner, flat id-indexed tables, heap ordering, greedy completion,
//! path reconstruction, and budget accounting — lives here so exact, beam,
//! and anytime searches intern, price, and report identically.

use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

use wisedb_core::{Money, PerformanceGoal, WorkloadSpec};

use crate::canonical::CanonicalOrder;
use crate::decision::Decision;
use crate::heuristic::HeuristicTable;
use crate::state::{SearchState, StateKey};

use super::{
    DecisionStep, ExploredStates, HeuristicMemo, SearchConfig, SearchOutcome, SearchStats,
};

/// Float slack when comparing path costs, in dollars.
pub(crate) const G_EPS: f64 = 1e-12;

/// How many expansions pass between wall-clock checks when a time budget
/// is configured — coarse enough to keep `Instant::now` off the hot path.
pub(crate) const TIME_CHECK_MASK: u64 = 0x0FFF;

/// The shared pricing/enumeration context one [`super::Solver`] hands to
/// its strategy: the (spec, goal) pair, the configuration, the admissible
/// heuristic (base table plus optional adaptive memo), and the canonical
/// placement-order reduction when the goal admits it.
pub struct SearchCx<'a> {
    pub(crate) spec: &'a WorkloadSpec,
    pub(crate) goal: &'a PerformanceGoal,
    pub(crate) config: &'a SearchConfig,
    pub(crate) table: &'a HeuristicTable,
    pub(crate) memo: Option<&'a HeuristicMemo>,
    pub(crate) canonical: Option<&'a CanonicalOrder>,
}

impl<'a> SearchCx<'a> {
    pub(crate) fn new(
        spec: &'a WorkloadSpec,
        goal: &'a PerformanceGoal,
        config: &'a SearchConfig,
        table: &'a HeuristicTable,
        memo: Option<&'a HeuristicMemo>,
        canonical: Option<&'a CanonicalOrder>,
    ) -> Self {
        SearchCx {
            spec,
            goal,
            config,
            table,
            memo,
            canonical,
        }
    }

    /// The workload specification being scheduled.
    pub fn spec(&self) -> &WorkloadSpec {
        self.spec
    }

    /// The performance goal pricing the edges.
    pub fn goal(&self) -> &PerformanceGoal {
        self.goal
    }

    /// The active search configuration.
    pub fn config(&self) -> &SearchConfig {
        self.config
    }

    /// The admissible heuristic for a vertex, memo-combined (§5).
    ///
    /// At goal vertices the remaining cost is exactly zero; returning
    /// anything below that would let a costly goal pop before cheaper
    /// open paths (the optimality argument needs `f(goal) = g(goal)`).
    pub fn h(&self, state: &SearchState, key: &StateKey) -> f64 {
        if state.is_goal() {
            return 0.0;
        }
        let base = self.table.estimate(self.goal, state).as_dollars();
        match self.memo.and_then(|m| m.get(key)) {
            Some(extra) => base.max(extra),
            None => base,
        }
    }

    /// Whether the canonical-SPT reduction allows this placement out of
    /// `state` (always true when the reduction is disabled).
    pub fn allows(&self, state: &SearchState, decision: Decision) -> bool {
        match (decision, self.canonical) {
            (Decision::Place(t), Some(canonical)) => canonical.allows(state, t),
            _ => true,
        }
    }

    /// One-step-greedy completion: the cheapest out-edge at every vertex,
    /// comparing placements (Eq. 2) against renting plus the fresh VM's
    /// cheapest first placement. Always reaches a goal vertex, so every
    /// strategy has a complete-schedule fallback and an upper bound.
    pub fn greedy_completion(&self, initial: &SearchState, stats: SearchStats) -> SearchOutcome {
        let mut state = initial.clone();
        let mut steps = Vec::new();
        let mut cost = Money::ZERO;
        while !state.is_goal() {
            let mut best: Option<(Decision, Money)> = None;
            let consider = |d: Decision, w: Money, best: &mut Option<(Decision, Money)>| {
                if best
                    .as_ref()
                    .map(|&(_, bw)| w.total_cmp(&bw).is_lt())
                    .unwrap_or(true)
                {
                    *best = Some((d, w));
                }
            };
            for d in state.successors(self.spec) {
                match d {
                    Decision::Place(_) => {
                        if let Some(w) = state.edge_weight(self.spec, self.goal, d) {
                            consider(d, w, &mut best);
                        }
                    }
                    Decision::CreateVm(_) => {
                        // Price renting by the fee plus the cheapest first
                        // placement the fresh VM would then offer, so a
                        // penalized stack loses to opening a new VM.
                        let Some((fresh, startup)) = state.apply(self.spec, self.goal, d) else {
                            continue;
                        };
                        let next_best = self
                            .spec
                            .template_ids()
                            .filter_map(|t| {
                                fresh.edge_weight(self.spec, self.goal, Decision::Place(t))
                            })
                            .min_by(Money::total_cmp)
                            .unwrap_or(Money::ZERO);
                        consider(d, startup + next_best, &mut best);
                    }
                }
            }
            let (decision, _) = best.expect("validated spec always offers a decision");
            let (next, w) = state
                .apply(self.spec, self.goal, decision)
                .expect("successor decisions are applicable");
            steps.push(DecisionStep {
                state: state.clone(),
                decision,
            });
            cost += w;
            state = next;
        }
        SearchOutcome { steps, cost, stats }
    }

    /// The wall-clock deadline, if a time budget is configured.
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.config
            .time_limit_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms))
    }
}

/// The per-search mutable tables every strategy shares: the node arena,
/// the state-id interner, and the flat id-indexed best-g / cached-h /
/// explored-g vectors.
pub(crate) struct Tables {
    pub(crate) arena: Vec<Node>,
    pub(crate) interner: Interner,
    pub(crate) best_g: Vec<f64>,
    pub(crate) h_cache: Vec<f64>,
    /// Settle-order g per id (last write wins on reopening); ids double
    /// as the index, so no hashing on the expansion path.
    pub(crate) explored_g: Vec<f64>,
}

impl Tables {
    /// Seats `initial` as the root (arena index 0) and returns its
    /// interned id and heuristic value.
    pub(crate) fn init(cx: &SearchCx<'_>, initial: &SearchState) -> (Self, u32, f64) {
        let mut t = Tables {
            arena: Vec::with_capacity(1024),
            interner: Interner::default(),
            best_g: Vec::with_capacity(1024),
            h_cache: Vec::with_capacity(1024),
            explored_g: Vec::new(),
        };
        let sid0 = t.interner.intern(initial.key(cx.spec.num_templates()));
        let h0 = cx.h(initial, &t.interner.keys[sid0 as usize]);
        *ensure_slot(&mut t.best_g, sid0, f64::INFINITY) = 0.0;
        *ensure_slot(&mut t.h_cache, sid0, f64::NAN) = h0;
        t.arena.push(Node {
            state: initial.clone(),
            parent: None,
            decision: None,
            sid: sid0,
        });
        (t, sid0, h0)
    }

    /// Records the settle-order g of an expanded vertex (adaptive reuse).
    pub(crate) fn record_explored(&mut self, sid: u32, g: f64) {
        *ensure_slot(&mut self.explored_g, sid, f64::NAN) = g;
    }
}

/// How generated successors are pruned against the strategy's current
/// upper bound on useful cost.
#[derive(Clone, Copy)]
pub(crate) enum PruneRule {
    /// Drop successors with `g + h > cutoff` (the cutoff already carries
    /// any slack): exact/beam pruning against a static or slackened bound.
    Above(f64),
    /// Drop successors with `g + h ≥ cutoff − G_EPS`: anytime's pruning —
    /// only paths that can *strictly* beat the incumbent survive.
    MustBeat(f64),
}

impl PruneRule {
    fn drops(self, f: f64) -> bool {
        match self {
            PruneRule::Above(cutoff) => f > cutoff,
            PruneRule::MustBeat(cutoff) => f >= cutoff - G_EPS,
        }
    }
}

/// One surviving successor of [`generate_successors`].
pub(crate) struct Successor {
    /// Arena index of the new vertex.
    pub(crate) idx: usize,
    /// Path cost to it.
    pub(crate) g: f64,
    /// Its (uninflated, memo-combined) heuristic value.
    pub(crate) h: f64,
    /// Whether it is a goal vertex.
    pub(crate) is_goal: bool,
}

/// Expands one vertex into the shared tables: enumerates decisions,
/// applies the canonical-order filter, prices edges, interns and dedups
/// against best-known g (counting reopenings), caches h per distinct
/// vertex, and prunes against `rule`. This is the one implementation all
/// strategies share — they differ only in what they do with the
/// survivors (exact pushes everything including goals onto its open
/// list; beam and anytime route goals straight to the incumbent).
pub(crate) fn generate_successors(
    cx: &SearchCx<'_>,
    t: &mut Tables,
    stats: &mut super::SearchStats,
    node_state: &SearchState,
    parent_idx: usize,
    parent_g: f64,
    rule: PruneRule,
) -> Vec<Successor> {
    let nt = cx.spec.num_templates();
    let mut out = Vec::new();
    for decision in node_state.successors(cx.spec) {
        if !cx.allows(node_state, decision) {
            continue;
        }
        let Some((next, weight)) = node_state.apply(cx.spec, cx.goal, decision) else {
            continue;
        };
        stats.generated += 1;
        let g2 = parent_g + weight.as_dollars();
        let sid2 = t.interner.intern(next.key(nt));
        let known_g = ensure_slot(&mut t.best_g, sid2, f64::INFINITY);
        if known_g.is_finite() {
            if g2 >= *known_g - G_EPS {
                continue;
            }
            stats.reopened += 1;
        }
        *known_g = g2;
        let h_slot = ensure_slot(&mut t.h_cache, sid2, f64::NAN);
        let h2 = if h_slot.is_nan() {
            let h = cx.h(&next, &t.interner.keys[sid2 as usize]);
            *h_slot = h;
            h
        } else {
            *h_slot
        };
        if rule.drops(g2 + h2) {
            continue;
        }
        let is_goal = next.is_goal();
        t.arena.push(Node {
            state: next,
            parent: Some(parent_idx),
            decision: Some(decision),
            sid: sid2,
        });
        out.push(Successor {
            idx: t.arena.len() - 1,
            g: g2,
            h: h2,
            is_goal,
        });
    }
    out
}

/// Dense state-id interner: each distinct [`StateKey`] gets a `u32` on
/// first sight. Keys are Arc-backed, so storing them twice (map + by-id
/// vector) costs reference bumps, not vector copies.
#[derive(Default)]
pub(crate) struct Interner {
    ids: HashMap<StateKey, u32>,
    pub(crate) keys: Vec<StateKey>,
}

impl Interner {
    /// Returns the id for `key`, allocating one if unseen.
    pub(crate) fn intern(&mut self, key: StateKey) -> u32 {
        let Interner { ids, keys } = self;
        match ids.entry(key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = keys.len() as u32;
                keys.push(e.key().clone());
                e.insert(id);
                id
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Grows `table` with `fill` so that `id` is addressable.
pub(crate) fn ensure_slot(table: &mut Vec<f64>, id: u32, fill: f64) -> &mut f64 {
    let idx = id as usize;
    if table.len() <= idx {
        table.resize(idx + 1, fill);
    }
    &mut table[idx]
}

/// One generated vertex in the search arena.
pub(crate) struct Node {
    pub(crate) state: SearchState,
    pub(crate) parent: Option<usize>,
    pub(crate) decision: Option<Decision>,
    /// Interned id of `state`'s key.
    pub(crate) sid: u32,
}

/// A priority-queue entry: `f` is whatever the strategy orders by (plain
/// `g + h` for exact, `g + w·h` for anytime), `g` the path cost, `idx` the
/// arena index.
pub(crate) struct HeapEntry {
    pub(crate) f: f64,
    pub(crate) g: f64,
    pub(crate) idx: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f && self.g == other.g && self.idx == other.idx
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert f (smallest first); on ties,
        // prefer the deeper node (largest g), then the most recently
        // generated node (LIFO) — together these make exploration of an
        // f-plateau depth-first, reaching goal vertices quickly.
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| self.g.total_cmp(&other.g))
            .then_with(|| self.idx.cmp(&other.idx))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Walks parent links from `goal_idx` back to the root, returning the
/// decision path in application order.
pub(crate) fn reconstruct(arena: &[Node], goal_idx: usize) -> Vec<DecisionStep> {
    let mut steps = Vec::new();
    let mut idx = goal_idx;
    while let (Some(parent), Some(decision)) = (arena[idx].parent, arena[idx].decision) {
        steps.push(DecisionStep {
            state: arena[parent].state.clone(),
            decision,
        });
        idx = parent;
    }
    steps.reverse();
    steps
}

/// Converts the id-indexed settle table back to keyed pairs, in id order.
/// Keys come out of the interner by reference bump, not by copy.
pub(crate) fn finish_explored(interner: Interner, explored_g: Vec<f64>) -> ExploredStates {
    explored_g
        .into_iter()
        .enumerate()
        .filter(|(_, g)| !g.is_nan())
        .map(|(id, g)| (interner.keys[id].clone(), g))
        .collect()
}
