//! Anytime weighted A* (AWA*, after Hansen & Zhou): bounded-suboptimality
//! search under a node/time budget.
//!
//! Two phases share one interner, arena, and g/h table
//! ([`super::common::Tables`]):
//!
//! 1. **Incumbent seeding** — a narrow beam dive (width
//!    [`SEED_WIDTH`](AnytimeWeightedAStar::SEED_WIDTH)) plants a strong
//!    complete schedule. Pure best-first order never reaches goal depth on
//!    digest-heavy graphs (the percentile pathology: millions of
//!    equal-looking prefixes, none complete), so the incumbent the main
//!    loop refines must come from forced depth progress. Every vertex the
//!    dive generates also enters the main open list — seeding wastes
//!    nothing, and a closed check keeps phase 2 from re-expanding (and
//!    double-billing the budget for) vertices the dive already expanded.
//! 2. **Weighted A\*** — expansion ordered by `f' = g + w·h` with
//!    `w = 1 + ε ≥ 1`. The search does not stop at the first goal: every
//!    improvement tightens the incumbent, prunes the open list against the
//!    *uninflated* `g + h` (so no potentially-better path is ever lost),
//!    and decays ε — later exploration converges toward the exact order.
//!
//! Two guarantees fall out:
//!
//! * if the open list drains, the incumbent is **provably optimal**
//!   (everything else was pruned against it using an admissible bound);
//! * if the budget expires first, `min_{open}(g + h)` is a certified lower
//!   bound on the optimum, so the incumbent ships with a proven
//!   multiplicative [`bound`](super::SearchStats::bound) — the paper-scale
//!   property training needs, since the learned model only requires
//!   near-optimal decision paths.

use std::collections::BinaryHeap;

use wisedb_core::Money;

use crate::state::SearchState;

use super::common::{
    ensure_slot, finish_explored, generate_successors, reconstruct, HeapEntry, PruneRule, SearchCx,
    G_EPS, TIME_CHECK_MASK,
};
use super::exact::{open_lower_bound, suboptimality};
use super::{ExploredStates, SearchOutcome, SearchStats, Strategy};

/// Anytime weighted A* with a decaying inflation factor.
#[derive(Debug, Clone, Copy)]
pub struct AnytimeWeightedAStar {
    /// Initial heuristic inflation `w = 1 + ε` (≥ 1; 1.0 degenerates to a
    /// non-stopping exact search).
    pub weight: f64,
    /// Multiplier applied to ε at every incumbent improvement, in `[0, 1]`.
    pub decay: f64,
}

impl AnytimeWeightedAStar {
    /// Beam width of the incumbent-seeding dive.
    pub const SEED_WIDTH: usize = 64;
}

impl Strategy for AnytimeWeightedAStar {
    fn name(&self) -> &'static str {
        "anytime"
    }

    fn search(
        &self,
        cx: &SearchCx<'_>,
        initial: SearchState,
        keep_explored: bool,
    ) -> (SearchOutcome, ExploredStates) {
        let mut w = self.weight.max(1.0);
        let decay = self.decay.clamp(0.0, 1.0);
        let mut stats = SearchStats::default();

        let (mut t, _, h0) = super::common::Tables::init(cx, &initial);
        let mut open = BinaryHeap::new();
        open.push(HeapEntry {
            f: w * h0,
            g: 0.0,
            idx: 0,
        });
        // g at which each state id was expanded (NaN = never): phase 2
        // skips anything already expanded at an equal-or-better g, so the
        // seeding dive's work is never paid for twice.
        let mut closed_g: Vec<f64> = Vec::new();

        // The greedy completion seeds the *first* incumbent: the search
        // starts with a complete schedule in hand and only ever improves.
        let greedy = cx.greedy_completion(&initial, stats);
        let mut incumbent_cost = greedy.cost.as_dollars();
        // Arena index of the best goal vertex found (None = greedy).
        let mut incumbent_idx: Option<usize> = None;
        let deadline = cx.deadline();

        // Adopts a strictly better complete schedule and decays the greed
        // (later exploration is closer to the exact order).
        macro_rules! offer_incumbent {
            ($g:expr, $idx:expr) => {
                if $g < incumbent_cost - G_EPS {
                    incumbent_cost = $g;
                    incumbent_idx = Some($idx);
                    stats.incumbents += 1;
                    w = 1.0 + (w - 1.0) * decay;
                }
            };
        }

        // -- Phase 1: beam-dive seeding. ---------------------------------
        // Generated vertices land in the main open list as well, so the
        // dive is a prefix of the real search, not a throwaway.
        let mut frontier: Vec<(usize, f64)> = vec![(0, 0.0)];
        while !frontier.is_empty() && (stats.expanded as usize) < cx.config.node_limit {
            let mut candidates: Vec<(f64, f64, f64, usize)> = Vec::new(); // (f, h, g, idx)
            for &(idx, g) in &frontier {
                let sid = t.arena[idx].sid;
                if g > t.best_g[sid as usize] + G_EPS {
                    continue;
                }
                if stats.expanded as usize >= cx.config.node_limit {
                    break;
                }
                stats.expanded += 1;
                *ensure_slot(&mut closed_g, sid, f64::NAN) = g;
                if keep_explored {
                    t.record_explored(sid, g);
                }
                let node_state = t.arena[idx].state.clone();
                for s in generate_successors(
                    cx,
                    &mut t,
                    &mut stats,
                    &node_state,
                    idx,
                    g,
                    PruneRule::MustBeat(incumbent_cost),
                ) {
                    if s.is_goal {
                        offer_incumbent!(s.g, s.idx);
                    } else {
                        open.push(HeapEntry {
                            f: s.g + w * s.h,
                            g: s.g,
                            idx: s.idx,
                        });
                        candidates.push((s.g + s.h, s.h, s.g, s.idx));
                    }
                }
            }
            candidates.sort_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then_with(|| a.1.total_cmp(&b.1))
                    .then_with(|| a.3.cmp(&b.3))
            });
            if candidates.len() > Self::SEED_WIDTH {
                // Not counted as `pruned`: the survivors only steer the
                // dive — every candidate stays alive in the open list.
                candidates.truncate(Self::SEED_WIDTH);
            }
            frontier = candidates
                .into_iter()
                .map(|(_, _, g, idx)| (idx, g))
                .collect();
        }

        // -- Phase 2: weighted A* main loop. ------------------------------
        while let Some(entry) = open.pop() {
            let sid = t.arena[entry.idx].sid;
            if entry.g > t.best_g[sid as usize] + G_EPS {
                continue; // stale entry
            }
            // Already expanded at an equal-or-better g (by the seeding
            // dive, or by an earlier duplicate): nothing new to generate.
            if let Some(&cg) = closed_g.get(sid as usize) {
                if !cg.is_nan() && entry.g >= cg - G_EPS {
                    continue;
                }
            }
            // Prune against the incumbent with the *uninflated* f: no path
            // through this vertex can strictly improve on what we hold.
            if entry.g + t.h_cache[sid as usize] >= incumbent_cost - G_EPS {
                continue;
            }

            let time_up = deadline
                .map(|d| stats.expanded & TIME_CHECK_MASK == 0 && std::time::Instant::now() >= d)
                .unwrap_or(false);
            if stats.expanded as usize >= cx.config.node_limit || time_up {
                stats.limit_hit = true;
                open.push(entry);
                break;
            }

            let node_state = t.arena[entry.idx].state.clone();
            stats.expanded += 1;
            *ensure_slot(&mut closed_g, sid, f64::NAN) = entry.g;
            if keep_explored {
                t.record_explored(sid, entry.g);
            }

            for s in generate_successors(
                cx,
                &mut t,
                &mut stats,
                &node_state,
                entry.idx,
                entry.g,
                PruneRule::MustBeat(incumbent_cost),
            ) {
                if s.is_goal {
                    offer_incumbent!(s.g, s.idx);
                } else {
                    open.push(HeapEntry {
                        f: s.g + w * s.h,
                        g: s.g,
                        idx: s.idx,
                    });
                }
            }
        }

        stats.interned = t.interner.len() as u64;
        if stats.limit_hit {
            // Budget expired: certify the incumbent against the frontier.
            // Optimality is claimed only on actual proof — the incumbent
            // meeting the certified lower bound outright — because an
            // "optimal" result may seed the adaptive heuristic memo, where
            // any tolerance would be inadmissible.
            let lb = open_lower_bound(&open, &t).max(h0);
            stats.bound = suboptimality(Money::from_dollars(incumbent_cost), lb);
            stats.optimal = incumbent_cost <= lb;
        } else {
            // Open list drained: everything unexplored was pruned against
            // the incumbent with an admissible bound, so it is optimal.
            stats.optimal = true;
            stats.bound = 1.0;
        }

        let outcome = match incumbent_idx {
            Some(idx) => SearchOutcome {
                steps: reconstruct(&t.arena, idx),
                cost: Money::from_dollars(incumbent_cost),
                stats,
            },
            None => SearchOutcome {
                steps: greedy.steps,
                cost: greedy.cost,
                stats,
            },
        };
        (outcome, finish_explored(t.interner, t.explored_g))
    }
}
