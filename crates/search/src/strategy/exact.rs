//! Exact A* — the paper's search (§4.3), extracted from the historical
//! monolith bit-for-bit.
//!
//! A path from the start vertex (everything unassigned) to any goal vertex
//! (nothing unassigned) spells out a complete schedule, and its weight is
//! exactly `cost(R, S)` — so the shortest path *is* the optimal schedule.
//!
//! The searcher tolerates negative placement edges (average-latency goals
//! can refund penalty when a fast query lowers the mean) by allowing node
//! reopening; because every placement consumes a query and start-ups
//! require a non-empty previous VM, the graph is a finite DAG and the
//! search always terminates. With an admissible heuristic, the first goal
//! vertex *popped* is optimal even when the heuristic is inconsistent.
//!
//! ## Interned hot path
//!
//! Every distinct vertex is interned to a dense `u32` id on first sight, so
//! the per-expansion tables — best-known g, the cached heuristic value, and
//! the explored set — are flat `Vec`s indexed by id rather than hash maps
//! keyed by deep [`crate::state::StateKey`]s (see
//! [`super::common::Tables`], shared with the inexact strategies).
//! Combined with the structural sharing inside
//! [`crate::state::SearchState`] (persistent queues, copy-on-write counts
//! and penalty distributions), expanding a node costs one key hash and
//! O(successors) small allocations instead of deep clones of the whole
//! vertex. The [`SearchStats::interned`] counter exposes the dedup-table
//! size.

use std::collections::BinaryHeap;

use wisedb_core::Money;

use crate::state::SearchState;

use super::common::{
    finish_explored, generate_successors, reconstruct, HeapEntry, PruneRule, SearchCx, Tables,
    G_EPS, TIME_CHECK_MASK,
};
use super::{ExploredStates, SearchOutcome, SearchStats, Strategy};

/// The exact strategy. Stateless — all tunables live in
/// [`super::SearchConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactAStar;

impl Strategy for ExactAStar {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn search(
        &self,
        cx: &SearchCx<'_>,
        initial: SearchState,
        keep_explored: bool,
    ) -> (SearchOutcome, ExploredStates) {
        let mut stats = SearchStats {
            optimal: true,
            ..SearchStats::default()
        };

        let (mut t, _, h0) = Tables::init(cx, &initial);
        let mut open = BinaryHeap::new();
        open.push(HeapEntry {
            f: h0,
            g: 0.0,
            idx: 0,
        });

        // A quick greedy completion bounds the optimum from above: any
        // vertex whose f exceeds it can never be on an optimal path. Kept
        // whole — it doubles as the budget-exit fallback schedule.
        let greedy = cx.greedy_completion(&initial, stats);
        let upper_bound = greedy.cost.as_dollars() + G_EPS;

        // Incumbent: best goal vertex generated so far, as a fallback when
        // the expansion budget is hit.
        let mut incumbent: Option<(usize, f64)> = None;
        let deadline = cx.deadline();

        while let Some(entry) = open.pop() {
            // Cheap clone (reference bumps): lets the arena grow while the
            // popped state's successors are generated.
            let node_state = t.arena[entry.idx].state.clone();
            let sid = t.arena[entry.idx].sid;
            if entry.g > t.best_g[sid as usize] + G_EPS {
                continue; // stale entry
            }

            if node_state.is_goal() {
                let steps = reconstruct(&t.arena, entry.idx);
                stats.expanded += 1;
                stats.interned = t.interner.len() as u64;
                stats.bound = 1.0;
                return (
                    SearchOutcome {
                        steps,
                        cost: Money::from_dollars(entry.g),
                        stats,
                    },
                    finish_explored(t.interner, t.explored_g),
                );
            }

            // The expansion budget: `node_limit` counts vertices actually
            // expanded (popped and given successors) — `generated` and
            // `interned` routinely exceed it. Checked *before* expanding,
            // so a limited search performs exactly `node_limit`
            // expansions, reports `limit_hit`, and falls back to its
            // incumbent with a sound suboptimality bound from the
            // still-open frontier.
            let time_up = deadline
                .map(|d| stats.expanded & TIME_CHECK_MASK == 0 && std::time::Instant::now() >= d)
                .unwrap_or(false);
            if stats.expanded as usize >= cx.config.node_limit || time_up {
                stats.optimal = false;
                stats.limit_hit = true;
                stats.interned = t.interner.len() as u64;
                // `entry` was popped but not expanded: put it back so the
                // frontier lower bound sees it.
                open.push(entry);
                let lb = open_lower_bound(&open, &t).max(h0);
                let mut outcome = fallback_result(&t, incumbent, &greedy, stats);
                outcome.stats.bound = suboptimality(outcome.cost, lb);
                return (outcome, finish_explored(t.interner, t.explored_g));
            }

            stats.expanded += 1;
            if keep_explored {
                t.record_explored(sid, entry.g);
            }

            for s in generate_successors(
                cx,
                &mut t,
                &mut stats,
                &node_state,
                entry.idx,
                entry.g,
                PruneRule::Above(upper_bound),
            ) {
                if s.is_goal {
                    match incumbent {
                        Some((_, best)) if best <= s.g => {}
                        _ => {
                            incumbent = Some((s.idx, s.g));
                            stats.incumbents += 1;
                        }
                    }
                }
                open.push(HeapEntry {
                    f: s.g + s.h,
                    g: s.g,
                    idx: s.idx,
                });
            }
        }

        // Open list exhausted without popping a goal: only possible if no
        // complete schedule exists, which spec validation rules out — but
        // return the incumbent defensively.
        stats.optimal = false;
        stats.interned = t.interner.len() as u64;
        let outcome = fallback_result(&t, incumbent, &greedy, stats);
        (outcome, finish_explored(t.interner, t.explored_g))
    }
}

/// Best complete schedule available when a search stops early: the
/// incumbent goal vertex if one was generated, otherwise (or if cheaper)
/// the greedy completion computed at search start — an incumbent
/// generated early in a limited search can be dreadful. `stats` replaces
/// the stale snapshot embedded in the greedy outcome.
pub(crate) fn fallback_result(
    t: &Tables,
    incumbent: Option<(usize, f64)>,
    greedy: &SearchOutcome,
    stats: SearchStats,
) -> SearchOutcome {
    if let Some((idx, g)) = incumbent {
        if g <= greedy.cost.as_dollars() {
            return SearchOutcome {
                steps: reconstruct(&t.arena, idx),
                cost: Money::from_dollars(g),
                stats,
            };
        }
    }
    SearchOutcome {
        steps: greedy.steps.clone(),
        cost: greedy.cost,
        stats,
    }
}

/// A sound lower bound on the optimal cost from the still-open frontier:
/// with an admissible heuristic, some open vertex on every optimal path
/// carries `g + h ≤ C*`, so the minimum over open non-stale entries cannot
/// exceed the optimum. (Stale entries — a better path to their vertex is
/// already known — are skipped; that only tightens the bound.)
pub(crate) fn open_lower_bound(open: &BinaryHeap<HeapEntry>, t: &Tables) -> f64 {
    let mut lb = f64::INFINITY;
    for entry in open.iter() {
        let sid = t.arena[entry.idx].sid as usize;
        if entry.g > t.best_g[sid] + G_EPS {
            continue;
        }
        let f = entry.g + t.h_cache[sid];
        if f < lb {
            lb = f;
        }
    }
    lb
}

/// `cost / lb` clamped to ≥ 1, or infinity when no positive finite lower
/// bound is available.
pub(crate) fn suboptimality(cost: Money, lb: f64) -> f64 {
    let cost = cost.as_dollars();
    if lb.is_finite() && lb > 0.0 {
        (cost / lb).max(1.0)
    } else if cost <= 0.0 {
        1.0
    } else {
        f64::INFINITY
    }
}
