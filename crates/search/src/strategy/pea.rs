//! Partial-expansion A* (Yoshizumi et al.) — exact search with a bounded
//! appetite for successors.
//!
//! The scheduling graph's branching factor is `templates + vm_types` at
//! every vertex, and on percentile goals most of those successors are
//! hopeless: their `f = g + h` sits far above the vertex's own `f`, yet
//! plain A* interns, prices, and enqueues all of them, which is where the
//! 13 M-state open lists of the 18-query pathology come from. PEA* expands
//! a vertex *partially*: it prices every successor once, but only the ones
//! whose `f` does not exceed the vertex's stored `F` are interned and
//! enqueued — the rest stay in a per-vertex cache and the vertex itself is
//! re-enqueued with `F` raised to the cheapest deferred `f`. Re-popping the
//! vertex later ([`super::SearchStats::reexpansions`]) promotes the next
//! tranche without re-pricing.
//!
//! Optimality is inherited from exact A*: stored `F` values never exceed
//! the true cost of any completion through their vertex (the heuristic is
//! admissible), so the first goal vertex *popped* is optimal. Budget exits
//! report the same certified suboptimality bound as the exact strategy —
//! the minimum stored `F` over non-stale open entries is a sound lower
//! bound, and for re-enqueued vertices it is *tighter* than `g + h`.

use std::collections::{BinaryHeap, HashMap};

use wisedb_core::Money;

use crate::state::{SearchState, StateKey};

use super::common::{
    ensure_slot, finish_explored, reconstruct, HeapEntry, Node, SearchCx, Tables, G_EPS,
    TIME_CHECK_MASK,
};
use super::exact::{fallback_result, suboptimality};
use super::{ExploredStates, SearchOutcome, SearchStats, Strategy};

/// One priced-but-not-yet-promoted successor.
struct Deferred {
    state: SearchState,
    key: StateKey,
    decision: crate::decision::Decision,
    g: f64,
    h: f64,
}

/// The partial-expansion strategy. Stateless — all tunables live in
/// [`super::SearchConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PartialExpansionAStar;

impl Strategy for PartialExpansionAStar {
    fn name(&self) -> &'static str {
        "pea"
    }

    fn search(
        &self,
        cx: &SearchCx<'_>,
        initial: SearchState,
        keep_explored: bool,
    ) -> (SearchOutcome, ExploredStates) {
        let mut stats = SearchStats {
            optimal: true,
            ..SearchStats::default()
        };

        let (mut t, _, h0) = Tables::init(cx, &initial);
        let mut open = BinaryHeap::new();
        open.push(HeapEntry {
            f: h0,
            g: 0.0,
            idx: 0,
        });

        // Same upper bound and fallback as the exact strategy: a greedy
        // completion caps useful f, and doubles as the budget-exit plan.
        let greedy = cx.greedy_completion(&initial, stats);
        let upper_bound = greedy.cost.as_dollars() + G_EPS;

        // Deferred successors per arena index, sorted descending by f so
        // promotion pops the cheapest tranche off the back. A vertex
        // reopened through a better path gets a fresh arena node (and a
        // fresh cache); stale entries for the old one never pass the
        // best-g check below.
        let mut cache: HashMap<usize, Vec<Deferred>> = HashMap::new();
        let nt = cx.spec().num_templates();

        let mut incumbent: Option<(usize, f64)> = None;
        let deadline = cx.deadline();

        while let Some(entry) = open.pop() {
            let node_state = t.arena[entry.idx].state.clone();
            let sid = t.arena[entry.idx].sid;
            if entry.g > t.best_g[sid as usize] + G_EPS {
                continue; // stale entry
            }

            if node_state.is_goal() {
                let steps = reconstruct(&t.arena, entry.idx);
                stats.expanded += 1;
                stats.interned = t.interner.len() as u64;
                stats.bound = 1.0;
                return (
                    SearchOutcome {
                        steps,
                        cost: Money::from_dollars(entry.g),
                        stats,
                    },
                    finish_explored(t.interner, t.explored_g),
                );
            }

            // Expansion budget, checked before expanding — re-pops count,
            // so `node_limit` bounds total pops exactly as for exact A*.
            let time_up = deadline
                .map(|d| stats.expanded & TIME_CHECK_MASK == 0 && std::time::Instant::now() >= d)
                .unwrap_or(false);
            if stats.expanded as usize >= cx.config().node_limit || time_up {
                stats.optimal = false;
                stats.limit_hit = true;
                stats.interned = t.interner.len() as u64;
                open.push(entry);
                let lb = pea_lower_bound(&open, &t).max(h0);
                let mut outcome = fallback_result(&t, incumbent, &greedy, stats);
                outcome.stats.bound = suboptimality(outcome.cost, lb);
                return (outcome, finish_explored(t.interner, t.explored_g));
            }

            stats.expanded += 1;
            if keep_explored {
                t.record_explored(sid, entry.g);
            }

            // First visit prices every successor once; re-visits promote
            // from the cache without touching the pricing path again.
            let mut items = match cache.remove(&entry.idx) {
                Some(items) => {
                    stats.reexpansions += 1;
                    items
                }
                None => {
                    let mut items = Vec::new();
                    for decision in node_state.successors(cx.spec()) {
                        if !cx.allows(&node_state, decision) {
                            continue;
                        }
                        let Some((next, weight)) = node_state.apply(cx.spec(), cx.goal(), decision)
                        else {
                            continue;
                        };
                        stats.generated += 1;
                        let g2 = entry.g + weight.as_dollars();
                        let key = next.key(nt);
                        let h2 = cx.h(&next, &key);
                        if g2 + h2 > upper_bound {
                            continue; // can never beat the greedy schedule
                        }
                        items.push(Deferred {
                            state: next,
                            key,
                            decision,
                            g: g2,
                            h: h2,
                        });
                    }
                    items.sort_by(|a, b| (b.g + b.h).total_cmp(&(a.g + a.h)));
                    items
                }
            };

            // Promote the tranche with f ≤ stored F (+ float slack).
            while let Some(last) = items.last() {
                if last.g + last.h > entry.f + G_EPS {
                    break;
                }
                let s = items.pop().unwrap();
                let sid2 = t.interner.intern(s.key);
                let known_g = ensure_slot(&mut t.best_g, sid2, f64::INFINITY);
                if known_g.is_finite() {
                    if s.g >= *known_g - G_EPS {
                        continue; // a better path to this vertex is known
                    }
                    stats.reopened += 1;
                }
                *known_g = s.g;
                *ensure_slot(&mut t.h_cache, sid2, f64::NAN) = s.h;
                let is_goal = s.state.is_goal();
                t.arena.push(Node {
                    state: s.state,
                    parent: Some(entry.idx),
                    decision: Some(s.decision),
                    sid: sid2,
                });
                let idx2 = t.arena.len() - 1;
                if is_goal {
                    match incumbent {
                        Some((_, best)) if best <= s.g => {}
                        _ => {
                            incumbent = Some((idx2, s.g));
                            stats.incumbents += 1;
                        }
                    }
                }
                open.push(HeapEntry {
                    f: s.g + s.h,
                    g: s.g,
                    idx: idx2,
                });
            }

            // Anything left is deferred: raise the vertex's stored F to the
            // cheapest deferred f and re-enqueue it.
            if let Some(last) = items.last() {
                let raised_f = last.g + last.h;
                stats.deferred += items.len() as u64;
                cache.insert(entry.idx, items);
                open.push(HeapEntry {
                    f: raised_f,
                    g: entry.g,
                    idx: entry.idx,
                });
            }
        }

        // Open list exhausted without popping a goal: only possible if no
        // complete schedule exists, which spec validation rules out — but
        // return the incumbent defensively.
        stats.optimal = false;
        stats.interned = t.interner.len() as u64;
        let outcome = fallback_result(&t, incumbent, &greedy, stats);
        (outcome, finish_explored(t.interner, t.explored_g))
    }
}

/// The frontier lower bound for partial expansion: the minimum stored `F`
/// over non-stale open entries. Promoted vertices carry `F = g + h`
/// (exactly the exact strategy's bound); re-enqueued vertices carry the
/// cheapest deferred successor's `f`, which is *at least* `g + h` — every
/// completion through such a vertex continues through either an already
/// promoted successor (separately open) or a deferred one costing ≥ `F`.
fn pea_lower_bound(open: &BinaryHeap<HeapEntry>, t: &Tables) -> f64 {
    let mut lb = f64::INFINITY;
    for entry in open.iter() {
        let sid = t.arena[entry.idx].sid as usize;
        if entry.g > t.best_g[sid] + G_EPS {
            continue;
        }
        if entry.f < lb {
            lb = entry.f;
        }
    }
    lb
}
