//! # wisedb-search
//!
//! The scheduling graph and shortest-path machinery of WiSeDB (§4.3, §5).
//!
//! Scheduling a workload is modelled as navigating a weighted directed
//! graph: vertices are partial schedules plus the set of still-unassigned
//! queries, edges either rent a VM (*start-up edges*, weight `f_s`) or place
//! a query on the most recently rented VM (*placement edges*, weight
//! `l(q,i)·f_r + Δpenalty`, Eq. 2). A minimum-cost path from "everything
//! unassigned" to "nothing unassigned" is a minimum-cost schedule under
//! Eq. 1 — found here by the pluggable solver layer ([`strategy`]): exact
//! A* ([`strategy::ExactAStar`], the default), partial-expansion A*
//! ([`strategy::PartialExpansionAStar`], exact with a bounded successor
//! appetite), beam search ([`strategy::BeamSearch`]), anytime weighted A*
//! ([`strategy::AnytimeWeightedAStar`]), and, for families of tightening
//! goals, adaptive A* ([`adaptive::AdaptiveSearcher`]).
//!
//! The searcher also reports the *decision path* (which edge was taken at
//! which vertex), which is exactly the training signal the learning crate
//! consumes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod astar;
pub mod canonical;
pub mod decision;
pub mod heuristic;
pub mod state;
pub mod strategy;

pub use adaptive::AdaptiveSearcher;
pub use astar::AStarSearcher;
pub use canonical::CanonicalOrder;
pub use decision::Decision;
pub use heuristic::HeuristicTable;
pub use state::{LastVm, SearchState, StateKey};
pub use strategy::{
    solve_counts, AnytimeWeightedAStar, BeamSearch, DecisionStep, ExactAStar, ExploredStates,
    HeuristicMemo, OptimalSchedule, PartialExpansionAStar, Plan, SearchConfig, SearchOutcome,
    SearchStats, SearchStrategy, Solver, Strategy,
};
