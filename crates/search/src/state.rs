//! Search vertices: partial schedules plus remaining work.
//!
//! A vertex `v` of the scheduling graph (§4.3) carries the unassigned
//! queries `v_u` and the partial schedule `v_s`. Under the paper's graph
//! reduction, placements only ever target the most recently rented VM, so a
//! vertex does not need the whole partial schedule — only the *last* VM's
//! composition (everything older is immutable and its cost already paid on
//! the path) plus whatever the performance goal needs to price future
//! placements (the [`PenaltyTracker`]).
//!
//! States are built for structural sharing: the open VM's queue is a
//! persistent stack whose tail is shared between parent and child vertices,
//! the unassigned counts sit behind a copy-on-write [`Arc`], and the
//! penalty tracker's heavy variant (percentile distributions) is
//! copy-on-write inside [`wisedb_core`]. Cloning a [`SearchState`] — which
//! A* does on every node expansion — is therefore a handful of reference
//! bumps, and [`SearchState::key`] produces a hashable identity without
//! copying any of the underlying vectors.

use std::fmt;
use std::sync::Arc;

use wisedb_core::{
    Millis, Money, PenaltyDigest, PenaltyTracker, PerformanceGoal, TemplateId, VmTypeId,
    WorkloadSpec,
};

use crate::decision::Decision;

/// A persistent stack of template placements: pushing shares the entire
/// existing queue with the parent state instead of copying it, which is
/// what makes child-vertex generation allocation-light (one small node per
/// placement, ever, instead of one `Vec` copy per generated state).
///
/// Iteration order is newest-first (a stack); [`TemplateStack::to_vec`]
/// returns placement order for display and tests. Only the queue's length,
/// last element, and per-template counts are semantically meaningful to
/// the search — none of those depend on walking the queue forwards.
#[derive(Clone, Default)]
pub struct TemplateStack {
    head: Option<Arc<StackNode>>,
    len: usize,
}

struct StackNode {
    template: TemplateId,
    prev: Option<Arc<StackNode>>,
}

impl TemplateStack {
    /// The empty queue.
    pub fn new() -> Self {
        TemplateStack::default()
    }

    /// Builds a queue holding `templates` in placement order.
    pub fn from_slice(templates: &[TemplateId]) -> Self {
        let mut stack = TemplateStack::new();
        for &t in templates {
            stack.push(t);
        }
        stack
    }

    /// Appends a placement. O(1); the previous queue is shared, not copied.
    pub fn push(&mut self, template: TemplateId) {
        self.head = Some(Arc::new(StackNode {
            template,
            prev: self.head.take(),
        }));
        self.len += 1;
    }

    /// The most recent placement.
    pub fn last(&self) -> Option<TemplateId> {
        self.head.as_ref().map(|n| n.template)
    }

    /// Number of queued placements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates newest-to-oldest.
    pub fn iter(&self) -> impl Iterator<Item = TemplateId> + '_ {
        std::iter::successors(self.head.as_deref(), |n| n.prev.as_deref()).map(|n| n.template)
    }

    /// Per-template counts, sized to `num_templates`.
    pub fn counts(&self, num_templates: usize) -> Vec<u16> {
        let mut counts = vec![0u16; num_templates];
        for t in self.iter() {
            if let Some(c) = counts.get_mut(t.index()) {
                *c += 1;
            }
        }
        counts
    }

    /// The queue in placement (oldest-first) order.
    pub fn to_vec(&self) -> Vec<TemplateId> {
        let mut v: Vec<TemplateId> = self.iter().collect();
        v.reverse();
        v
    }
}

impl PartialEq for TemplateStack {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl fmt::Debug for TemplateStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.to_vec()).finish()
    }
}

impl FromIterator<TemplateId> for TemplateStack {
    fn from_iter<I: IntoIterator<Item = TemplateId>>(iter: I) -> Self {
        let mut stack = TemplateStack::new();
        for t in iter {
            stack.push(t);
        }
        stack
    }
}

/// The most recently rented VM within a partial schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct LastVm {
    /// Its VM type.
    pub vm_type: VmTypeId,
    /// Templates queued on it, in placement order (persistent: children
    /// share the parent's queue).
    pub queue: TemplateStack,
    /// Total execution time of the queue — the *wait time* a newly placed
    /// query would experience (the `wait-time` feature of §4.4).
    pub wait: Millis,
    /// How many leading queue entries were already committed before this
    /// search began (online scheduling seeds the open VM, §6.3). The
    /// canonical-SPT reduction must not let committed work constrain the
    /// ordering of *new* placements.
    pub seeded: usize,
}

impl LastVm {
    fn new(vm_type: VmTypeId) -> Self {
        LastVm {
            vm_type,
            queue: TemplateStack::new(),
            wait: Millis::ZERO,
            seeded: 0,
        }
    }

    /// An open VM carried over from a previous scheduling round: its queue
    /// is fixed history, not reorderable by this search.
    pub fn seeded(vm_type: VmTypeId, queue: Vec<TemplateId>, wait: Millis) -> Self {
        let seeded = queue.len();
        LastVm {
            vm_type,
            queue: TemplateStack::from_slice(&queue),
            wait,
            seeded,
        }
    }

    /// Per-template counts of the queue, sized to `num_templates`.
    pub fn queue_counts(&self, num_templates: usize) -> Vec<u16> {
        self.queue.counts(num_templates)
    }
}

/// A vertex of the (reduced) scheduling graph. Cloning is cheap — see the
/// module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchState {
    /// Unassigned instance count per template (`v_u`), copy-on-write:
    /// renting a VM shares it wholesale, placing a query copies it once.
    pub unassigned: Arc<Vec<u16>>,
    /// The most recently rented VM, if any. `None` only at the start vertex.
    pub last_vm: Option<LastVm>,
    /// Incremental penalty state for the goal.
    pub tracker: PenaltyTracker,
    /// Number of VMs rented so far (for reporting; not part of the key).
    pub vms_rented: u32,
}

impl SearchState {
    /// The start vertex: everything unassigned, nothing rented.
    pub fn initial(unassigned: Vec<u16>, goal: &PerformanceGoal) -> Self {
        SearchState {
            unassigned: Arc::new(unassigned),
            last_vm: None,
            tracker: goal.new_tracker(),
            vms_rented: 0,
        }
    }

    /// A goal vertex has no unassigned queries.
    pub fn is_goal(&self) -> bool {
        self.unassigned.iter().all(|&c| c == 0)
    }

    /// Total number of unassigned queries.
    pub fn remaining(&self) -> u32 {
        self.unassigned.iter().map(|&c| c as u32).sum()
    }

    /// Whether `decision` labels an edge out of this vertex in the
    /// *reduced* graph (§4.3): placements need a supporting last VM and an
    /// unassigned instance; a start-up edge requires the last VM to be
    /// non-empty (or no VM at all — the mandatory first decision).
    pub fn is_valid(&self, spec: &WorkloadSpec, decision: Decision) -> bool {
        match decision {
            Decision::CreateVm(v) => {
                if v.index() >= spec.num_vm_types() {
                    return false;
                }
                match &self.last_vm {
                    None => true,
                    Some(last) => !last.queue.is_empty(),
                }
            }
            Decision::Place(t) => {
                if self
                    .unassigned
                    .get(t.index())
                    .map(|&c| c == 0)
                    .unwrap_or(true)
                {
                    return false;
                }
                match &self.last_vm {
                    None => false,
                    Some(last) => spec.latency(t, last.vm_type).is_some(),
                }
            }
        }
    }

    /// The weight of the edge labelled `decision` — Eq. 2 for placements
    /// (`l(q,i) * f_r + Δpenalty`), `f_s` for start-ups — without mutating
    /// this state. Returns `None` for invalid decisions.
    pub fn edge_weight(
        &self,
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        decision: Decision,
    ) -> Option<Money> {
        if !self.is_valid(spec, decision) {
            return None;
        }
        match decision {
            Decision::CreateVm(v) => Some(spec.vm_type(v).ok()?.startup_cost),
            Decision::Place(t) => {
                let last = self.last_vm.as_ref()?;
                let exec = spec.latency(t, last.vm_type)?;
                let runtime = spec.vm_type(last.vm_type).ok()?.runtime_cost(exec);
                let completion = last.wait + exec;
                let mut tracker = self.tracker.clone();
                let delta = tracker.push(goal, t, completion);
                Some(runtime + delta)
            }
        }
    }

    /// Applies `decision`, returning the successor state and edge weight.
    /// Returns `None` for invalid decisions.
    pub fn apply(
        &self,
        spec: &WorkloadSpec,
        goal: &PerformanceGoal,
        decision: Decision,
    ) -> Option<(SearchState, Money)> {
        if !self.is_valid(spec, decision) {
            return None;
        }
        let mut next = self.clone();
        let weight = match decision {
            Decision::CreateVm(v) => {
                next.last_vm = Some(LastVm::new(v));
                next.vms_rented += 1;
                spec.vm_type(v).ok()?.startup_cost
            }
            Decision::Place(t) => {
                let last = next.last_vm.as_mut()?;
                let exec = spec.latency(t, last.vm_type)?;
                let runtime = spec.vm_type(last.vm_type).ok()?.runtime_cost(exec);
                last.queue.push(t);
                last.wait += exec;
                let completion = last.wait;
                Arc::make_mut(&mut next.unassigned)[t.index()] -= 1;
                let delta = next.tracker.push(goal, t, completion);
                runtime + delta
            }
        };
        Some((next, weight))
    }

    /// All decisions labelling out-edges of this vertex in the reduced
    /// graph. Start-up edges are additionally pruned to VM types that can
    /// process at least one remaining template (renting anything else could
    /// never reach a goal vertex without a further, wasteful start-up).
    pub fn successors(&self, spec: &WorkloadSpec) -> Vec<Decision> {
        let mut out = Vec::new();
        for t in spec.template_ids() {
            if self.is_valid(spec, Decision::Place(t)) {
                out.push(Decision::Place(t));
            }
        }
        let can_create = match &self.last_vm {
            None => true,
            Some(last) => !last.queue.is_empty(),
        };
        if can_create && self.remaining() > 0 {
            for v in spec.vm_type_ids() {
                let useful = spec
                    .template_ids()
                    .any(|t| self.unassigned[t.index()] > 0 && spec.latency(t, v).is_some());
                if useful {
                    out.push(Decision::CreateVm(v));
                }
            }
        }
        out
    }

    /// Canonical dedup key. Two vertices with equal keys have identical
    /// future costs, so only the cheaper needs expanding:
    ///
    /// * remaining work (`unassigned`) matches;
    /// * the open VM prices future placements identically — that requires
    ///   only its **type** and **wait time** (penalty deltas see the wait,
    ///   never the queue's composition) plus the **last-placed template**,
    ///   which gates placements under the canonical-SPT reduction;
    /// * the penalty digest captures everything the goal can still
    ///   distinguish about the past.
    ///
    /// Collapsing the open VM to `(type, wait, tail)` rather than its full
    /// composition merges the exponentially many ways of reaching the same
    /// backlog — the difference between 30-query searches finishing in
    /// thousands of expansions versus millions.
    ///
    /// Keys are built from shared references (counts `Arc`, digest `Arc`),
    /// so constructing and cloning one never copies a vector.
    pub fn key(&self, num_templates: usize) -> StateKey {
        let _ = num_templates;
        StateKey {
            unassigned: Arc::clone(&self.unassigned),
            last_vm: self
                .last_vm
                .as_ref()
                .map(|l| (l.vm_type.0, l.wait.as_millis(), l.queue.last().map(|t| t.0))),
            digest: self.tracker.digest(),
        }
    }
}

/// Hashable identity of a search vertex; see [`SearchState::key`].
/// Clones are reference bumps — the A* interner stores one per distinct
/// vertex and hands out dense `u32` ids for everything else.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateKey {
    unassigned: Arc<Vec<u16>>,
    last_vm: Option<(u32, u64, Option<u32>)>,
    digest: PenaltyDigest,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisedb_core::{PenaltyRate, VmType};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::single_vm(
            vec![("T1", Millis::from_mins(2)), ("T2", Millis::from_mins(1))],
            VmType::t2_medium(),
        )
        .unwrap()
    }

    fn goal() -> PerformanceGoal {
        PerformanceGoal::PerQuery {
            deadlines: vec![Millis::from_mins(3), Millis::from_mins(1)],
            rate: PenaltyRate::CENT_PER_SECOND,
        }
    }

    #[test]
    fn template_stack_shares_and_tracks() {
        let mut a = TemplateStack::new();
        assert!(a.is_empty());
        a.push(TemplateId(0));
        a.push(TemplateId(1));
        let mut b = a.clone(); // shares both nodes
        b.push(TemplateId(2));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(a.last(), Some(TemplateId(1)));
        assert_eq!(b.last(), Some(TemplateId(2)));
        assert_eq!(
            b.to_vec(),
            vec![TemplateId(0), TemplateId(1), TemplateId(2)]
        );
        assert_eq!(b.counts(3), vec![1, 1, 1]);
        assert_eq!(
            a,
            TemplateStack::from_slice(&[TemplateId(0), TemplateId(1)])
        );
        assert_ne!(a, b);
    }

    #[test]
    fn start_vertex_must_rent_first() {
        let s = SearchState::initial(vec![1, 2], &goal());
        assert!(!s.is_goal());
        assert_eq!(s.remaining(), 3);
        let succ = s.successors(&spec());
        assert_eq!(succ, vec![Decision::CreateVm(VmTypeId(0))]);
    }

    #[test]
    fn reduction_blocks_second_empty_vm() {
        let s = SearchState::initial(vec![1, 1], &goal());
        let (s, w) = s
            .apply(&spec(), &goal(), Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        assert!(w.approx_eq(Money::from_dollars(0.0008), 1e-12));
        // Last VM is empty: no second start-up edge, placements only.
        let succ = s.successors(&spec());
        assert!(succ.iter().all(|d| matches!(d, Decision::Place(_))));
        assert_eq!(succ.len(), 2);
    }

    #[test]
    fn placement_updates_wait_and_counts() {
        let s = SearchState::initial(vec![1, 1], &goal());
        let (s, _) = s
            .apply(&spec(), &goal(), Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        let (s, w) = s
            .apply(&spec(), &goal(), Decision::Place(TemplateId(0)))
            .unwrap();
        // 2 minutes of t2.medium time, no violation (2m <= 3m deadline).
        assert!(w.approx_eq(Money::from_dollars(0.052 * 2.0 / 60.0), 1e-9));
        let last = s.last_vm.as_ref().unwrap();
        assert_eq!(last.wait, Millis::from_mins(2));
        assert_eq!(*s.unassigned, vec![0, 1]);

        // Placing T2 now completes at 3m, 2m past its 1m deadline: the
        // edge carries the $1.20 penalty (Eq. 2).
        let w = s
            .edge_weight(&spec(), &goal(), Decision::Place(TemplateId(1)))
            .unwrap();
        let expected = Money::from_dollars(0.052 / 60.0 + 1.20);
        assert!(w.approx_eq(expected, 1e-9));
    }

    #[test]
    fn apply_shares_parent_structure() {
        let s = SearchState::initial(vec![2, 2], &goal());
        let (s, _) = s
            .apply(&spec(), &goal(), Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        // Renting shares the unassigned counts wholesale.
        let (rented, _) = s
            .apply(&spec(), &goal(), Decision::Place(TemplateId(0)))
            .unwrap();
        let (rented2, _) = rented
            .apply(&spec(), &goal(), Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        assert!(Arc::ptr_eq(&rented.unassigned, &rented2.unassigned));
        // Placing copies the counts once but shares the queue's tail.
        let (placed, _) = rented
            .apply(&spec(), &goal(), Decision::Place(TemplateId(1)))
            .unwrap();
        assert!(!Arc::ptr_eq(&rented.unassigned, &placed.unassigned));
        assert_eq!(placed.last_vm.as_ref().unwrap().queue.len(), 2);
        assert_eq!(rented.last_vm.as_ref().unwrap().queue.len(), 1);
    }

    #[test]
    fn depleted_templates_are_invalid() {
        let s = SearchState::initial(vec![0, 1], &goal());
        let (s, _) = s
            .apply(&spec(), &goal(), Decision::CreateVm(VmTypeId(0)))
            .unwrap();
        assert!(!s.is_valid(&spec(), Decision::Place(TemplateId(0))));
        assert!(s.is_valid(&spec(), Decision::Place(TemplateId(1))));
        assert!(s
            .apply(&spec(), &goal(), Decision::Place(TemplateId(0)))
            .is_none());
    }

    #[test]
    fn unsupported_vm_types_not_offered() {
        let spec = WorkloadSpec::new(
            vec![wisedb_core::QueryTemplate {
                name: "medium-only".into(),
                latencies: vec![Some(Millis::from_mins(1)), None],
            }],
            vec![VmType::t2_medium(), VmType::t2_small()],
        )
        .unwrap();
        let goal = PerformanceGoal::MaxLatency {
            deadline: Millis::from_mins(5),
            rate: PenaltyRate::CENT_PER_SECOND,
        };
        let s = SearchState::initial(vec![2], &goal);
        // Only the supporting type is offered at the start vertex.
        assert_eq!(s.successors(&spec), vec![Decision::CreateVm(VmTypeId(0))]);

        // On a small VM, the template cannot be placed.
        let (on_small, _) = s
            .apply(&spec, &goal, Decision::CreateVm(VmTypeId(1)))
            .unwrap();
        assert!(!on_small.is_valid(&spec, Decision::Place(TemplateId(0))));
    }

    #[test]
    fn keys_collapse_interior_queue_orderings() {
        let spec = spec();
        let goal = goal();
        let s0 = SearchState::initial(vec![1, 2], &goal);
        let (s0, _) = s0
            .apply(&spec, &goal, Decision::CreateVm(VmTypeId(0)))
            .unwrap();

        // Path A: T1, T2, T2. Path B: T2, T1, T2. Same multiset, same
        // tail — the different interior orderings paid different
        // penalties (already in g) but share every future option.
        let (a, _) = s0
            .apply(&spec, &goal, Decision::Place(TemplateId(0)))
            .unwrap();
        let (a, _) = a
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (a, _) = a
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (b, _) = s0
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (b, _) = b
            .apply(&spec, &goal, Decision::Place(TemplateId(0)))
            .unwrap();
        let (b, _) = b
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        assert_eq!(a.key(2), b.key(2));

        // Different tails (which gate canonical placements) stay distinct.
        let (c, _) = s0
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (c, _) = c
            .apply(&spec, &goal, Decision::Place(TemplateId(1)))
            .unwrap();
        let (c, _) = c
            .apply(&spec, &goal, Decision::Place(TemplateId(0)))
            .unwrap();
        assert_ne!(a.key(2), c.key(2));
    }

    #[test]
    fn goal_vertices_have_no_unassigned() {
        let goal = goal();
        let s = SearchState::initial(vec![0, 0], &goal);
        assert!(s.is_goal());
    }
}
